#!/usr/bin/env bash
# Checks that every relative markdown link in the repo's documentation
# resolves to an existing file or directory. External links (http/https/
# mailto) and pure intra-page anchors (#...) are skipped; an anchor suffix
# on a file link is stripped before the existence check.
#
# Usage: ci/check_links.sh [file.md ...]
# With no arguments, checks README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md
# and every markdown file under docs/.
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md)
    for f in docs/*.md; do
        [ -e "$f" ] && files+=("$f")
    done
fi

fail=0
for f in "${files[@]}"; do
    if [ ! -f "$f" ]; then
        echo "MISSING FILE: $f (listed for link checking)"
        fail=1
        continue
    fi
    # Inline links: [text](target). Targets with spaces are not used in
    # this repo; titles ("...") are stripped.
    while IFS=: read -r lineno target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip any anchor and optional title.
        path="${target%%#*}"
        path="${path%% *}"
        [ -z "$path" ] && continue
        # Resolve relative to the linking file's directory.
        base="$(dirname "$f")"
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            echo "$f:$lineno: broken link -> $target"
            fail=1
        fi
    done < <(grep -no -E '\[[^]]*\]\([^)]+\)' "$f" \
             | sed -E 's/^([0-9]+):.*\(([^)]+)\)$/\1:\2/')
done

if [ "$fail" -ne 0 ]; then
    echo "Link check FAILED."
    exit 1
fi
echo "Link check OK (${#files[@]} files)."
