#!/usr/bin/env bash
# Guards against silent protocol-chattiness regressions: re-runs the
# table1 benchmark and compares its per-cell `asvm.msg.*` / `xmm.msg.*`
# counters against the committed BENCH_table1.json golden. Wall-clock
# fields are ignored (only counter keys are extracted), so the check is
# deterministic across hosts; `--serial --stable-json` keeps the fresh
# run reproducible too.
#
# Usage: ci/check_perf_counters.sh [path-to-fresh-BENCH_table1.json]
# With no argument, runs the bench itself (requires a release build).
set -eu

cd "$(dirname "$0")/.."
root="$(pwd)"

golden=BENCH_table1.json
fresh="${1:-}"

if [ ! -f "$golden" ]; then
    echo "perf-counters: missing committed golden $golden"
    exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The sweep writes BENCH_table1.json into the current directory, so the
# fresh run happens inside the temp dir to leave the golden untouched.
if [ -z "$fresh" ]; then
    (cd "$workdir" && cargo run -q -p bench --bin table1 --release \
        --manifest-path "$root/Cargo.toml" -- --serial --json --stable-json \
        > /dev/null)
    fresh="$workdir/BENCH_table1.json"
fi

if [ ! -f "$fresh" ]; then
    echo "perf-counters: fresh run produced no $fresh"
    exit 1
fi

# One line per (cell label, counter) pair, in file order. Cell labels are
# unique in table1, so this keys every counter to its scenario.
extract_counters() {
    grep -o '"label": "[^"]*"\|"\(asvm\|xmm\)\.msg\.[^"]*": [0-9]*' "$1" \
        | awk '
            /^"label": /   { label = $0; next }
            { print label " :: " $0 }
        '
}

extract_counters "$golden" > "$workdir/golden.txt"
extract_counters "$fresh" > "$workdir/fresh.txt"

if [ ! -s "$workdir/golden.txt" ]; then
    echo "perf-counters: no asvm.msg.*/xmm.msg.* counters found in $golden"
    exit 1
fi

if ! diff -u "$workdir/golden.txt" "$workdir/fresh.txt"; then
    echo
    echo "perf-counters: protocol message counters diverged from $golden."
    echo "If the change is intentional, regenerate the golden with:"
    echo "  cargo run -p bench --bin table1 --release -- --serial --json --stable-json"
    exit 1
fi

echo "perf-counters OK ($(wc -l < "$workdir/golden.txt") counters match $golden)."
