#!/usr/bin/env bash
# Guards against silent protocol-chattiness regressions: re-runs the
# table1 benchmark and compares its per-cell `asvm.msg.*` / `xmm.msg.*`
# counters against the committed BENCH_table1.json golden, then does the
# same for the prefetch benchmark's `asvm.prefetch.*` speculation
# accounting against BENCH_prefetch.json. Wall-clock fields are ignored
# (only counter keys are extracted), so the check is deterministic
# across hosts; `--serial --stable-json` keeps the fresh runs
# reproducible too.
#
# Usage: ci/check_perf_counters.sh [path-to-fresh-BENCH_table1.json]
# With no argument, runs the benches themselves (requires a release
# build). With an argument, only the table1 check runs against it.
set -eu

cd "$(dirname "$0")/.."
root="$(pwd)"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# One line per (cell label, counter) pair, in file order. Cell labels
# are unique per bench, so this keys every counter to its scenario.
# $2 is the counter-key grep alternation.
extract_counters() {
    grep -o '"label": "[^"]*"\|"\('"$2"'\)\.[^"]*": [0-9]*' "$1" \
        | awk '
            /^"label": /   { label = $0; next }
            { print label " :: " $0 }
        '
}

# check_counters <golden> <bin> <counter-alternation> [fresh]
check_counters() {
    golden="$1"; bin="$2"; keys="$3"; fresh="${4:-}"

    if [ ! -f "$golden" ]; then
        echo "perf-counters: missing committed golden $golden"
        exit 1
    fi

    # The sweep writes its JSON into the current directory, so the fresh
    # run happens inside the temp dir to leave the golden untouched.
    if [ -z "$fresh" ]; then
        (cd "$workdir" && cargo run -q -p bench --bin "$bin" --release \
            --manifest-path "$root/Cargo.toml" -- --serial --json --stable-json \
            > /dev/null)
        fresh="$workdir/$golden"
    fi

    if [ ! -f "$fresh" ]; then
        echo "perf-counters: fresh run produced no $fresh"
        exit 1
    fi

    extract_counters "$golden" "$keys" > "$workdir/golden.txt"
    extract_counters "$fresh" "$keys" > "$workdir/fresh.txt"

    if [ ! -s "$workdir/golden.txt" ]; then
        echo "perf-counters: no counters matching ($keys) found in $golden"
        exit 1
    fi

    if ! diff -u "$workdir/golden.txt" "$workdir/fresh.txt"; then
        echo
        echo "perf-counters: counters diverged from $golden."
        echo "If the change is intentional, regenerate the golden with:"
        echo "  cargo run -p bench --bin $bin --release -- --serial --json --stable-json"
        exit 1
    fi

    echo "perf-counters OK ($(wc -l < "$workdir/golden.txt") counters match $golden)."
}

check_counters BENCH_table1.json table1 'asvm\.msg\|xmm\.msg' "${1:-}"
# The prefetch golden pins the speculation accounting itself — issued /
# hit / late / wasted / cancelled / hint per cell.
if [ -z "${1:-}" ]; then
    check_counters BENCH_prefetch.json prefetch 'asvm\.prefetch'
fi
