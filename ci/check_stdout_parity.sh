#!/usr/bin/env bash
# Stdout byte-parity: the reproduced paper tables (table1, table3) must be
# byte-identical to the committed goldens. The simulator is bit-for-bit
# deterministic and the sweep harness keeps stdout independent of thread
# count, so any diff here means an event ordering, protocol message, or
# cost model changed — the regression the hot-path optimization work is
# required not to introduce.
#
# Usage: ci/check_stdout_parity.sh  (requires a release build; builds one
# if missing via cargo run).
set -eu

cd "$(dirname "$0")/.."

for bin in table1 table3; do
    golden="goldens/$bin.stdout.txt"
    if [ ! -f "$golden" ]; then
        echo "stdout-parity: missing committed golden $golden"
        exit 1
    fi
    fresh="$(mktemp)"
    cargo run -q -p bench --bin "$bin" --release -- --serial > "$fresh" 2>/dev/null
    if ! cmp -s "$golden" "$fresh"; then
        echo "stdout-parity: $bin stdout diverged from $golden:"
        diff -u "$golden" "$fresh" | head -40 || true
        echo
        echo "If the change is intentional, regenerate with:"
        echo "  cargo run -p bench --bin $bin --release -- --serial > $golden"
        rm -f "$fresh"
        exit 1
    fi
    rm -f "$fresh"
    echo "stdout-parity OK: $bin matches $golden"
done
