//! Quickstart: a four-node ASVM cluster sharing one memory region.
//!
//! Builds a Paragon-like machine, maps a shared memory object on every
//! node, runs a writer task and three reader tasks with barrier
//! synchronization, and prints what the distributed-memory layer did.
//!
//! Run with: `cargo run --example quickstart`

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit, PageIdx};
use svmsim::NodeId;

fn main() {
    let nodes = 4u16;
    let mut ssi = Ssi::new(nodes, ManagerKind::asvm(), 1);

    // One 128 KB shared region (16 pages), homed on node 0.
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);

    // One task per node, all mapping the region at virtual page 0.
    let tasks: Vec<_> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);

    // Node 0 writes every page; the others read them all back.
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(
            (0..16)
                .map(|p| Step::Write {
                    va_page: p,
                    value: 0x1000 + p,
                })
                .chain([Step::Barrier(1), Step::Done])
                .collect(),
        )),
    );
    for n in 1..nodes {
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(ScriptProgram::new(
                [Step::Barrier(1)]
                    .into_iter()
                    .chain((0..16).map(|p| Step::Read { va_page: p }))
                    .chain([Step::Done])
                    .collect(),
            )),
        );
    }

    ssi.run(10_000_000).expect("simulation quiesces");
    assert!(ssi.all_done());

    // Every reader observed the writer's values.
    for n in 1..nodes {
        for p in 0..16u64 {
            let v = ssi
                .node(NodeId(n))
                .vm
                .peek_task_page(tasks[n as usize], p)
                .expect("page resident");
            assert_eq!(v, 0x1000 + p);
        }
    }
    println!(
        "all {} readers observed the writer's 16 pages coherently",
        nodes - 1
    );

    println!("\nsimulated time: {}", ssi.world.now());
    println!("\ndistributed-memory activity:");
    for (k, v) in ssi.stats().counters() {
        println!("  {k:<24}{v}");
    }
    if let Some(t) = ssi.stats().tally("fault.ms") {
        println!("\nremote fault latency: {t}");
    }

    // Peek at the ownership state ASVM built up.
    println!("\npage ownership after the run:");
    for p in 0..4u32 {
        for n in 0..nodes {
            if let Some(pi) = ssi
                .node(NodeId(n))
                .asvm()
                .and_then(|a| a.page_info(mobj, PageIdx(p)))
            {
                if pi.owner {
                    println!(
                        "  page {p}: owner {} with {} reader(s)",
                        NodeId(n),
                        pi.readers.len()
                    );
                }
            }
        }
    }
}
