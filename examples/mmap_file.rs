//! Memory-mapped file access across nodes (the paper's Table 2 scenario,
//! in miniature).
//!
//! A file lives on an I/O node's disk behind the file pager. Compute nodes
//! map it and read/write it as memory; the distributed memory manager keeps
//! the view coherent and caches pages in node memory. Under ASVM, later
//! readers are served from peer caches instead of the disk.
//!
//! Run with: `cargo run --example mmap_file`

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit, PageIdx};
use svmsim::NodeId;

fn main() {
    let nodes = 4u16;
    let file_pages = 64u32; // a 512 KB file
    let mut ssi = Ssi::new(nodes, ManagerKind::asvm(), 9);
    let home = NodeId(0);

    // A populated file: its contents already exist on the I/O node's disk.
    let mobj = ssi.create_object(home, file_pages, true);
    println!(
        "file of {} pages on I/O node {}",
        file_pages,
        ssi.pager_node_for(home)
    );

    let tasks: Vec<_> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                file_pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);

    // Every node reads the whole file; node 2 then rewrites one page and
    // everyone re-reads it.
    for n in 0..nodes {
        let mut steps: Vec<Step> = (0..file_pages)
            .map(|p| Step::Read { va_page: p as u64 })
            .collect();
        steps.push(Step::Barrier(1));
        if n == 2 {
            steps.push(Step::Write {
                va_page: 10,
                value: 0xED17,
            });
        }
        steps.push(Step::Barrier(2));
        steps.push(Step::Read { va_page: 10 });
        steps.push(Step::Done);
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(ScriptProgram::new(steps)),
        );
    }

    ssi.run(100_000_000).expect("scan quiesces");
    assert!(ssi.all_done());

    // Verify: everyone sees node 2's edit; untouched pages match the file.
    for n in 0..nodes {
        let t = tasks[n as usize];
        let node = ssi.node(NodeId(n));
        assert_eq!(node.vm.peek_task_page(t, 10), Some(0xED17));
        if let Some(v) = node.vm.peek_task_page(t, 3) {
            assert_eq!(v, pager::file_stamp(mobj, PageIdx(3)));
        }
    }
    println!("all {nodes} nodes see the edited page coherently");

    let s = ssi.stats();
    println!("\nsimulated time:   {}", ssi.world.now());
    println!("disk reads:       {}", s.counter("disk.reads"));
    println!("faults completed: {}", s.counter("faults.completed"));
    println!(
        "note: {} faults but only {} disk reads — later readers were served \
         from peer memory, not the disk",
        s.counter("faults.completed"),
        s.counter("disk.reads")
    );
}
