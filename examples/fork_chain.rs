//! Inherited memory across a chain of remote forks (the paper's §3.7 /
//! Figure 9 scenario).
//!
//! A root task initializes a private region and forks to another node; the
//! child forks further. Each fork creates a distributed delayed copy: the
//! child sees a snapshot of the parent's memory at fork time, served by
//! pull operations that hop across the copy chain, while the parent keeps
//! writing (push operations preserve the snapshots).
//!
//! Run with: `cargo run --example fork_chain` (add `-- xmm` for the
//! NMK13 XMM baseline with its internal copy pagers).

use cluster::{FnProgram, ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit, TaskId};
use svmsim::NodeId;

const REGION_PAGES: u32 = 8;
const CHAIN: u16 = 4;

/// Chain link: remember the inherited values, then fork onward.
struct Link {
    depth: u16,
    page: u32,
    forked: bool,
}

impl Program for Link {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        // Read the whole inherited region first.
        if self.page < REGION_PAGES {
            let p = self.page;
            self.page += 1;
            return Step::Read { va_page: p as u64 };
        }
        if self.depth < CHAIN && !self.forked {
            self.forked = true;
            return Step::Fork {
                child: TaskId(100 + self.depth as u32 + 1),
                node: NodeId(env.node.0 + 1),
                program: Box::new(Link {
                    depth: self.depth + 1,
                    page: 0,
                    forked: false,
                }),
            };
        }
        Step::Done
    }
}

fn main() {
    let kind = if std::env::args().any(|a| a == "xmm") {
        ManagerKind::xmm()
    } else {
        ManagerKind::asvm()
    };
    println!("running fork chain under {}", kind.label());

    let mut ssi = Ssi::new(CHAIN + 1, kind, 3);
    let root = ssi.alloc_task();
    {
        let n = ssi.world.node_mut(NodeId(0));
        n.vm.create_task(root);
        let obj = n.vm.create_object(REGION_PAGES, machvm::Backing::Anonymous);
        n.vm.map_object(root, 0, REGION_PAGES, obj, 0, Access::Write, Inherit::Copy);
    }
    ssi.finalize();

    // Root: write stamps, fork the chain, then OVERWRITE its own copy.
    // The children must still see the fork-time snapshot.
    let mut phase = 0u32;
    ssi.spawn(
        NodeId(0),
        root,
        Box::new(FnProgram(move |_env: &mut TaskEnv| {
            let step = match phase {
                p if p < REGION_PAGES => Step::Write {
                    va_page: p as u64,
                    value: 0xAA00 + p as u64,
                },
                p if p == REGION_PAGES => Step::Fork {
                    child: TaskId(101),
                    node: NodeId(1),
                    program: Box::new(Link {
                        depth: 1,
                        page: 0,
                        forked: false,
                    }),
                },
                p if p <= 2 * REGION_PAGES => Step::Write {
                    va_page: (p - REGION_PAGES - 1) as u64,
                    value: 0xBB00,
                },
                _ => Step::Done,
            };
            phase += 1;
            step
        })),
    );

    ssi.run(50_000_000).expect("chain quiesces");
    assert!(ssi.all_done());

    // Every link saw the fork-time snapshot, not the later 0xBB00 writes.
    for depth in 1..=CHAIN {
        let task = TaskId(100 + depth as u32);
        let node = ssi.node(NodeId(depth));
        let mut got = 0;
        for p in 0..REGION_PAGES {
            if let Some(v) = node.vm.peek_task_page(task, p as u64) {
                assert_eq!(
                    v,
                    0xAA00 + p as u64,
                    "link {depth} page {p} lost its snapshot"
                );
                got += 1;
            }
        }
        println!(
            "link {depth} on {}: {got}/{REGION_PAGES} snapshot pages intact",
            NodeId(depth)
        );
    }

    println!("\nsimulated time: {}", ssi.world.now());
    if let Some(t) = ssi.stats().tally("fault.ms") {
        println!("inherited-memory faults: {t}");
    }
    println!(
        "forks: {}, protocol messages: {} STS / {} NORMA",
        ssi.stats().counter("forks"),
        ssi.stats().counter("sts.messages"),
        ssi.stats().counter("norma.messages"),
    );
}
