//! The §6 "future work" file system: UFS-style local caching plus
//! PFS-style striping, on ASVM.
//!
//! A file is striped round-robin over several I/O nodes (one pager each),
//! read with request clustering, cached in compute-node memory by the
//! distributed memory layer, and updated atomically under range locks —
//! the combination the paper's closing section argues for.
//!
//! Run with: `cargo run --release --example striped_fs`

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{MachineConfig, NodeId};

fn main() {
    let mut cfg = MachineConfig::paragon(4);
    cfg.io_nodes = 4;
    let kind = ManagerKind::Asvm(asvm::AsvmConfig::with_readahead(8));
    let mut ssi = Ssi::with_machine(cfg, kind, 21);

    let pages = 256u32; // a 2 MB file
    let mobj = ssi.create_striped_object(pages, true, 4);
    println!(
        "2 MB file striped over I/O nodes {:?}",
        ssi.world.machine().io_nodes().collect::<Vec<_>>()
    );

    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                NodeId(0),
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(4);

    // Node 0 cold-reads the whole file (striped + clustered); the others
    // wait, then read it hot from node memory; node 3 finally rewrites a
    // record (4 pages) atomically under a range lock.
    let mut steps0: Vec<Step> = (0..pages)
        .map(|p| Step::Read { va_page: p as u64 })
        .collect();
    steps0.push(Step::Barrier(1));
    steps0.push(Step::Barrier(2));
    steps0.push(Step::Done);
    ssi.spawn(NodeId(0), tasks[0], Box::new(ScriptProgram::new(steps0)));
    for n in 1..4u16 {
        let mut steps: Vec<Step> = vec![Step::Barrier(1)];
        steps.extend((0..pages).map(|p| Step::Read { va_page: p as u64 }));
        if n == 3 {
            steps.push(Step::LockRange {
                va_page: 8,
                pages: 4,
            });
            steps.extend((8..12).map(|p| Step::Write {
                va_page: p,
                value: 0xED17_0000 + p,
            }));
            steps.push(Step::UnlockRange {
                va_page: 8,
                pages: 4,
            });
        }
        steps.push(Step::Barrier(2));
        steps.push(Step::Done);
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(ScriptProgram::new(steps)),
        );
    }

    ssi.run(u64::MAX / 2).expect("quiesces");
    assert!(ssi.all_done());

    let cold = ssi.node(NodeId(0)).task_runtime(tasks[0]).unwrap();
    println!(
        "cold striped read on node 0:   {:.1} MB/s",
        pages as f64 * 8192.0 / cold.as_secs_f64() / (1024.0 * 1024.0)
    );
    let s = ssi.stats();
    println!("disk reads (once per page):    {}", s.counter("disk.reads"));
    println!(
        "faults completed:              {}",
        s.counter("faults.completed")
    );
    for io in ssi.world.machine().io_nodes().collect::<Vec<_>>() {
        println!("  stripe {io}: {} disk reads", ssi.world.disk(io).reads);
    }
    // Node 3's locked update invalidated the other nodes' cached copies
    // (that is the coherence protocol working); every copy that remains
    // resident carries the new value.
    let mut holders = 0;
    for n in 0..4u16 {
        if let Some(v) = ssi.node(NodeId(n)).vm.peek_task_page(tasks[n as usize], 9) {
            assert_eq!(v, 0xED17_0009);
            holders += 1;
        }
    }
    assert!(holders >= 1, "the writer holds the updated page");
    println!("record update under the range lock is visible everywhere — UFS");
    println!("caching + PFS striping + token-free locking, per the paper's §6.");
}
