//! EM3D on the simulated multicomputer: ASVM versus the XMM baseline.
//!
//! Runs a reduced version of the paper's Table 3 workload — the EM3D
//! electromagnetic kernel with shared-memory communication — on a few node
//! counts, under both memory managers, and prints the execution times.
//!
//! Run with: `cargo run --release --example em3d_demo`

use cluster::ManagerKind;
use workloads::{em3d_run, Em3dSpec};

fn main() {
    let cells = 64_000;
    let iterations = 20; // reduced from the paper's 100 for a quick demo
    println!("EM3D, {cells} cells, {iterations} iterations (reduced demo)");
    println!(
        "{:<8}{:>14}{:>14}{:>12}",
        "nodes", "ASVM (s)", "XMM (s)", "ASVM wins"
    );
    println!("{}", "-".repeat(48));

    for nodes in [1u16, 2, 4, 8] {
        let mut aspec = Em3dSpec::paper(ManagerKind::asvm(), nodes, cells);
        aspec.iterations = iterations;
        aspec.mem_32mb = nodes == 1;
        let a = em3d_run(aspec);

        let mut xspec = Em3dSpec::paper(ManagerKind::xmm(), nodes, cells);
        xspec.iterations = iterations;
        xspec.mem_32mb = nodes == 1;
        let x = em3d_run(xspec);

        println!(
            "{:<8}{:>14.2}{:>14.2}{:>11.1}x",
            nodes,
            a.elapsed_secs,
            x.elapsed_secs,
            x.elapsed_secs / a.elapsed_secs
        );
    }
    println!();
    println!("With ASVM the times shrink as nodes are added; with NMK13 XMM the");
    println!("centralized manager serializes every fault and the times grow —");
    println!("the paper's Table 3 in miniature.");
}
