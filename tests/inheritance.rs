//! Delayed-copy semantics across remote forks (paper §3.7), property-based.
//!
//! The invariant: a forked child observes exactly the parent's memory as of
//! the fork (the settle point), no matter how the parent and child write
//! afterwards, how long the fork chain is, or in which order pages are
//! touched. Push operations protect snapshots from later parent writes;
//! pull operations materialize untouched pages across arbitrary chains.

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit, TaskId};
use proptest::prelude::*;
use svmsim::NodeId;

const REGION_PAGES: u32 = 8;

/// Script for one chain link: optional pre-fork writes, fork (if not last),
/// post-fork writes, then verify the values inherited at fork time.
#[derive(Clone, Debug)]
pub struct LinkPlan {
    /// Pages this link writes *before* forking the next link.
    pub pre_writes: Vec<u32>,
    /// Pages this link writes *after* the fork returned.
    pub post_writes: Vec<u32>,
}

/// What one link runs: execute the plan, verify inherited values.
struct Link {
    depth: u16,
    plans: Vec<LinkPlan>,
    /// Value each page must have inherited (computed by the reference).
    expect: Vec<u64>,
    stage: u8,
    idx: usize,
    fork_sent: bool,
}

fn write_stamp(depth: u16, page: u32, post: bool) -> u64 {
    0x1_0000 + (depth as u64) * 0x100 + page as u64 * 4 + if post { 1 } else { 0 }
}

impl Program for Link {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        let plan = self.plans[self.depth as usize].clone();
        let last = self.depth as usize == self.plans.len() - 1;
        loop {
            match self.stage {
                // Verify inherited contents first (before own writes).
                0 => {
                    if self.idx < REGION_PAGES as usize {
                        let p = self.idx;
                        self.idx += 1;
                        self.stage = 1;
                        return Step::Read { va_page: p as u64 };
                    }
                    self.stage = 2;
                    self.idx = 0;
                }
                1 => {
                    let p = self.idx - 1;
                    if self.depth > 0 {
                        let got = env.last_read.expect("read done");
                        assert_eq!(
                            got, self.expect[p],
                            "depth {} page {p}: inherited {got:#x}, expected {:#x}",
                            self.depth, self.expect[p]
                        );
                    }
                    self.stage = 0;
                }
                // Pre-fork writes.
                2 => {
                    if self.idx < plan.pre_writes.len() {
                        let p = plan.pre_writes[self.idx];
                        self.idx += 1;
                        return Step::Write {
                            va_page: p as u64,
                            value: write_stamp(self.depth, p, false),
                        };
                    }
                    self.stage = 3;
                    self.idx = 0;
                }
                // Fork the next link.
                3 => {
                    if !last && !self.fork_sent {
                        self.fork_sent = true;
                        // The child inherits what this link sees right now.
                        let mut child_expect = self.expect.clone();
                        if self.depth == 0 {
                            // Root's pre-write state is the baseline.
                            child_expect = vec![0; REGION_PAGES as usize];
                        }
                        for p in &plan.pre_writes {
                            child_expect[*p as usize] = write_stamp(self.depth, *p, false);
                        }
                        return Step::Fork {
                            child: TaskId(500 + self.depth as u32 + 1),
                            node: NodeId(env.node.0 + 1),
                            program: Box::new(Link {
                                depth: self.depth + 1,
                                plans: self.plans.clone(),
                                expect: child_expect,
                                stage: 0,
                                idx: 0,
                                fork_sent: false,
                            }),
                        };
                    }
                    self.stage = 4;
                    self.idx = 0;
                }
                // Post-fork writes (must NOT leak into the child).
                4 => {
                    if self.idx < plan.post_writes.len() {
                        let p = plan.post_writes[self.idx];
                        self.idx += 1;
                        return Step::Write {
                            va_page: p as u64,
                            value: write_stamp(self.depth, p, true),
                        };
                    }
                    return Step::Done;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Wait: the child's expect must account for inherited values, not only the
/// parent's own pre-writes. The parent computes it incrementally: its own
/// view is `expect` overlaid with its pre-writes; that is what the child
/// inherits (done in stage 3 above — except depth 0 starts from zeros).
fn run_chain(kind: ManagerKind, plans: Vec<LinkPlan>) {
    let nodes = plans.len() as u16;
    let mut ssi = Ssi::new(nodes.max(2), kind, 77);
    let root = ssi.alloc_task();
    {
        let n = ssi.world.node_mut(NodeId(0));
        n.vm.create_task(root);
        let obj = n.vm.create_object(REGION_PAGES, machvm::Backing::Anonymous);
        n.vm.map_object(root, 0, REGION_PAGES, obj, 0, Access::Write, Inherit::Copy);
    }
    ssi.finalize();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(0)).install_task(
        root,
        Box::new(Link {
            depth: 0,
            plans,
            expect: vec![0; REGION_PAGES as usize],
            stage: 2, // the root skips inherited verification
            idx: 0,
            fork_sent: false,
        }),
        now,
    );
    ssi.world.post(now, NodeId(0), cluster::Msg::Resume(root));
    ssi.run(500_000_000).expect("chain quiesces");
    assert!(ssi.all_done(), "all links finish");
    match kind {
        ManagerKind::Asvm(_) => cluster::check_asvm_invariants(&ssi),
        ManagerKind::Xmm { .. } => cluster::check_xmm_invariants(&ssi),
    }
}

fn plan_strategy(links: usize) -> impl Strategy<Value = Vec<LinkPlan>> {
    prop::collection::vec(
        (
            prop::collection::vec(0..REGION_PAGES, 0..4),
            prop::collection::vec(0..REGION_PAGES, 0..4),
        )
            .prop_map(|(pre_writes, post_writes)| LinkPlan {
                pre_writes,
                post_writes,
            }),
        links,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, .. ProptestConfig::default() })]

    #[test]
    fn asvm_chain_snapshots_hold(plans in plan_strategy(4)) {
        run_chain(ManagerKind::asvm(), plans);
    }

    #[test]
    fn xmm_chain_snapshots_hold(plans in plan_strategy(3)) {
        run_chain(ManagerKind::xmm(), plans);
    }
}

#[test]
fn post_fork_writes_do_not_leak() {
    // Root writes everything, forks, rewrites everything; child must see
    // only the pre-fork values — the hardest push-path case.
    let plans = vec![
        LinkPlan {
            pre_writes: (0..REGION_PAGES).collect(),
            post_writes: (0..REGION_PAGES).collect(),
        },
        LinkPlan {
            pre_writes: vec![],
            post_writes: vec![],
        },
    ];
    run_chain(ManagerKind::asvm(), plans.clone());
    run_chain(ManagerKind::xmm(), plans);
}

#[test]
fn every_link_writes_every_page() {
    let plans: Vec<LinkPlan> = (0..4)
        .map(|_| LinkPlan {
            pre_writes: (0..REGION_PAGES).collect(),
            post_writes: (0..REGION_PAGES).collect(),
        })
        .collect();
    run_chain(ManagerKind::asvm(), plans.clone());
    run_chain(ManagerKind::xmm(), plans);
}
