//! Shared helpers for the cross-crate integration tests: a generic trace
//! runner that executes a barrier-sequenced operation schedule on a live
//! cluster and checks every read — in-band, at the moment it happens —
//! against a sequential reference memory.

use std::collections::BTreeMap;

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit, TaskId};
use svmsim::{FaultPlan, MachineConfig, NodeId};

/// One operation of a coherence trace.
#[derive(Clone, Copy, Debug)]
pub struct TraceOp {
    /// Node performing the operation this round.
    pub node: u16,
    /// Page operated on.
    pub page: u32,
    /// Write (true) or read (false).
    pub write: bool,
}

/// The deterministic value written in round `r`.
#[allow(dead_code)]
pub fn round_value(r: usize) -> u64 {
    0x5EED_0000 + r as u64
}

enum Phase {
    Op,
    CheckThenBarrier,
    Verify,
    VerifyCheck,
}

/// Per-node program executing its slice of the rounds, barrier-separated,
/// verifying each read against the sequential reference.
struct TraceRunner {
    me: u16,
    label: &'static str,
    ops: Vec<TraceOp>,
    /// Reference value of each op's page *at its round* (what a read must
    /// observe).
    expected_at: Vec<u64>,
    /// Final reference per page.
    finals: BTreeMap<u32, u64>,
    pages: u32,
    round: usize,
    phase: Phase,
    verify_page: u32,
}

impl Program for TraceRunner {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        loop {
            if self.round < self.ops.len() {
                let op = self.ops[self.round];
                match self.phase {
                    Phase::Op => {
                        self.phase = Phase::CheckThenBarrier;
                        if op.node == self.me {
                            return if op.write {
                                Step::Write {
                                    va_page: op.page as u64,
                                    value: round_value(self.round),
                                }
                            } else {
                                Step::Read {
                                    va_page: op.page as u64,
                                }
                            };
                        }
                        // Not our round; fall through to the barrier.
                    }
                    Phase::CheckThenBarrier => {
                        if op.node == self.me && !op.write {
                            let got = env.last_read.expect("read completed");
                            let want = self.expected_at[self.round];
                            assert_eq!(
                                got, want,
                                "{} node {} round {} page {}: read {got:#x}, \
                                 reference says {want:#x}",
                                self.label, self.me, self.round, op.page
                            );
                        }
                        let r = self.round;
                        self.round += 1;
                        self.phase = Phase::Op;
                        return Step::Barrier(r as u32);
                    }
                    _ => unreachable!(),
                }
            } else {
                match self.phase {
                    Phase::Op | Phase::CheckThenBarrier => self.phase = Phase::Verify,
                    Phase::Verify => {
                        if self.verify_page < self.pages {
                            self.phase = Phase::VerifyCheck;
                            return Step::Read {
                                va_page: self.verify_page as u64,
                            };
                        }
                        return Step::Done;
                    }
                    Phase::VerifyCheck => {
                        let got = env.last_read.expect("verify read completed");
                        let want = self.finals.get(&self.verify_page).copied().unwrap_or(0);
                        assert_eq!(
                            got, want,
                            "{} node {} final page {}: read {got:#x}, reference {want:#x}",
                            self.label, self.me, self.verify_page
                        );
                        self.verify_page += 1;
                        self.phase = Phase::Verify;
                    }
                }
            }
        }
    }
}

/// Runs `f` against the cluster and, if it panics, dumps the protocol
/// trace ring before resuming the panic — so the interleaving that broke
/// an assertion is visible in the test log. Call [`Ssi::enable_trace`]
/// first; every trace-driven test should funnel its run through here.
#[allow(dead_code)]
pub fn with_trace_dump<R>(ssi: &mut Ssi, f: impl FnOnce(&mut Ssi) -> R) -> R {
    let outcome = {
        let inner = &mut *ssi;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(inner)))
    };
    match outcome {
        Ok(r) => r,
        Err(panic) => {
            let (events, dropped) = ssi.trace_dump();
            eprintln!(
                "--- protocol trace ({} events retained, {} dropped) ---",
                events.len(),
                dropped
            );
            for ev in &events {
                eprintln!("{ev}");
            }
            eprintln!("--- end protocol trace ---");
            std::panic::resume_unwind(panic)
        }
    }
}

/// Builds the trace-runner cluster: reference values, object mapping,
/// barrier setup, trace ring, and one [`TraceRunner`] per node.
#[allow(dead_code)]
fn build_trace(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    ops: &[TraceOp],
    faults: FaultPlan,
) -> Ssi {
    // Build the per-round and final reference values.
    let mut mem: BTreeMap<u32, u64> = BTreeMap::new();
    let mut expected_at = Vec::with_capacity(ops.len());
    for (r, op) in ops.iter().enumerate() {
        expected_at.push(mem.get(&op.page).copied().unwrap_or(0));
        if op.write {
            mem.insert(op.page, round_value(r));
        }
    }
    let finals = mem;

    let mut cfg = MachineConfig::paragon(nodes);
    cfg.faults = faults;
    let mut ssi = Ssi::with_machine(cfg, kind, 99);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<TaskId> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);
    // Keep the last protocol messages around for with_trace_dump.
    ssi.enable_trace(96);
    for n in 0..nodes {
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(TraceRunner {
                me: n,
                label: kind.label(),
                ops: ops.to_vec(),
                expected_at: expected_at.clone(),
                finals: finals.clone(),
                pages,
                round: 0,
                phase: Phase::Op,
                verify_page: 0,
            }),
        );
    }
    ssi
}

/// Runs `ops` on a `nodes`-node cluster under `kind`, checking strong
/// coherence: every read (both in-trace and in a final all-pages pass on
/// every node) observes the most recent write in barrier order.
#[allow(dead_code)]
pub fn run_trace(kind: ManagerKind, nodes: u16, pages: u32, ops: &[TraceOp]) {
    run_trace_faulted(kind, nodes, pages, ops, FaultPlan::none());
}

/// [`run_trace`] on a machine with `faults` armed: the same in-band
/// coherence checks must hold while the fault layer drops, duplicates and
/// delays protocol messages under the ASVM retry channel. Keep loss rates
/// below retry exhaustion (~10 %) — this variant still requires the run to
/// complete.
#[allow(dead_code)]
pub fn run_trace_faulted(
    kind: ManagerKind,
    nodes: u16,
    pages: u32,
    ops: &[TraceOp],
    faults: FaultPlan,
) {
    let mut ssi = build_trace(kind, nodes, pages, ops, faults);
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(200_000_000).expect("trace quiesces");
        assert!(
            ssi.all_done(),
            "{}: all trace runners finish",
            ssi.kind().label()
        );
        match ssi.kind() {
            ManagerKind::Asvm(_) => cluster::check_asvm_invariants(ssi),
            ManagerKind::Xmm { .. } => cluster::check_xmm_invariants(ssi),
        }
    });
}

/// Runs `ops` on the **surviving** nodes of a cluster whose `victim` node
/// suffers a permanent blackout from `dark_from` on, and checks the same
/// strong-coherence reference as [`run_trace`] on the survivors.
///
/// `ops[].node` indexes the live nodes (`0..nodes-1`); the builder remaps
/// them onto the actual node ids around the victim. The victim maps the
/// shared object (so static ownership-manager roles hash onto it and its
/// death forces the rehash + reconstruction paths, `docs/RELIABILITY.md`)
/// but performs no memory operations — it just computes past the blackout
/// and finishes, so the sequential reference stays well-defined for the
/// survivors: no page's only copy can die with it.
#[allow(dead_code)]
pub fn run_trace_with_victim(
    nodes: u16,
    pages: u32,
    ops: &[TraceOp],
    victim: NodeId,
    dark_from: svmsim::Time,
    plan_seed: u64,
) {
    assert!(
        victim.0 != 0 && victim.0 < nodes,
        "victim must be a compute node other than the barrier coordinator"
    );
    let live: Vec<u16> = (0..nodes).filter(|n| *n != victim.0).collect();
    let ops: Vec<TraceOp> = ops
        .iter()
        .map(|op| TraceOp {
            node: live[op.node as usize % live.len()],
            ..*op
        })
        .collect();

    // Reference values over the remapped trace.
    let mut mem: BTreeMap<u32, u64> = BTreeMap::new();
    let mut expected_at = Vec::with_capacity(ops.len());
    for (r, op) in ops.iter().enumerate() {
        expected_at.push(mem.get(&op.page).copied().unwrap_or(0));
        if op.write {
            mem.insert(op.page, round_value(r));
        }
    }
    let finals = mem;

    let mut cfg = MachineConfig::paragon(nodes);
    cfg.faults = FaultPlan::seeded(plan_seed).with_blackout(victim, dark_from, svmsim::Time::MAX);
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::asvm(), 99);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<TaskId> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    // Only the survivors run the barrier-sequenced trace.
    ssi.set_barrier_parties(nodes as u32 - 1);
    ssi.enable_trace(96);
    for n in 0..nodes {
        if n == victim.0 {
            // The victim idles past the blackout, then finishes; its
            // protocol role in this rig is purely to die holding static
            // manager duties.
            ssi.spawn(
                NodeId(n),
                tasks[n as usize],
                Box::new(cluster::ScriptProgram::new(vec![
                    Step::Compute(svmsim::Dur::from_millis(50)),
                    Step::Done,
                ])),
            );
        } else {
            ssi.spawn(
                NodeId(n),
                tasks[n as usize],
                Box::new(TraceRunner {
                    me: n,
                    label: "ASVM+victim",
                    ops: ops.clone(),
                    expected_at: expected_at.clone(),
                    finals: finals.clone(),
                    pages,
                    round: 0,
                    phase: Phase::Op,
                    verify_page: 0,
                }),
            );
        }
    }
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(200_000_000).expect("victim trace quiesces");
        assert!(
            ssi.all_done(),
            "survivors (and the victim's local compute) must all finish"
        );
        cluster::check_asvm_invariants_except(ssi, &[victim]);
    });
}

/// Like [`run_trace`] but dumps per-node state instead of asserting
/// completion (debugging aid).
#[allow(dead_code)]
pub fn run_trace_debug(kind: ManagerKind, nodes: u16, pages: u32, ops: &[TraceOp]) {
    let mut ssi = build_trace(kind, nodes, pages, ops, FaultPlan::none());
    let mobj = machvm::MemObjId(1); // First object created by the builder.
    ssi.run(200_000_000).expect("trace quiesces");
    for n in 0..nodes {
        let node = ssi.node(NodeId(n));
        let o = node.asvm().expect("trace rig runs ASVM").object(mobj);
        println!(
            "node {n}: done={} pages={:?} pending={:?} filling={:?} sw={:?} fw={:?} vmf={}",
            node.all_tasks_done(),
            o.pages.keys().collect::<Vec<_>>(),
            o.pending,
            o.static_filling,
            o.static_waiting
                .iter()
                .map(|(k, v)| (*k, v.len()))
                .collect::<Vec<_>>(),
            o.fill_waiters
                .iter()
                .map(|(k, v)| (*k, v.len()))
                .collect::<Vec<_>>(),
            node.vm.pending_faults()
        );
    }
    assert!(ssi.all_done(), "stalled");
}
