//! Internode paging under memory pressure (paper §3.6), property-based.
//!
//! Invariants: no write is ever lost, regardless of how often pages are
//! evicted, transferred between nodes, or returned to the pager; and the
//! cluster keeps pages in node memory in preference to disk.

mod common;

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit};
use proptest::prelude::*;
use svmsim::{MachineConfig, NodeId};

/// Writes `region` pages (larger than one node's memory), then reads them
/// all back in a random-ish order and checks the values.
struct Churn {
    region: u32,
    phase: u8,
    idx: u32,
    stride: u32,
}

impl Program for Churn {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        loop {
            match self.phase {
                0 => {
                    if self.idx < self.region {
                        let p = self.idx;
                        self.idx += 1;
                        return Step::Write {
                            va_page: p as u64,
                            value: 0xCAFE_0000 + p as u64,
                        };
                    }
                    self.phase = 1;
                    self.idx = 0;
                }
                1 => {
                    if self.idx < self.region {
                        // Strided revisit order stresses the clock policy.
                        let p = (self.idx * self.stride) % self.region;
                        self.idx += 1;
                        self.phase = 2;
                        return Step::Read { va_page: p as u64 };
                    }
                    return Step::Done;
                }
                2 => {
                    let p = ((self.idx - 1) * self.stride) % self.region;
                    let got = env.last_read.expect("read done");
                    assert_eq!(
                        got,
                        0xCAFE_0000 + p as u64,
                        "page {p} lost its data under memory pressure"
                    );
                    self.phase = 1;
                }
                _ => unreachable!(),
            }
        }
    }
}

fn churn(kind: ManagerKind, capacity_pages: u64, region: u32, stride: u32, nodes: u16) {
    let mut cfg = MachineConfig::paragon(nodes);
    cfg.user_mem_bytes_per_node = capacity_pages * 8192;
    let mut ssi = Ssi::with_machine(cfg, kind, 3);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, region, false);
    let tasks: Vec<_> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                region,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    // Only node 0 runs the churner; the rest donate their memory.
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(Churn {
            region,
            phase: 0,
            idx: 0,
            stride,
        }),
    );
    ssi.run(u64::MAX / 2).expect("churn quiesces");
    assert!(ssi.node(NodeId(0)).all_tasks_done(), "churner finished");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn asvm_survives_pressure(
        region in 96u32..192,
        stride in prop::sample::select(vec![1u32, 3, 7, 11]),
    ) {
        // 64-page nodes; the region overflows node 0 several times over.
        churn(ManagerKind::asvm(), 64, region, stride, 4);
    }

    #[test]
    fn xmm_survives_pressure(
        region in 96u32..160,
        stride in prop::sample::select(vec![1u32, 3, 7]),
    ) {
        churn(ManagerKind::xmm(), 64, region, stride, 3);
    }
}

#[test]
fn asvm_prefers_peer_memory_over_disk() {
    let mut cfg = MachineConfig::paragon(4);
    cfg.user_mem_bytes_per_node = 64 * 8192;
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::asvm(), 3);
    let home = NodeId(0);
    let region = 128u32;
    let mobj = ssi.create_object(home, region, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                region,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(Churn {
            region,
            phase: 0,
            idx: 0,
            stride: 1,
        }),
    );
    ssi.run(u64::MAX / 2).expect("quiesces");
    // 128 pages into a 64-page node: overflow fits in the 3 idle peers
    // (3 x 64 = 192 pages), so no disk traffic is needed at all.
    assert_eq!(
        ssi.stats().counter("disk.writes"),
        0,
        "peer memory should absorb the overflow without touching the disk"
    );
}

#[test]
fn xmm_under_pressure_goes_to_disk() {
    // The baseline has no internode paging: the same overflow must hit the
    // pager's disk.
    let mut cfg = MachineConfig::paragon(4);
    cfg.user_mem_bytes_per_node = 64 * 8192;
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::xmm(), 3);
    let home = NodeId(0);
    let region = 128u32;
    let mobj = ssi.create_object(home, region, false);
    let t = ssi.alloc_task();
    ssi.map_shared(
        t,
        NodeId(0),
        0,
        mobj,
        home,
        region,
        Access::Write,
        Inherit::Share,
    );
    ssi.finalize();
    ssi.spawn(
        NodeId(0),
        t,
        Box::new(Churn {
            region,
            phase: 0,
            idx: 0,
            stride: 1,
        }),
    );
    ssi.run(u64::MAX / 2).expect("quiesces");
    assert!(
        ssi.stats().counter("disk.writes") > 0,
        "XMM overflow must be written to the paging space"
    );
}
