//! Strong-coherence property tests: randomized multi-node access traces
//! checked against a sequential reference memory, for both managers.
//!
//! The paper (§3.5): *"The only coherency model that is currently supported
//! by ASVM is strong coherence, which means that any read operation to a
//! shared memory address will return the data of the most recent write
//! operation to this address."*

mod common;

use cluster::ManagerKind;
use common::{run_trace, TraceOp};
use proptest::prelude::*;

fn trace_strategy(nodes: u16, pages: u32, max_ops: usize) -> impl Strategy<Value = Vec<TraceOp>> {
    prop::collection::vec(
        (0..nodes, 0..pages, any::<bool>()).prop_map(|(node, page, write)| TraceOp {
            node,
            page,
            write,
        }),
        1..max_ops,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn asvm_is_strongly_coherent(ops in trace_strategy(4, 6, 24)) {
        run_trace(ManagerKind::asvm(), 4, 6, &ops);
    }

    #[test]
    fn xmm_is_strongly_coherent(ops in trace_strategy(3, 4, 16)) {
        run_trace(ManagerKind::xmm(), 3, 4, &ops);
    }

    #[test]
    fn asvm_without_dynamic_forwarding_is_coherent(ops in trace_strategy(4, 6, 16)) {
        run_trace(
            ManagerKind::Asvm(asvm::AsvmConfig::fixed_distributed()),
            4,
            6,
            &ops,
        );
    }

    #[test]
    fn asvm_global_only_is_coherent(ops in trace_strategy(4, 4, 12)) {
        run_trace(ManagerKind::Asvm(asvm::AsvmConfig::global_only()), 4, 4, &ops);
    }
}

#[test]
fn write_write_conflict_on_one_page() {
    // Two nodes alternately writing one page: maximum ownership ping-pong.
    let ops: Vec<TraceOp> = (0..12)
        .map(|i| TraceOp {
            node: (i % 2) as u16,
            page: 0,
            write: true,
        })
        .collect();
    run_trace(ManagerKind::asvm(), 2, 1, &ops);
    run_trace(ManagerKind::xmm(), 2, 1, &ops);
}

#[test]
fn rotating_writer_many_readers() {
    let mut ops = Vec::new();
    for r in 0..6 {
        ops.push(TraceOp {
            node: r % 4,
            page: 0,
            write: true,
        });
        for n in 0..4 {
            ops.push(TraceOp {
                node: n,
                page: 0,
                write: false,
            });
        }
    }
    run_trace(ManagerKind::asvm(), 4, 1, &ops);
}

#[test]
fn disjoint_pages_do_not_interfere() {
    // Each node hammers its own page; coherence of the final cross-reads
    // exercises read-grant fan-out.
    let mut ops = Vec::new();
    for round in 0..4 {
        for n in 0..4u16 {
            ops.push(TraceOp {
                node: n,
                page: n as u32,
                write: true,
            });
        }
        let _ = round;
    }
    run_trace(ManagerKind::asvm(), 4, 4, &ops);
    run_trace(ManagerKind::xmm(), 4, 4, &ops);
}
