//! Fault-injection coverage: the ASVM retry channel must hide message
//! drops, duplications and delays from the coherence protocol, and must
//! fail *cleanly* (retry exhaustion, never a hang) when a link is truly
//! dead. Reliability model: `docs/RELIABILITY.md`.
//!
//! The CI fault-matrix job runs this file under two fixed seeds via the
//! `ASVM_FAULTS_SEED` environment variable (default 1996); every fault
//! plan in here folds that seed in, so both runs exercise different
//! injected schedules with the same assertions.

mod common;

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use common::{run_trace_faulted, with_trace_dump, TraceOp};
use machvm::{Access, Inherit};
use proptest::prelude::*;
use svmsim::{Dur, FaultPlan, LinkFaults, MachineConfig, NodeId};
use workloads::{run_pattern_faulted, Pattern};

/// Base seed for every fault plan in this file (CI matrix: 1996, 777).
fn fault_seed() -> u64 {
    std::env::var("ASVM_FAULTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1996)
}

fn trace_strategy(nodes: u16, pages: u32, max_ops: usize) -> impl Strategy<Value = Vec<TraceOp>> {
    prop::collection::vec(
        (0..nodes, 0..pages, any::<bool>()).prop_map(|(node, page, write)| TraceOp {
            node,
            page,
            write,
        }),
        1..max_ops,
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// Convergence under randomized fault plans: any barrier-sequenced
    /// trace, run under random drop/duplicate/delay rates, still satisfies
    /// the sequential reference on every in-band read and every final
    /// page — no lost pages, no duplicate-apply. Rates stay below the
    /// retry-exhaustion regime (~6 % loss with 6 attempts leaves the
    /// per-frame failure odds around 1e-8).
    #[test]
    fn randomized_fault_plans_converge_to_the_reference(
        ops in trace_strategy(3, 4, 12),
        drop_ppm in 0u32..60_000,
        dup_ppm in 0u32..30_000,
        delay_ppm in 0u32..30_000,
    ) {
        let salt = ((drop_ppm as u64) << 40) ^ ((dup_ppm as u64) << 20) ^ delay_ppm as u64;
        let plan = FaultPlan::seeded(fault_seed() ^ salt)
            .with_drop_ppm(drop_ppm)
            .with_dup_ppm(dup_ppm)
            .with_delay(delay_ppm, Dur::from_millis(2));
        run_trace_faulted(ManagerKind::asvm(), 3, 4, &ops, plan);
    }
}

/// A scripted 100 %-loss link kills every retry: exhaustion must feed the
/// failure detector (the dead peer becomes suspected), and the request
/// watchdog must then carry the stranded reader to completion through the
/// terminal pager re-fetch — a degraded-but-finished run, never a hang.
/// Also the regression test for `Ssi::link_failures` draining: a second
/// poll must come back empty instead of re-reporting the same failures.
#[test]
fn total_loss_exhausts_retries_cleanly() {
    let mut cfg = MachineConfig::paragon(2);
    cfg.faults = FaultPlan::seeded(fault_seed()).with_link(
        NodeId(1),
        NodeId(0),
        LinkFaults {
            drop_ppm: 1_000_000,
            ..LinkFaults::NONE
        },
    );
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::asvm(), 7);
    let mobj = ssi.create_object(NodeId(0), 2, false);
    let writer = ssi.alloc_task();
    let reader = ssi.alloc_task();
    for (t, n) in [(writer, 0u16), (reader, 1u16)] {
        ssi.map_shared(
            t,
            NodeId(n),
            0,
            mobj,
            NodeId(0),
            2,
            Access::Write,
            Inherit::Share,
        );
    }
    ssi.finalize();
    ssi.set_barrier_parties(2);
    ssi.enable_trace(96);
    ssi.spawn(
        NodeId(0),
        writer,
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 7,
            },
            Step::Barrier(0),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(1),
        reader,
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(0),
            // This fault's PageReq leaves node 1 for the home node over
            // the dead link; every transmission is dropped.
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
    );
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(50_000_000)
            .expect("exhaustion quiesces, never hangs");
        assert!(
            ssi.stats().counter("asvm.retry.exhausted") >= 1,
            "retries must exhaust"
        );
        // Exhaustion evidence reaches the failure detector…
        assert!(
            ssi.stats().counter("cluster.suspect.count") >= 1,
            "exhaustion must raise suspicion"
        );
        // …and the watchdog's terminal rung re-fetches from the pager
        // (reachable over reliable NORMA-IPC), so the reader finishes —
        // with pager-stale data, which is the documented trade
        // (docs/RELIABILITY.md), hence no value assertion here.
        assert!(
            ssi.stats().counter("asvm.recover.refetch") >= 1,
            "the stranded read must fall back to the pager"
        );
        assert!(
            ssi.all_done(),
            "recovery must carry the reader to completion"
        );
        let failures = ssi.link_failures();
        assert!(!failures.is_empty(), "link failure must be recorded");
        assert_eq!(failures[0].peer, NodeId(0), "the dead link points home");
        // Draining semantics: the first poll consumed the records.
        assert!(
            ssi.link_failures().is_empty(),
            "link_failures must drain, not re-copy"
        );
    });
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// Killing a static ownership-manager node mid-run: a randomly chosen
    /// compute node (which holds the static manager role for its share of
    /// pages) goes permanently dark at a random point in the first 30 ms.
    /// The survivors' barrier-sequenced trace must still converge to the
    /// sequential reference — rehash of the dead manager's roles, watchdog
    /// re-issue and ownership reconstruction all have to work — with no
    /// hung pending requests at quiescence.
    #[test]
    fn static_manager_death_converges_to_the_reference(
        ops in trace_strategy(3, 4, 10),
        victim in 1u16..4,
        dark_ms in 1u64..30,
    ) {
        use svmsim::Time;
        common::run_trace_with_victim(
            4,
            4,
            &ops,
            NodeId(victim),
            Time::from_nanos(dark_ms * 1_000_000),
            fault_seed() ^ (dark_ms << 16) ^ victim as u64,
        );
    }
}

/// Same seed, same plan, same workload: every statistic of a faulted run
/// is reproducible — the fault stream comes from its own seeded generator.
#[test]
fn faulted_runs_are_deterministic() {
    let plan = || {
        FaultPlan::seeded(fault_seed())
            .with_drop_ppm(30_000)
            .with_dup_ppm(10_000)
            .with_delay(10_000, Dur::from_millis(1))
    };
    let run = || {
        let out = run_pattern_faulted(
            ManagerKind::asvm(),
            4,
            8,
            Pattern::Migratory { rounds: 3 },
            plan(),
        );
        (
            out.completed,
            out.outcome.faults,
            out.outcome.messages,
            out.outcome.events,
            out.outcome.elapsed_s.to_bits(),
            out.dropped,
            out.duplicated,
            out.delayed,
            out.resent,
            out.exhausted,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two identically-seeded faulted runs diverged");
    assert!(a.0, "faulted migratory run completes");
    assert!(a.5 > 0, "3% loss must drop something");
    assert!(a.8 > 0, "drops must provoke retransmissions");
}

/// An inactive plan — even a seeded one — changes nothing: the fault RNG
/// is never consulted, so results are identical to `FaultPlan::none()`
/// (the stdout byte-identity check in CI relies on this).
#[test]
fn inactive_plans_do_not_perturb_runs() {
    let run = |plan: FaultPlan| {
        let out = run_pattern_faulted(
            ManagerKind::asvm(),
            4,
            8,
            Pattern::ProducerConsumer { rounds: 2 },
            plan,
        );
        (
            out.outcome.faults,
            out.outcome.messages,
            out.outcome.events,
            out.outcome.elapsed_s.to_bits(),
        )
    };
    let baseline = run(FaultPlan::none());
    // Seeded but all rates zero: is_active() is false, nothing changes.
    let seeded = run(FaultPlan::seeded(fault_seed()));
    assert_eq!(baseline, seeded, "inactive seeded plan perturbed the run");
}

/// Duplicate-heavy traffic: every duplicated frame must be suppressed by
/// the receiver (the protocol would double-apply otherwise), and the
/// coherence checks still hold. XMM control traffic rides reliable
/// NORMA-IPC, so the same trace under XMM is unaffected by the plan.
#[test]
fn duplicates_are_suppressed_not_applied() {
    let plan = FaultPlan::seeded(fault_seed().wrapping_mul(3))
        .with_dup_ppm(200_000)
        .with_delay(100_000, Dur::from_millis(1));
    let ops: Vec<TraceOp> = (0..10)
        .map(|i| TraceOp {
            node: (i % 3) as u16,
            page: (i % 2) as u32,
            write: i % 3 != 2,
        })
        .collect();
    run_trace_faulted(ManagerKind::asvm(), 3, 2, &ops, plan.clone());
    run_trace_faulted(ManagerKind::xmm(), 3, 2, &ops, plan.clone());

    // Counter-level check: the duplicates actually happened and were
    // caught at the receiver.
    let out = run_pattern_faulted(
        ManagerKind::asvm(),
        4,
        8,
        Pattern::Migratory { rounds: 3 },
        plan,
    );
    assert!(out.completed);
    assert!(out.duplicated > 0, "20% dup rate must duplicate something");
}

/// A dropped *coalesced* frame retries and converges exactly like its
/// unbatched equivalent: the whole multi-subframe body is one ARQ unit —
/// one sequence number, one fault decision, one retransmission — so loss
/// of a frame carrying a readahead burst is recovered wholesale. Both
/// arms run the same plan; both must complete through retransmission,
/// and the coalesced arm must actually have been merging when hit.
#[test]
fn dropped_coalesced_frames_retry_and_converge() {
    let plan = || {
        FaultPlan::seeded(fault_seed() ^ 0xC0A1)
            .with_drop_ppm(30_000)
            .with_dup_ppm(10_000)
    };
    let base = asvm::AsvmConfig::with_readahead(8);
    let off = run_pattern_faulted(
        ManagerKind::Asvm(base),
        4,
        16,
        Pattern::ProducerConsumer { rounds: 3 },
        plan(),
    );
    let on = run_pattern_faulted(
        ManagerKind::Asvm(base.coalesced()),
        4,
        16,
        Pattern::ProducerConsumer { rounds: 3 },
        plan(),
    );
    assert!(off.completed, "unbatched arm completes under 3% loss");
    assert!(on.completed, "coalesced arm completes under 3% loss");
    assert!(
        on.outcome.coalesce_merged > 0,
        "the coalesced arm must have merged subframes while being hit"
    );
    assert!(
        on.dropped > 0,
        "the plan must have dropped coalesced frames"
    );
    assert!(
        on.resent > 0,
        "dropped coalesced frames must be retransmitted as whole bodies"
    );
    assert_eq!(
        off.exhausted, 0,
        "loss rate stays below the exhaustion regime (off arm)"
    );
    assert_eq!(
        on.exhausted, 0,
        "loss rate stays below the exhaustion regime (on arm)"
    );
}

/// A scripted blackout window delays progress but, once it lifts, retries
/// push the workload through to completion.
#[test]
fn blackout_window_recovers_after_it_lifts() {
    use svmsim::Time;
    let plan = FaultPlan::seeded(fault_seed() ^ 0xB1AC).with_blackout(
        NodeId(1),
        Time::ZERO,
        Time::ZERO + Dur::from_millis(20),
    );
    let out = run_pattern_faulted(
        ManagerKind::asvm(),
        4,
        8,
        Pattern::Migratory { rounds: 2 },
        plan,
    );
    assert!(out.completed, "workload must finish after the blackout");
    assert!(out.dropped > 0, "the blackout must have eaten messages");
    assert!(out.resent > 0, "recovery happens through retransmission");
}
