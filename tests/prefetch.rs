//! Integration tests for the access-pattern-driven prefetch engine:
//! stream detection, speculative data pulls, cancellation on a pattern
//! break, and the piggybacked owner-hint tier.

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit, PageIdx};
use svmsim::NodeId;

/// No recovery machinery may fire in a healthy (fault-free) run: a
/// speculative fill arriving after a cancellation must be absorbed, not
/// "recovered" from.
fn assert_healthy(ssi: &Ssi) {
    for (key, v) in ssi.stats().counters() {
        assert!(
            !key.starts_with("asvm.recover.") && !key.starts_with("cluster.suspect."),
            "healthy prefetch run tripped recovery: {key} = {v}"
        );
    }
}

/// A mid-stream stride change must cancel the speculative window: the
/// detector resets (no further issues against the dead stride), every
/// in-flight fill is counted under `asvm.prefetch.cancelled`, and the
/// late-arriving fills are absorbed without staleness — the reads after
/// the break still observe the file's bytes.
#[test]
fn pattern_break_cancels_inflight_prefetches() {
    let kind = ManagerKind::Asvm(asvm::AsvmConfig::with_prefetch(8).coalesced());
    let mut ssi = Ssi::new(2, kind, 5);
    let pages = 64u32;
    let mobj = ssi.create_object(NodeId(0), pages, true);
    let t = ssi.alloc_task();
    ssi.map_shared(
        t,
        NodeId(1),
        0,
        mobj,
        NodeId(0),
        pages,
        Access::Write,
        Inherit::Share,
    );
    ssi.finalize();
    // Stride-1 stream long enough to lock the detector and fill the
    // speculative window, then a hard jump to a stride-4 region.
    let steps: Vec<Step> = (0..12u64)
        .map(|p| Step::Read { va_page: p })
        .chain([40u64, 44, 48].map(|p| Step::Read { va_page: p }))
        .chain([Step::Done])
        .collect();
    ssi.spawn(NodeId(1), t, Box::new(ScriptProgram::new(steps)));
    ssi.run(u64::MAX / 2).expect("quiesces");
    assert!(ssi.all_done());
    assert!(
        ssi.stats().counter("asvm.prefetch.issued") > 0,
        "the stride-1 run must trigger speculative pulls"
    );
    assert!(
        ssi.stats().counter("asvm.prefetch.cancelled") >= 1,
        "the jump to page 40 must cancel the in-flight window"
    );
    // No stale fills: the post-break reads see the file's bytes.
    for p in [5u64, 40, 44, 48] {
        assert_eq!(
            ssi.node(NodeId(1)).vm.peek_task_page(t, p),
            Some(pager::file_stamp(mobj, PageIdx(p as u32))),
            "page {p} content after the pattern break"
        );
    }
    assert_healthy(&ssi);
    cluster::check_asvm_invariants(&ssi);
}

/// The hint tier rides on frames already flowing: a serving node that
/// recognises a requester's stream attaches predicted-window owner hints
/// to its coalesced replies, and the requester applies them to its
/// dynamic owner-hint cache before faulting on those pages.
#[test]
fn serving_node_piggybacks_predicted_owner_hints() {
    let mut cfg = asvm::AsvmConfig::default().coalesced();
    cfg.prefetch = asvm::PrefetchCfg::hints_only(8);
    let mut ssi = Ssi::new(2, ManagerKind::Asvm(cfg), 5);
    let pages = 32u32;
    let mobj = ssi.create_object(NodeId(0), pages, false);
    let tasks: Vec<_> = (0..2u16)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                NodeId(0),
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(2);
    // Node 0 writes (and thus owns) the whole region, then node 1
    // streams it back: node 0's per-peer detector locks onto the stride
    // and piggybacks owner hints for the window ahead of node 1's reads.
    let writer: Vec<Step> = (0..pages as u64)
        .map(|p| Step::Write {
            va_page: p,
            value: 7_000 + p,
        })
        .chain([Step::Barrier(0), Step::Done])
        .collect();
    let reader: Vec<Step> = std::iter::once(Step::Barrier(0))
        .chain((0..pages as u64).map(|p| Step::Read { va_page: p }))
        .chain([Step::Done])
        .collect();
    ssi.spawn(NodeId(0), tasks[0], Box::new(ScriptProgram::new(writer)));
    ssi.spawn(NodeId(1), tasks[1], Box::new(ScriptProgram::new(reader)));
    ssi.run(u64::MAX / 2).expect("quiesces");
    assert!(ssi.all_done());
    assert!(
        ssi.stats().counter("asvm.prefetch.hint") > 0,
        "the serving node must attach predicted-window hints"
    );
    assert!(
        ssi.stats().counter("asvm.prefetch.issued") == 0,
        "hints_only must not pull data speculatively"
    );
    assert_eq!(
        ssi.node(NodeId(1)).vm.peek_task_page(tasks[1], 20),
        Some(7_020),
        "streamed contents survive the hint tier"
    );
    assert_healthy(&ssi);
    cluster::check_asvm_invariants(&ssi);
}
