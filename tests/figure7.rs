//! The eight state transitions of FIGURE 7, exercised by number.
//!
//! The paper's sharing state machine: a page's state on a node is its
//! access level plus an owner flag; the listed transitions keep it
//! coherent under the single-writer-or-multiple-readers invariant.

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit, PageIdx, TaskId};
use svmsim::NodeId;

struct Rig {
    ssi: Ssi,
    tasks: Vec<TaskId>,
    mobj: machvm::MemObjId,
}

fn rig(nodes: u16) -> Rig {
    let mut ssi = Ssi::new(nodes, ManagerKind::asvm(), 3);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 4, false);
    let tasks = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                4,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    Rig { ssi, tasks, mobj }
}

impl Rig {
    fn run_on(&mut self, node: u16, steps: Vec<Step>) {
        let now = self.ssi.world.now();
        self.ssi.world.node_mut(NodeId(node)).install_task(
            self.tasks[node as usize],
            Box::new(ScriptProgram::new(steps)),
            now,
        );
        self.ssi.world.post(
            now,
            NodeId(node),
            cluster::Msg::Resume(self.tasks[node as usize]),
        );
        self.ssi.run(10_000_000).expect("quiesces");
    }

    fn state(&self, node: u16) -> Option<(Access, bool, usize)> {
        let n = self.ssi.node(NodeId(node));
        let a = n.asvm().expect("figure 7 rig runs ASVM");
        a.page_info(self.mobj, PageIdx(0))
            .map(|pi| (pi.access, pi.owner, pi.readers.len()))
    }
}

#[test]
fn transitions_1_and_5_read_grant_and_reader_list() {
    // T1 (requester): the node is granted read access to the page.
    // T5 (owner): the owner grants read access and records the reader.
    let mut r = rig(2);
    r.run_on(
        0,
        vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ],
    );
    r.run_on(1, vec![Step::Read { va_page: 0 }, Step::Done]);
    assert_eq!(
        r.state(1),
        Some((Access::Read, false, 0)),
        "T1 at requester"
    );
    assert_eq!(r.state(0), Some((Access::Read, true, 1)), "T5 at owner");
}

#[test]
fn transitions_2_and_4_write_grant_moves_ownership() {
    // T2 (requester): the node is granted write access.
    // T4 (old owner): grants write access to another node (and, in ASVM,
    // ownership moves with it — "a page is always owned by the node that
    // most recently had write access").
    let mut r = rig(2);
    r.run_on(
        0,
        vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ],
    );
    r.run_on(
        1,
        vec![
            Step::Write {
                va_page: 0,
                value: 2,
            },
            Step::Done,
        ],
    );
    assert_eq!(r.state(1), Some((Access::Write, true, 0)), "T2+ownership");
    assert_eq!(r.state(0), None, "T4: old owner's copy flushed");
}

#[test]
fn transitions_3_and_6_upgrade_with_invalidations() {
    // T3 (requester): upgrade from read to write access.
    // T6 (owner): grants write to another node, invalidating the reader
    // list first.
    let mut r = rig(3);
    r.run_on(
        0,
        vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ],
    );
    r.run_on(1, vec![Step::Read { va_page: 0 }, Step::Done]);
    r.run_on(2, vec![Step::Read { va_page: 0 }, Step::Done]);
    assert_eq!(r.state(0), Some((Access::Read, true, 2)));
    // Node 1 upgrades: owner (node 0) must invalidate node 2 and itself.
    r.run_on(
        1,
        vec![
            Step::Write {
                va_page: 0,
                value: 2,
            },
            Step::Done,
        ],
    );
    assert_eq!(
        r.state(1),
        Some((Access::Write, true, 0)),
        "T3 at requester"
    );
    assert_eq!(r.state(0), None, "T6: granting owner flushed");
    assert_eq!(r.state(2), None, "T6: reader invalidated");
}

#[test]
fn transition_7_owner_upgrades_itself() {
    // T7: the owner upgrades its own access from read to write, sending
    // invalidations to its reader list.
    let mut r = rig(2);
    r.run_on(
        0,
        vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ],
    );
    r.run_on(1, vec![Step::Read { va_page: 0 }, Step::Done]);
    assert_eq!(r.state(0), Some((Access::Read, true, 1)));
    r.run_on(
        0,
        vec![
            Step::Write {
                va_page: 0,
                value: 2,
            },
            Step::Done,
        ],
    );
    assert_eq!(r.state(0), Some((Access::Write, true, 0)), "T7 at owner");
    assert_eq!(r.state(1), None, "T7/T8: reader invalidated");
}

#[test]
fn transition_8_reader_receives_invalidation() {
    // T8: a reader receives an invalidation message from the owner; its
    // copy (and state) disappear while the owner proceeds.
    let mut r = rig(4);
    r.run_on(
        0,
        vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ],
    );
    for n in 1..4 {
        r.run_on(n, vec![Step::Read { va_page: 0 }, Step::Done]);
    }
    assert_eq!(r.state(0), Some((Access::Read, true, 3)));
    r.run_on(
        3,
        vec![
            Step::Write {
                va_page: 0,
                value: 2,
            },
            Step::Done,
        ],
    );
    for n in 0..3 {
        assert_eq!(r.state(n), None, "T8: node {n} invalidated");
    }
    assert_eq!(r.state(3), Some((Access::Write, true, 0)));
    cluster::check_asvm_invariants(&r.ssi);
}
