//! Reproduces the copy-pager deadlock the paper cites as a motivation for
//! ASVM's asynchronous state transitions (§3.1):
//!
//! *"One problem of the mechanism XMM uses for implementing its delayed
//! copy support is that the copy pager thread which generates a page-fault
//! is blocked until the page-fault completes. As an internode copy chain
//! might cross the same node multiple times, this leads to a deadlock if
//! the available number of threads is exhausted."*
//!
//! We build a fork chain that revisits nodes and give XMM a single copy
//! pager thread per node: concurrent faults through the chain exhaust the
//! pool and the simulation quiesces with work permanently stuck. ASVM on
//! the same workload completes — nothing in it ever blocks a thread.

mod common;

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use common::with_trace_dump;
use machvm::{Access, Inherit, TaskId};
use svmsim::NodeId;

const REGION: u32 = 8;

/// Chain link bouncing between two nodes; the last two links fault all
/// pages *concurrently*, driving multiple faults through node 0's single
/// internal-pager thread at once.
struct Bounce {
    depth: u16,
    max_depth: u16,
    page: u32,
    forked: bool,
}

impl Program for Bounce {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        if self.depth < self.max_depth && !self.forked {
            self.forked = true;
            // Bounce between node 0 and node 1 so the chain crosses the
            // same node repeatedly.
            let next = NodeId(if env.node.0 == 0 { 1 } else { 0 });
            return Step::Fork {
                child: TaskId(900 + self.depth as u32 + 1),
                node: next,
                program: Box::new(Bounce {
                    depth: self.depth + 1,
                    max_depth: self.max_depth,
                    page: 0,
                    forked: false,
                }),
            };
        }
        // Deep links fault the inherited region (the last link, plus its
        // parent after the fork returns, giving concurrent chain faults).
        if self.depth + 1 >= self.max_depth && self.page < REGION {
            let p = self.page;
            self.page += 1;
            return Step::Read { va_page: p as u64 };
        }
        Step::Done
    }
}

fn build(kind: ManagerKind) -> (Ssi, TaskId) {
    let mut ssi = Ssi::new(2, kind, 13);
    let root = ssi.alloc_task();
    {
        let n = ssi.world.node_mut(NodeId(0));
        n.vm.create_task(root);
        let obj = n.vm.create_object(REGION, machvm::Backing::Anonymous);
        n.vm.map_object(root, 0, REGION, obj, 0, Access::Write, Inherit::Copy);
    }
    ssi.finalize();
    ssi.enable_trace(96);
    (ssi, root)
}

fn spawn_root(ssi: &mut Ssi, root: TaskId, max_depth: u16) {
    let now = ssi.world.now();
    // Root initializes the region, then starts the bouncing chain.
    struct Root {
        page: u32,
        forked: bool,
        max_depth: u16,
    }
    impl Program for Root {
        fn step(&mut self, _env: &mut TaskEnv) -> Step {
            if self.page < REGION {
                let p = self.page;
                self.page += 1;
                return Step::Write {
                    va_page: p as u64,
                    value: 0xD00D + p as u64,
                };
            }
            if !self.forked {
                self.forked = true;
                return Step::Fork {
                    child: TaskId(901),
                    node: NodeId(1),
                    program: Box::new(Bounce {
                        depth: 1,
                        max_depth: self.max_depth,
                        page: 0,
                        forked: false,
                    }),
                };
            }
            Step::Done
        }
    }
    ssi.world.node_mut(NodeId(0)).install_task(
        root,
        Box::new(Root {
            page: 0,
            forked: false,
            max_depth,
        }),
        now,
    );
    ssi.world.post(now, NodeId(0), cluster::Msg::Resume(root));
}

#[test]
fn xmm_single_thread_pool_deadlocks_on_chains() {
    let (mut ssi, root) = build(ManagerKind::Xmm { copy_threads: 1 });
    spawn_root(&mut ssi, root, 6);
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(u64::MAX / 2)
            .expect("the simulation itself quiesces");
        // The cluster went quiet with tasks still waiting: the classic
        // blocked-thread deadlock.
        let stuck: usize = (0..2u16)
            .map(|n| ssi.node(NodeId(n)).vm.pending_faults())
            .sum();
        let queued: usize = (0..2u16)
            .map(|n| {
                ssi.node(NodeId(n))
                    .xmm()
                    .map_or(0, |x| x.thread_queue_len())
            })
            .sum();
        assert!(
            stuck > 0 && queued > 0,
            "expected a thread-exhaustion deadlock (stuck={stuck}, queued={queued})"
        );
        assert!(!ssi.all_done(), "the chain must NOT have completed");
    });
}

#[test]
fn xmm_with_enough_threads_completes() {
    let (mut ssi, root) = build(ManagerKind::Xmm { copy_threads: 16 });
    spawn_root(&mut ssi, root, 6);
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(u64::MAX / 2).expect("quiesces");
        assert!(ssi.all_done(), "with a big pool the chain completes");
    });
}

#[test]
fn asvm_never_deadlocks_on_chains() {
    // ASVM has no thread pool at all: the same bouncing chain completes.
    let (mut ssi, root) = build(ManagerKind::asvm());
    spawn_root(&mut ssi, root, 6);
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(u64::MAX / 2).expect("quiesces");
        assert!(
            ssi.all_done(),
            "asynchronous state transitions cannot deadlock"
        );
    });
}
