//! Calibration guard: the microbenchmarks that anchor the reproduction
//! must stay near the paper's numbers. Tolerances are deliberately loose
//! (the goal is catching accidental cost-model or protocol drift, not
//! enforcing exact agreement — see `EXPERIMENTS.md` for the real record).

use cluster::ManagerKind;
use workloads::{copy_chain_probe, fault_probe, CopyChainSpec, FaultProbeSpec, ProbeAccess};

fn assert_near(label: &str, paper_ms: f64, measured_ms: f64, tolerance: f64) {
    let ratio = measured_ms / paper_ms;
    assert!(
        (1.0 - tolerance..=1.0 + tolerance).contains(&ratio),
        "{label}: measured {measured_ms:.2} ms vs paper {paper_ms:.2} ms \
         (ratio {ratio:.2}, tolerance ±{tolerance})"
    );
}

struct Anchor {
    label: &'static str,
    kind: ManagerKind,
    read_copies: u16,
    faulter_has_copy: bool,
    access: ProbeAccess,
    paper_ms: f64,
    tolerance: f64,
}

#[test]
fn table1_anchors_hold() {
    let anchors = [
        Anchor {
            label: "ASVM write fault, 1 copy",
            kind: ManagerKind::asvm(),
            read_copies: 1,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
            paper_ms: 2.24,
            tolerance: 0.35,
        },
        Anchor {
            label: "ASVM write fault, 64 copies",
            kind: ManagerKind::asvm(),
            read_copies: 64,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
            paper_ms: 8.96,
            tolerance: 0.35,
        },
        Anchor {
            label: "ASVM read fault, first reader",
            kind: ManagerKind::asvm(),
            read_copies: 0,
            faulter_has_copy: false,
            access: ProbeAccess::Read,
            paper_ms: 2.35,
            tolerance: 0.35,
        },
        Anchor {
            label: "XMM write fault, 1 copy (disk)",
            kind: ManagerKind::xmm(),
            read_copies: 1,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
            paper_ms: 38.42,
            tolerance: 0.25,
        },
        Anchor {
            label: "XMM write fault, 64 copies",
            kind: ManagerKind::xmm(),
            read_copies: 64,
            faulter_has_copy: false,
            access: ProbeAccess::Write,
            paper_ms: 72.18,
            tolerance: 0.30,
        },
        Anchor {
            label: "XMM read fault, second reader",
            kind: ManagerKind::xmm(),
            read_copies: 2,
            faulter_has_copy: false,
            access: ProbeAccess::Read,
            paper_ms: 10.06,
            tolerance: 0.40,
        },
    ];
    for a in anchors {
        let r = fault_probe(FaultProbeSpec {
            kind: a.kind,
            read_copies: a.read_copies,
            faulter_has_copy: a.faulter_has_copy,
            access: a.access,
        });
        assert_near(a.label, a.paper_ms, r.latency.as_millis_f64(), a.tolerance);
    }
}

#[test]
fn figure11_slopes_hold() {
    let probe = |kind, len| {
        copy_chain_probe(CopyChainSpec {
            kind,
            chain_len: len,
            region_pages: 16,
        })
        .mean_fault
        .as_millis_f64()
    };
    // Per-hop costs (paper: ASVM 0.48 ms, XMM 4.3 ms).
    let asvm_hop = (probe(ManagerKind::asvm(), 8) - probe(ManagerKind::asvm(), 2)) / 6.0;
    let xmm_hop = (probe(ManagerKind::xmm(), 8) - probe(ManagerKind::xmm(), 2)) / 6.0;
    assert!(
        (0.2..=1.0).contains(&asvm_hop),
        "ASVM per-hop cost drifted: {asvm_hop:.2} ms (paper 0.48)"
    );
    assert!(
        (2.0..=6.0).contains(&xmm_hop),
        "XMM per-hop cost drifted: {xmm_hop:.2} ms (paper 4.3)"
    );
    assert!(
        xmm_hop / asvm_hop > 3.0,
        "the ASVM:XMM hop-cost gap collapsed ({asvm_hop:.2} vs {xmm_hop:.2})"
    );
}

#[test]
fn asvm_beats_xmm_on_every_table1_row() {
    for (copies, has_copy, access) in [
        (1, false, ProbeAccess::Write),
        (2, false, ProbeAccess::Write),
        (16, false, ProbeAccess::Write),
        (2, true, ProbeAccess::Write),
        (0, false, ProbeAccess::Read),
        (2, false, ProbeAccess::Read),
    ] {
        let a = fault_probe(FaultProbeSpec {
            kind: ManagerKind::asvm(),
            read_copies: copies,
            faulter_has_copy: has_copy,
            access,
        });
        let x = fault_probe(FaultProbeSpec {
            kind: ManagerKind::xmm(),
            read_copies: copies,
            faulter_has_copy: has_copy,
            access,
        });
        assert!(
            a.latency < x.latency,
            "ASVM must win: copies={copies} has_copy={has_copy} {access:?} \
             ({} vs {})",
            a.latency,
            x.latency
        );
    }
}
