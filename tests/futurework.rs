//! Integration tests for the paper's §6 future-work features implemented
//! as extensions: range locks, striped multi-pager files, and read
//! clustering.

use cluster::{ManagerKind, Program, ScriptProgram, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit};
use svmsim::{MachineConfig, NodeId};

/// Writers bracket multi-page updates with range locks; a checker reads
/// the range under the same lock and must never observe a torn update
/// (pages from two different rounds).
struct LockedWriter {
    me: u64,
    rounds: u32,
    pages: u32,
    round: u32,
    idx: u32,
    stage: u8,
}

impl Program for LockedWriter {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        loop {
            if self.round >= self.rounds {
                return Step::Done;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Step::LockRange {
                        va_page: 0,
                        pages: self.pages,
                    };
                }
                1 => {
                    if self.idx < self.pages {
                        let p = self.idx;
                        self.idx += 1;
                        return Step::Write {
                            va_page: p as u64,
                            value: self.me * 1_000_000 + self.round as u64,
                        };
                    }
                    self.stage = 2;
                    self.idx = 0;
                }
                2 => {
                    self.stage = 0;
                    self.round += 1;
                    return Step::UnlockRange {
                        va_page: 0,
                        pages: self.pages,
                    };
                }
                _ => unreachable!(),
            }
        }
    }
}

struct LockedChecker {
    rounds: u32,
    pages: u32,
    round: u32,
    idx: u32,
    stage: u8,
    first_seen: u64,
}

impl Program for LockedChecker {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        loop {
            if self.round >= self.rounds {
                return Step::Done;
            }
            match self.stage {
                0 => {
                    self.stage = 1;
                    return Step::LockRange {
                        va_page: 0,
                        pages: self.pages,
                    };
                }
                1 => {
                    if self.idx < self.pages {
                        let p = self.idx;
                        self.idx += 1;
                        self.stage = 2;
                        return Step::Read { va_page: p as u64 };
                    }
                    self.stage = 3;
                    self.idx = 0;
                }
                2 => {
                    let v = env.last_read.expect("read done");
                    if self.idx == 1 {
                        self.first_seen = v;
                    } else {
                        assert_eq!(
                            v,
                            self.first_seen,
                            "torn update observed under a range lock (page {})",
                            self.idx - 1
                        );
                    }
                    self.stage = 1;
                }
                3 => {
                    self.stage = 0;
                    self.round += 1;
                    self.first_seen = 0;
                    return Step::UnlockRange {
                        va_page: 0,
                        pages: self.pages,
                    };
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn range_locks_make_multi_page_updates_atomic() {
    let nodes = 4u16;
    let pages = 6u32;
    let mut ssi = Ssi::new(nodes, ManagerKind::asvm(), 55);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<_> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    // Two writers and two checkers, all hammering the same range.
    for n in 0..2u16 {
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(LockedWriter {
                me: n as u64 + 1,
                rounds: 5,
                pages,
                round: 0,
                idx: 0,
                stage: 0,
            }),
        );
    }
    for n in 2..4u16 {
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(LockedChecker {
                rounds: 5,
                pages,
                round: 0,
                idx: 0,
                stage: 0,
                first_seen: 0,
            }),
        );
    }
    ssi.run(u64::MAX / 2).expect("quiesces");
    assert!(ssi.all_done(), "no lock waiter may be stranded");
    cluster::check_asvm_invariants(&ssi);
}

#[test]
fn striped_file_reads_use_all_io_nodes() {
    // A machine with 4 I/O nodes; a file striped over all of them.
    let mut cfg = MachineConfig::paragon(4);
    cfg.io_nodes = 4;
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::asvm(), 8);
    let pages = 64u32;
    let mobj = ssi.create_striped_object(pages, true, 4);
    let t = ssi.alloc_task();
    ssi.map_shared(
        t,
        NodeId(0),
        0,
        mobj,
        NodeId(0),
        pages,
        Access::Write,
        Inherit::Share,
    );
    ssi.finalize();
    let steps: Vec<Step> = (0..pages)
        .map(|p| Step::Read { va_page: p as u64 })
        .chain([Step::Done])
        .collect();
    ssi.spawn(NodeId(0), t, Box::new(ScriptProgram::new(steps)));
    ssi.run(u64::MAX / 2).expect("quiesces");
    assert!(ssi.all_done());
    // Every stripe disk served a quarter of the pages.
    for io in ssi.world.machine().io_nodes().collect::<Vec<_>>() {
        assert_eq!(
            ssi.world.disk(io).reads,
            (pages / 4) as u64,
            "stripe on {io} must serve its share"
        );
    }
    // And the contents are the file's.
    assert_eq!(
        ssi.node(NodeId(0)).vm.peek_task_page(t, 13),
        Some(pager::file_stamp(mobj, machvm::PageIdx(13)))
    );
}

#[test]
fn readahead_cuts_sequential_scan_time() {
    let run = |readahead: u32| {
        let kind = ManagerKind::Asvm(asvm::AsvmConfig::with_readahead(readahead));
        let mut ssi = Ssi::new(2, kind, 5);
        let pages = 128u32;
        let mobj = ssi.create_object(NodeId(0), pages, true);
        let t = ssi.alloc_task();
        ssi.map_shared(
            t,
            NodeId(0),
            0,
            mobj,
            NodeId(0),
            pages,
            Access::Write,
            Inherit::Share,
        );
        ssi.finalize();
        let steps: Vec<Step> = (0..pages)
            .map(|p| Step::Read { va_page: p as u64 })
            .chain([Step::Done])
            .collect();
        ssi.spawn(NodeId(0), t, Box::new(ScriptProgram::new(steps)));
        ssi.run(u64::MAX / 2).expect("quiesces");
        assert!(ssi.all_done());
        // Verify contents regardless of prefetch path.
        assert_eq!(
            ssi.node(NodeId(0)).vm.peek_task_page(t, 100),
            Some(pager::file_stamp(mobj, machvm::PageIdx(100)))
        );
        ssi.world.now().as_secs_f64()
    };
    let plain = run(0);
    let clustered = run(8);
    assert!(
        clustered < plain * 0.7,
        "readahead must overlap disk and protocol latency: {clustered} vs {plain}"
    );
}
