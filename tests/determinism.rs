//! Reproducibility: the whole stack is a deterministic discrete-event
//! simulation — identical inputs give bit-identical outcomes, which every
//! experiment in `EXPERIMENTS.md` relies on.

use cluster::ManagerKind;
use workloads::{
    copy_chain_probe, em3d_run, fault_probe, file_scan, run_tenants, CopyChainSpec, Em3dSpec,
    FaultProbeSpec, FileScanSpec, ProbeAccess, ScanDir, TenantsSpec,
};

#[test]
fn fault_probe_is_deterministic() {
    let spec = FaultProbeSpec {
        kind: ManagerKind::asvm(),
        read_copies: 8,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
    };
    let a = fault_probe(spec);
    let b = fault_probe(spec);
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.protocol_messages, b.protocol_messages);
}

#[test]
fn copy_chain_is_deterministic() {
    let spec = CopyChainSpec {
        kind: ManagerKind::xmm(),
        chain_len: 4,
        region_pages: 16,
    };
    assert_eq!(
        copy_chain_probe(spec).mean_fault,
        copy_chain_probe(spec).mean_fault
    );
}

#[test]
fn file_scan_is_deterministic() {
    let spec = FileScanSpec {
        kind: ManagerKind::asvm(),
        nodes: 4,
        file_pages: 64,
        dir: ScanDir::Read,
    };
    let a = file_scan(spec);
    let b = file_scan(spec);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.rate_mb_s, b.rate_mb_s);
}

#[test]
fn em3d_is_deterministic() {
    let mut spec = Em3dSpec::paper(ManagerKind::asvm(), 4, 16_000);
    spec.iterations = 3;
    let a = em3d_run(spec);
    let b = em3d_run(spec);
    assert_eq!(a.elapsed_secs, b.elapsed_secs);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn tenants_is_deterministic() {
    let spec = TenantsSpec {
        objects: 24,
        tasks: 8,
        ops_per_task: 120,
        ..TenantsSpec::default()
    };
    let cfg = asvm::AsvmConfig::fixed_distributed().coalesced().adaptive();
    let a = run_tenants(cfg, transport::Transport::STS, &spec, false);
    let b = run_tenants(cfg, transport::Transport::STS, &spec, false);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.stall_ms, b.stall_ms);
    assert_eq!(a.asvm_msgs, b.asvm_msgs);
    assert_eq!(a.policy_switch, b.policy_switch);
    assert_eq!(a.modes, b.modes);
}

#[test]
fn tenants_seed_changes_the_schedule_not_the_regime() {
    let spec = TenantsSpec {
        objects: 24,
        tasks: 8,
        ops_per_task: 120,
        ..TenantsSpec::default()
    };
    let mut other = spec.clone();
    other.seed = 4242;
    let a = run_tenants(
        asvm::AsvmConfig::default(),
        transport::Transport::STS,
        &spec,
        false,
    );
    let b = run_tenants(
        asvm::AsvmConfig::default(),
        transport::Transport::STS,
        &other,
        false,
    );
    assert_ne!(
        (a.faults, a.asvm_msgs),
        (b.faults, b.asvm_msgs),
        "different seeds must draw different Zipf schedules"
    );
    let ratio = a.stall_ms / b.stall_ms;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seed changed the regime: {ratio}"
    );
}

#[test]
fn different_seeds_change_only_workload_randomness() {
    // The fault probe has no randomness at all, so even different seeds in
    // the EM3D generator must not leak into it. EM3D with different seeds
    // differs (the graph differs), but stays in the same regime.
    let mut s1 = Em3dSpec::paper(ManagerKind::asvm(), 4, 16_000);
    s1.iterations = 3;
    let mut s2 = s1;
    s2.seed = 4242;
    let a = em3d_run(s1);
    let b = em3d_run(s2);
    let ratio = a.elapsed_secs / b.elapsed_secs;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seed changed the regime: {ratio}"
    );
}
