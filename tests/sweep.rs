//! Serial-vs-parallel determinism of the benchmark sweep harness.
//!
//! The bench binaries run their cells through `bench::sweep` on as many
//! threads as the machine offers. Every cell is a self-contained
//! deterministic simulation, so the *results* must not depend on the
//! thread count — this is the regression test behind the harness's
//! "byte-identical tables" guarantee. It runs a small slice of Table 3
//! (EM3D) and of Table 1 (fault probes) both ways and requires identical
//! result structs, plus identical rendered JSON modulo timing fields.

use bench::sweep::{Sweep, SweepConfig};
use cluster::ManagerKind;
use workloads::{em3d_run, fault_probe, Em3dSpec, FaultProbeSpec, ProbeAccess};

/// A table3-slice sweep: EM3D at a few small configurations.
fn em3d_slice(threads: usize) -> Vec<(u64, u64, u64, u64)> {
    let mut sweep = Sweep::with_config("em3d_slice", SweepConfig::with_threads(threads));
    for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
        for nodes in [1u16, 2, 4] {
            sweep.cell(format!("{} {}n", kind.label(), nodes), move || {
                let mut spec = Em3dSpec::paper(kind, nodes, 16_000);
                spec.iterations = 2;
                let out = em3d_run(spec);
                // Compare exact integer observables (elapsed_secs derives
                // from them deterministically but is floating point).
                let value = (
                    (out.elapsed_secs * 1e9) as u64,
                    out.faults,
                    out.pageouts,
                    out.events,
                );
                (value, out.events)
            });
        }
    }
    let report = sweep.run();
    assert_eq!(report.cells.len(), 6);
    report.values().copied().collect()
}

#[test]
fn em3d_slice_is_thread_count_invariant() {
    let serial = em3d_slice(1);
    let parallel = em3d_slice(4);
    assert_eq!(serial, parallel);
    // And the simulations actually did work.
    assert!(serial
        .iter()
        .all(|(elapsed, _, _, events)| *elapsed > 0 && *events > 0));
}

#[test]
fn fault_probe_slice_is_thread_count_invariant() {
    let run = |threads: usize| -> Vec<(u64, u64, u64, u64)> {
        let mut sweep = Sweep::with_config("probe_slice", SweepConfig::with_threads(threads));
        for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
            for read_copies in [1u16, 2, 8] {
                sweep.cell(format!("{} {}r", kind.label(), read_copies), move || {
                    let out = fault_probe(FaultProbeSpec {
                        kind,
                        read_copies,
                        faulter_has_copy: false,
                        access: ProbeAccess::Write,
                    });
                    let value = (
                        out.latency.as_nanos(),
                        out.protocol_messages,
                        out.page_messages,
                        out.events,
                    );
                    (value, out.events)
                });
            }
        }
        sweep.run().values().copied().collect()
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn report_order_and_json_shape_are_thread_count_invariant() {
    // Wall-clock fields legitimately vary between runs; labels, cell
    // order and event counts must not, whatever the thread count.
    let run = |threads: usize| {
        let mut sweep = Sweep::with_config("json_stability", SweepConfig::with_threads(threads));
        for i in 0..5u64 {
            sweep.cell(format!("cell{i}"), move || (i, i * 100));
        }
        sweep.run()
    };
    let (a, b) = (run(1), run(3));
    let key = |r: &bench::sweep::SweepReport<u64>| -> Vec<(String, u64, u64)> {
        r.cells
            .iter()
            .map(|c| (c.label.clone(), c.value, c.events))
            .collect()
    };
    assert_eq!(key(&a), key(&b));
    assert_eq!(a.total_events(), b.total_events());
    // The JSON document carries every label in order.
    let json = a.to_json();
    for i in 0..5 {
        assert!(json.contains(&format!("\"cell{i}\"")), "{json}");
    }
}
