//! Property tests for the substrate data structures, checked against
//! straightforward reference models.

use machvm::{Access, AddressMap, Inherit, MapEntry, PageData, VmObjId};
use proptest::prelude::*;
use svmsim::{EventQueue, Time};

// --- Event queue ------------------------------------------------------------

proptest! {
    /// Events always pop in time order, with insertion order breaking ties.
    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Time::from_nanos(*t), i);
        }
        let mut last: Option<(u64, usize)> = None;
        let mut popped = 0;
        while let Some((t, idx)) = q.pop() {
            popped += 1;
            if let Some((lt, lidx)) = last {
                prop_assert!(t.as_nanos() > lt || (t.as_nanos() == lt && idx > lidx),
                    "order violated: ({lt},{lidx}) then ({},{idx})", t.as_nanos());
            }
            last = Some((t.as_nanos(), idx));
        }
        prop_assert_eq!(popped, times.len());
    }
}

// --- LRU cache ----------------------------------------------------------------

proptest! {
    /// The LRU cache never exceeds capacity and agrees with a reference
    /// model on membership after arbitrary operation sequences.
    #[test]
    fn lru_matches_reference(
        cap in 1usize..8,
        ops in prop::collection::vec((0u32..16, any::<bool>()), 1..100),
    ) {
        let mut lru = asvm::Lru::new(cap);
        // Reference: vector ordered most-recent-first.
        let mut model: Vec<(u32, u32)> = Vec::new();
        for (key, is_insert) in ops {
            if is_insert {
                lru.insert(key, key * 10);
                model.retain(|(k, _)| *k != key);
                model.insert(0, (key, key * 10));
                model.truncate(cap);
            } else {
                let got = lru.get(&key).copied();
                let want = model.iter().find(|(k, _)| *k == key).map(|(_, v)| *v);
                prop_assert_eq!(got, want);
                if want.is_some() {
                    model.retain(|(k, _)| *k != key);
                    model.insert(0, (key, key * 10));
                }
            }
            prop_assert!(lru.len() <= cap);
            prop_assert_eq!(lru.len(), model.len());
        }
    }
}

// --- Address map -----------------------------------------------------------------

fn arb_entries() -> impl Strategy<Value = Vec<(u64, u32)>> {
    // Disjoint ranges by construction: gaps then lengths.
    prop::collection::vec((1u64..20, 1u32..10), 1..10).prop_map(|pairs| {
        let mut out = Vec::new();
        let mut base = 0u64;
        for (gap, len) in pairs {
            base += gap;
            out.push((base, len));
            base += len as u64;
        }
        out
    })
}

proptest! {
    /// `AddressMap::lookup` agrees with a linear scan over the entries.
    #[test]
    fn address_map_lookup_matches_scan(entries in arb_entries(), probe in 0u64..300) {
        let mut m = AddressMap::new();
        for (i, (va, len)) in entries.iter().enumerate() {
            m.insert(MapEntry {
                va_page: *va,
                pages: *len,
                object: VmObjId(i as u32 + 1),
                offset: 0,
                prot: Access::Write,
                inherit: Inherit::Copy,
                needs_copy: false,
            });
        }
        let expect = entries
            .iter()
            .enumerate()
            .find(|(_, (va, len))| probe >= *va && probe < *va + *len as u64)
            .map(|(i, _)| VmObjId(i as u32 + 1));
        prop_assert_eq!(m.lookup(probe).map(|e| e.object), expect);
    }
}

// --- Page data --------------------------------------------------------------------

proptest! {
    /// Byte-level writes against a plain `Vec<u8>` reference model.
    #[test]
    fn pagedata_matches_byte_model(
        writes in prop::collection::vec((0usize..256, prop::collection::vec(any::<u8>(), 1..16)), 0..20),
        stamp in any::<u64>(),
    ) {
        const PS: usize = 256;
        let mut page = PageData::Word(stamp);
        let mut model = vec![0u8; PS];
        model[..8].copy_from_slice(&stamp.to_le_bytes());
        for (off, bytes) in writes {
            let off = off.min(PS - bytes.len());
            page.write_bytes(off, &bytes, PS);
            model[off..off + bytes.len()].copy_from_slice(&bytes);
        }
        prop_assert_eq!(page.read_bytes(0, PS, PS), model);
    }
}

// --- Range locks -------------------------------------------------------------------

proptest! {
    /// No two held locks ever overlap, and every queued request is
    /// eventually granted when everything is released in FIFO order.
    #[test]
    fn range_locks_exclusive_and_live(
        reqs in prop::collection::vec((0u32..16, 1u32..6, 0u16..4), 1..24),
    ) {
        use asvm::{PageRange, RangeLockMgr};
        use machvm::PageIdx;
        use svmsim::NodeId;

        let mut mgr = RangeLockMgr::default();
        let mut held: Vec<(PageRange, NodeId)> = Vec::new();
        let mut granted_total = 0usize;
        for (first, count, node) in &reqs {
            let range = PageRange { first: PageIdx(*first), count: *count };
            if mgr.acquire(range, NodeId(*node)) {
                // Invariant: no overlap with anything already held.
                for (h, _) in &held {
                    prop_assert!(!h.overlaps(&range));
                }
                held.push((range, NodeId(*node)));
                granted_total += 1;
            }
        }
        // Release everything ever held; each release may grant more.
        while let Some((range, node)) = held.pop() {
            for g in mgr.release(range, node) {
                for (h, _) in &held {
                    prop_assert!(!h.overlaps(&g.range));
                }
                held.push((g.range, g.holder));
                granted_total += 1;
            }
        }
        prop_assert_eq!(granted_total, reqs.len(), "every request granted eventually");
        prop_assert_eq!(mgr.held_count(), 0);
        prop_assert_eq!(mgr.queued_count(), 0);
    }
}
