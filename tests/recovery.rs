//! End-to-end recovery-layer coverage: failure detector, request
//! watchdog and ownership reconstruction (`docs/RELIABILITY.md`).
//!
//! Every test here arms a fault plan with a scripted blackout — the
//! recovery machinery is deliberately inert on healthy runs (the
//! byte-identity CI checks depend on that), so these scenarios are the
//! only way to reach it. The CI chaos-matrix job runs this file under two
//! fixed seeds via `ASVM_FAULTS_SEED` (default 1996).

mod common;

use cluster::{check_asvm_invariants_except, ManagerKind, ScriptProgram, Ssi, Step};
use common::with_trace_dump;
use machvm::{Access, Inherit, TaskId};
use svmsim::{Dur, FaultPlan, MachineConfig, NodeId, Time};

/// Base seed for every fault plan in this file (CI matrix: 1996, 777).
fn fault_seed() -> u64 {
    std::env::var("ASVM_FAULTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1996)
}

/// Builds an `nodes`-node ASVM cluster with one `pages`-page object mapped
/// writable everywhere, fully finalized, one task per node.
fn build(nodes: u16, pages: u32, kind: ManagerKind, plan: FaultPlan) -> (Ssi, Vec<TaskId>) {
    let mut cfg = MachineConfig::paragon(nodes);
    cfg.faults = plan;
    let mut ssi = Ssi::with_machine(cfg, kind, 7);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<TaskId> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);
    ssi.enable_trace(128);
    (ssi, tasks)
}

/// The owner of a page dies while another node still holds a read copy:
/// ownership reconstruction must elect the surviving copy holder as the
/// new owner, and a post-mortem write through it must succeed with the
/// written value visible — no pager fallback, no stale data.
#[test]
fn dead_owner_with_surviving_copy_elects_new_owner() {
    let victim = NodeId(1);
    let plan = FaultPlan::seeded(fault_seed() ^ 0xE1EC).with_blackout(
        victim,
        Time::from_nanos(20_000_000),
        Time::MAX,
    );
    let (mut ssi, tasks) = build(4, 2, ManagerKind::asvm(), plan);
    // Node 1 (the victim) writes page 0 and becomes its owner; node 2
    // reads a copy. Both happen well before the 20 ms blackout. Node 3
    // then writes after the lights go out: its request has to be carried
    // by suspicion + watchdog + reconstruction to node 2's copy.
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 7,
            },
            Step::Barrier(0),
            Step::Barrier(1),
            // Stay busy past the blackout so the victim never farewells
            // its peers — it must look *dead*, not *done*.
            Step::Compute(Dur::from_millis(100)),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(2),
        tasks[2],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(0),
            Step::Read { va_page: 0 },
            Step::Barrier(1),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(3),
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(0),
            Step::Barrier(1),
            Step::Compute(Dur::from_millis(40)),
            Step::Write {
                va_page: 0,
                value: 9,
            },
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(0),
            Step::Barrier(1),
            Step::Done,
        ])),
    );
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(100_000_000).expect("recovery quiesces");
        assert!(ssi.all_done(), "all tasks finish despite the dead owner");
        assert!(
            ssi.stats().counter("cluster.suspect.count") >= 1,
            "the silent victim must be suspected"
        );
        assert!(
            ssi.stats().counter("asvm.recover.elected") >= 1,
            "reconstruction must elect the surviving copy holder"
        );
        assert_eq!(
            ssi.node(NodeId(3)).vm.peek_task_page(tasks[3], 0),
            Some(9),
            "the post-mortem write must be served from the elected copy"
        );
        check_asvm_invariants_except(ssi, &[NodeId(1)]);
    });
}

/// The owner of a page dies holding the *only* copy: reconstruction finds
/// no surviving holder and falls back to a pager re-fetch. The reader
/// completes with the pager's (stale) contents — the documented trade for
/// never hanging (`docs/RELIABILITY.md` §recovery).
#[test]
fn dead_owner_without_copies_falls_back_to_pager() {
    let victim = NodeId(1);
    let plan = FaultPlan::seeded(fault_seed() ^ 0x0F11).with_blackout(
        victim,
        Time::from_nanos(20_000_000),
        Time::MAX,
    );
    let (mut ssi, tasks) = build(3, 2, ManagerKind::asvm(), plan);
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 7,
            },
            Step::Barrier(0),
            Step::Compute(Dur::from_millis(100)),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(2),
        tasks[2],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(0),
            Step::Compute(Dur::from_millis(40)),
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![Step::Barrier(0), Step::Done])),
    );
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(100_000_000).expect("refetch quiesces");
        assert!(ssi.all_done(), "the reader finishes via the pager");
        assert!(
            ssi.stats().counter("asvm.recover.refetch") >= 1,
            "no surviving copy: recovery must re-fetch from the pager"
        );
        // The write died with the victim; the pager never saw it. Reading
        // the zero-filled backing store is the accepted stale outcome.
        assert_eq!(
            ssi.node(NodeId(2)).vm.peek_task_page(tasks[2], 0),
            Some(0),
            "pager fallback serves the backing store's contents"
        );
        check_asvm_invariants_except(ssi, &[NodeId(1)]);
    });
}

/// A transient blackout: heartbeats go silent long enough to raise
/// suspicion, then resume — the detector must clear the suspicion when
/// the first live beacon arrives, and the run ends clean.
#[test]
fn heartbeat_silence_suspects_and_recovery_beacon_clears() {
    let mut cfg = MachineConfig::paragon(2);
    cfg.faults = FaultPlan::seeded(fault_seed() ^ 0xBEAC).with_blackout(
        NodeId(1),
        Time::from_nanos(30_000_000),
        Time::from_nanos(80_000_000),
    );
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::asvm(), 7);
    // No shared memory at all: this isolates the failure detector — the
    // only protocol traffic is the heartbeat beacons themselves.
    let a = ssi.alloc_task();
    let b = ssi.alloc_task();
    for (t, n) in [(a, 0u16), (b, 1u16)] {
        ssi.spawn(
            NodeId(n),
            t,
            Box::new(ScriptProgram::new(vec![
                Step::Compute(Dur::from_millis(150)),
                Step::Done,
            ])),
        );
    }
    ssi.run(10_000_000).expect("detector run quiesces");
    assert!(ssi.all_done());
    // The 50 ms silence exceeds the 40 ms suspicion window on both sides
    // of the link (a blackout eats both directions)…
    assert!(
        ssi.stats().counter("cluster.suspect.count") >= 1,
        "50 ms of silence must raise suspicion"
    );
    // …and the post-blackout beacons clear it.
    assert!(
        ssi.stats().counter("cluster.suspect.cleared") >= 1,
        "beacons after the blackout must clear suspicion"
    );
}

/// Satellite check for the promoted hop bound: with `hop_limit`
/// configured down to zero, any dynamic-hint chain immediately trips the
/// bound, the trip is counted, and the request still completes through
/// the static-manager rung — the bound degrades forwarding, never
/// correctness.
#[test]
fn forward_hop_limit_trips_are_counted_and_survivable() {
    let mut acfg = asvm::AsvmConfig::default();
    acfg.forward.hop_limit = Some(0);
    let (mut ssi, tasks) = build(3, 4, ManagerKind::Asvm(acfg), FaultPlan::none());
    // A migratory schedule: ownership of every page hops between nodes
    // each round, leaving dynamic hints behind — the richest possible
    // hint-chain churn for the bound to trip on.
    let rounds = 6u32;
    for (i, t) in tasks.iter().enumerate() {
        let mut steps = Vec::new();
        for r in 0..rounds {
            if r % 3 == i as u32 {
                for p in 0..4u64 {
                    steps.push(Step::Write {
                        va_page: p,
                        value: (r as u64) << 8 | p,
                    });
                }
            }
            steps.push(Step::Barrier(r));
        }
        steps.push(Step::Done);
        ssi.spawn(NodeId(i as u16), *t, Box::new(ScriptProgram::new(steps)));
    }
    with_trace_dump(&mut ssi, |ssi| {
        ssi.run(100_000_000).expect("hop-limited run quiesces");
        assert!(ssi.all_done(), "a zero hop bound must not strand requests");
        assert!(
            ssi.stats().counter("asvm.forward.loop_trip") >= 1,
            "migratory churn under hop_limit=0 must trip the bound"
        );
        cluster::check_asvm_invariants(ssi);
    });
}

/// The fallback chain end to end on one cluster: a permanent mid-run
/// blackout of a non-coordinator node, every surviving node still
/// churning. Deterministic companion to the chaossweep bench and the
/// proptest in `faults.rs` — asserts the counters those only sample.
#[test]
fn permanent_blackout_drives_the_full_fallback_chain() {
    use workloads::{run_pattern_faulted, Pattern};
    let plan = FaultPlan::seeded(fault_seed()).with_blackout(
        NodeId(5),
        Time::from_nanos(30_000_000),
        Time::MAX,
    );
    let out = run_pattern_faulted(
        ManagerKind::asvm(),
        8,
        8,
        Pattern::Migratory { rounds: 3 },
        plan,
    );
    assert!(out.completed, "migratory run must survive the blackout");
    assert!(out.suspected >= 1, "survivors must suspect the dark node");
    assert!(
        out.reissued + out.refetched >= 1,
        "stalled requests must be re-issued or re-fetched"
    );
    assert!(
        out.exhausted >= 1,
        "frames to the dark node must exhaust their retries"
    );
}
