//! The exact FIGURE 9 scenario from the paper, step by step.
//!
//! *"FIGURE 9 shows a copy chain across two nodes as it is created if a
//! task forks to a remote node and the child task does the same. Assume
//! that a page-fault occurs in object 3 on Node C and the page is located
//! in object 1 on Node A. The VM system on Node C issues a data_request
//! for the page in object 2. ASVM forwards the request to Node B, which is
//! the peer node of object 2, and uses a pull_request to traverse the
//! local shadow chain. The result of the pull_request indicates that the
//! page has to be looked up in object 1 and ASVM forwards the request to
//! Node A. Here, again a pull_request is used and returns the page
//! contents. ASVM then supplies the page to the object from which it got
//! the request, object 2 on Node C."*

use cluster::{ManagerKind, Program, Ssi, Step, TaskEnv};
use machvm::{Access, Inherit, TaskId};
use svmsim::NodeId;

const REGION: u32 = 4;
const STAMP: u64 = 0xF169;

/// Task on node A: initialize object 1's contents, fork to B, idle.
struct TaskA {
    page: u32,
    forked: bool,
}

impl Program for TaskA {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if self.page < REGION {
            let p = self.page;
            self.page += 1;
            return Step::Write {
                va_page: p as u64,
                value: STAMP + p as u64,
            };
        }
        if !self.forked {
            self.forked = true;
            return Step::Fork {
                child: TaskId(801),
                node: NodeId(1),
                program: Box::new(TaskB { forked: false }),
            };
        }
        Step::Done
    }
}

/// Task on node B: fork straight on to C without touching the memory —
/// its copy (object 2) stays empty, so C's faults must pull through it.
struct TaskB {
    forked: bool,
}

impl Program for TaskB {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        if !self.forked {
            self.forked = true;
            return Step::Fork {
                child: TaskId(802),
                node: NodeId(2),
                program: Box::new(TaskC { page: 0 }),
            };
        }
        Step::Done
    }
}

/// Task on node C: fault every page of object 3.
struct TaskC {
    page: u32,
}

impl Program for TaskC {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        if self.page > 0 {
            let read = env.last_read.expect("read completed");
            assert_eq!(
                read,
                STAMP + (self.page - 1) as u64,
                "page {} must arrive from object 1 on node A",
                self.page - 1
            );
        }
        if self.page < REGION {
            let p = self.page;
            self.page += 1;
            return Step::Read { va_page: p as u64 };
        }
        Step::Done
    }
}

#[test]
fn figure9_pull_chain_across_three_nodes() {
    let mut ssi = Ssi::new(3, ManagerKind::asvm(), 9);
    let root = ssi.alloc_task();
    {
        let n = ssi.world.node_mut(NodeId(0));
        n.vm.create_task(root);
        let obj1 = n.vm.create_object(REGION, machvm::Backing::Anonymous);
        n.vm.map_object(root, 0, REGION, obj1, 0, Access::Write, Inherit::Copy);
    }
    ssi.finalize();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(0)).install_task(
        root,
        Box::new(TaskA {
            page: 0,
            forked: false,
        }),
        now,
    );
    ssi.world.post(now, NodeId(0), cluster::Msg::Resume(root));
    ssi.run(100_000_000).expect("figure 9 quiesces");
    assert!(ssi.all_done());

    // The pull machinery ran: node B issued pull requests on object 2's
    // chain and escalated to node A. The protocol surface shows it: C's
    // data never came from a pager (the region was never written back).
    assert_eq!(
        ssi.stats().counter("disk.reads"),
        0,
        "contents must come from object 1 on node A, not a disk"
    );
    // B's local VM never materialized the pages (it only relayed pulls).
    let b = ssi.node(NodeId(1));
    let b_resident = b.vm.resident_total();
    assert!(
        b_resident <= REGION,
        "node B should relay pulls, not accumulate the whole region (has {b_resident})"
    );
    // And node C holds all four pages with A's stamps (checked in-program
    // as well).
    let c = ssi.node(NodeId(2));
    for p in 0..REGION {
        assert_eq!(
            c.vm.peek_task_page(TaskId(802), p as u64),
            Some(STAMP + p as u64)
        );
    }
}
