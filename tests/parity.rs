//! Cross-manager parity: the same randomized workload through both
//! coherence engines, driven via the unified `CoherenceEngine` dispatcher.
//!
//! Both managers promise the same memory model — strong coherence (paper
//! §3.5) — so any barrier-sequenced trace must leave *identical* visible
//! memory behind under ASVM and XMM, even though the protocols (and their
//! timings) differ completely. The trace runner checks every read against
//! the sequential reference in-band; this test additionally compares the
//! final per-node page contents across the two engines.

mod common;

use cluster::{ManagerKind, Ssi};
use common::{run_trace, TraceOp};
use machvm::{Access, Inherit, PageIdx, TaskId};
use proptest::prelude::*;
use svmsim::{FaultPlan, MachineConfig, NodeId};
use transport::Transport;

fn trace_strategy(nodes: u16, pages: u32, max_ops: usize) -> impl Strategy<Value = Vec<TraceOp>> {
    prop::collection::vec(
        (0..nodes, 0..pages, any::<bool>()).prop_map(|(node, page, write)| TraceOp {
            node,
            page,
            write,
        }),
        1..max_ops,
    )
}

/// Runs `ops` to completion under `kind` and returns every node's view of
/// every page (what its task observes after the final verification pass).
fn final_memory(kind: ManagerKind, nodes: u16, pages: u32, ops: &[TraceOp]) -> Vec<Option<u64>> {
    let mut ssi = Ssi::new(nodes, kind, 99);
    ssi.enable_trace(96);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<TaskId> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);
    for n in 0..nodes {
        let steps: Vec<cluster::Step> = ops
            .iter()
            .enumerate()
            .flat_map(|(r, op)| {
                let mine = op.node == n;
                let action = mine.then(|| {
                    if op.write {
                        cluster::Step::Write {
                            va_page: op.page as u64,
                            value: common::round_value(r),
                        }
                    } else {
                        cluster::Step::Read {
                            va_page: op.page as u64,
                        }
                    }
                });
                action
                    .into_iter()
                    .chain(std::iter::once(cluster::Step::Barrier(r as u32)))
            })
            .chain((0..pages).map(|p| cluster::Step::Read { va_page: p as u64 }))
            .chain(std::iter::once(cluster::Step::Done))
            .collect();
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(cluster::ScriptProgram::new(steps)),
        );
    }
    common::with_trace_dump(&mut ssi, |ssi| {
        ssi.run(200_000_000).expect("parity trace quiesces");
        assert!(ssi.all_done(), "{}: parity trace finishes", kind.label());
    });
    let mut mem = Vec::new();
    for n in 0..nodes {
        for p in 0..pages {
            mem.push(
                ssi.node(NodeId(n))
                    .vm
                    .peek_task_page(tasks[n as usize], p as u64),
            );
        }
    }
    mem
}

/// Per-page protocol state after a run: `(page, owner node, copyset)`.
/// Exactly one node must claim ownership of every page.
type OwnershipMap = Vec<(u32, u16, Vec<u16>)>;

/// Runs `ops` under an ASVM config and returns every node's view of every
/// page plus the final ownership/copyset map. Same trace scaffolding as
/// [`final_memory`], but machine-configurable so a fault plan can ride
/// along.
fn asvm_final_state(
    cfg: asvm::AsvmConfig,
    faults: FaultPlan,
    nodes: u16,
    pages: u32,
    ops: &[TraceOp],
) -> (Vec<Option<u64>>, OwnershipMap) {
    asvm_backend_state(cfg, Transport::STS, faults, nodes, pages, ops)
}

/// [`asvm_final_state`] with the protocol carried on an explicit transport
/// backend (the cross-backend parity check).
fn asvm_backend_state(
    cfg: asvm::AsvmConfig,
    transport: Transport,
    faults: FaultPlan,
    nodes: u16,
    pages: u32,
    ops: &[TraceOp],
) -> (Vec<Option<u64>>, OwnershipMap) {
    let mut mc = MachineConfig::paragon(nodes);
    mc.faults = faults;
    let mut ssi = Ssi::with_machine(mc, ManagerKind::Asvm(cfg), 99);
    ssi.set_asvm_transport(transport);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, pages, false);
    let tasks: Vec<TaskId> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    ssi.set_barrier_parties(nodes as u32);
    for n in 0..nodes {
        // The verification pass is barrier-sequenced per node (unlike
        // `final_memory`'s concurrent pass): a never-written page gets its
        // first owner minted whenever the first read reaches the static
        // manager, and concurrent final reads would let transport *timing*
        // pick that owner — a harness race, not a protocol property. One
        // reader at a time makes the final ownership map a pure function
        // of the trace, comparable across transports.
        let steps: Vec<cluster::Step> = ops
            .iter()
            .enumerate()
            .flat_map(|(r, op)| {
                let mine = op.node == n;
                let action = mine.then(|| {
                    if op.write {
                        cluster::Step::Write {
                            va_page: op.page as u64,
                            value: common::round_value(r),
                        }
                    } else {
                        cluster::Step::Read {
                            va_page: op.page as u64,
                        }
                    }
                });
                action
                    .into_iter()
                    .chain(std::iter::once(cluster::Step::Barrier(r as u32)))
            })
            .chain((0..nodes).flat_map(|turn| {
                let mine = turn == n;
                mine.then(|| (0..pages).map(|p| cluster::Step::Read { va_page: p as u64 }))
                    .into_iter()
                    .flatten()
                    .chain(std::iter::once(cluster::Step::Barrier(
                        ops.len() as u32 + turn as u32,
                    )))
            }))
            .chain(std::iter::once(cluster::Step::Done))
            .collect();
        ssi.spawn(
            NodeId(n),
            tasks[n as usize],
            Box::new(cluster::ScriptProgram::new(steps)),
        );
    }
    ssi.run(200_000_000).expect("backend parity trace quiesces");
    assert!(ssi.all_done(), "backend parity trace finishes");
    let mut mem = Vec::new();
    for n in 0..nodes {
        for p in 0..pages {
            mem.push(
                ssi.node(NodeId(n))
                    .vm
                    .peek_task_page(tasks[n as usize], p as u64),
            );
        }
    }
    let mut ownership = Vec::new();
    for p in 0..pages {
        let mut owner = None;
        let mut copyset = Vec::new();
        for n in 0..nodes {
            let eng = ssi.node(NodeId(n)).asvm().expect("asvm engine");
            if let Some(pi) = eng.page_info(mobj, PageIdx(p)) {
                if pi.owner {
                    assert!(owner.is_none(), "page {p}: two nodes claim ownership");
                    owner = Some(n);
                    copyset = pi.readers.iter().map(|r| r.0).collect();
                }
            }
        }
        let owner = owner.unwrap_or_else(|| panic!("page {p}: no owner after quiesce"));
        ownership.push((p, owner, copyset));
    }
    (mem, ownership)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// The coherence check itself, through both engines: every in-trace and
    /// final read observes the sequential reference value.
    #[test]
    fn both_engines_satisfy_the_same_reference(ops in trace_strategy(3, 4, 14)) {
        run_trace(ManagerKind::asvm(), 3, 4, &ops);
        run_trace(ManagerKind::xmm(), 3, 4, &ops);
    }

    /// Visible memory agrees across engines once the trace settles: both
    /// must match the sequential reference on every resident page. (Which
    /// pages *stay* resident after the final reads is protocol-dependent —
    /// XMM's flush semantics differ from ASVM's read sharing — so `None`
    /// entries are residency artifacts, not coherence violations.)
    #[test]
    fn final_memory_matches_across_engines(ops in trace_strategy(3, 4, 14)) {
        let mut reference = std::collections::BTreeMap::new();
        for (r, op) in ops.iter().enumerate() {
            if op.write {
                reference.insert(op.page, common::round_value(r));
            }
        }
        let asvm = final_memory(ManagerKind::asvm(), 3, 4, &ops);
        let xmm = final_memory(ManagerKind::xmm(), 3, 4, &ops);
        prop_assert_eq!(asvm.len(), xmm.len());
        for (i, (a, x)) in asvm.iter().zip(&xmm).enumerate() {
            let page = (i % 4) as u32;
            let want = reference.get(&page).copied().unwrap_or(0);
            if let Some(v) = a {
                prop_assert_eq!(*v, want, "ASVM node {} page {}", i / 4, page);
            }
            if let Some(v) = x {
                prop_assert_eq!(*v, want, "XMM node {} page {}", i / 4, page);
            }
            if let (Some(a), Some(x)) = (a, x) {
                prop_assert_eq!(a, x);
            }
        }
    }

    /// Coalescing is a transport-layer change only: the same randomized
    /// workload with the frame combiner off and on must reach identical
    /// final memory contents, page ownership, and copysets — both on a
    /// healthy machine and under an active fault plan (where a coalesced
    /// frame is one ARQ unit, see docs/RELIABILITY.md).
    #[test]
    fn coalescing_preserves_final_state(ops in trace_strategy(3, 6, 12)) {
        let base = asvm::AsvmConfig::with_readahead(4);
        for faulted in [false, true] {
            let plan = || if faulted {
                FaultPlan::seeded(7).with_drop_ppm(10_000).with_dup_ppm(2_000)
            } else {
                FaultPlan::none()
            };
            let (mem_off, own_off) = asvm_final_state(base, plan(), 3, 6, &ops);
            let (mem_on, own_on) = asvm_final_state(base.coalesced(), plan(), 3, 6, &ops);
            prop_assert_eq!(mem_off, mem_on, "memory diverged (faulted={})", faulted);
            prop_assert_eq!(own_off, own_on, "ownership diverged (faulted={})", faulted);
        }
    }

    /// Prefetch is a latency optimisation, not a semantics change: the
    /// same randomized workload with speculation off, hint-only, and
    /// hint+data must reach identical final memory contents and page
    /// ownership — healthy and under an active fault plan. A
    /// deterministic write prefix mints every page's first owner before
    /// any speculation can reach the static manager; without it, a
    /// speculative read racing the baseline's demand read would mint a
    /// different first owner for a never-written page — a harness
    /// artifact, not a coherence violation. Copysets are *not* compared:
    /// speculative read copies legitimately widen them.
    #[test]
    fn prefetch_preserves_final_state(ops in trace_strategy(3, 6, 12)) {
        let mut full: Vec<TraceOp> = (0..6)
            .map(|p| TraceOp { node: (p % 3) as u16, page: p, write: true })
            .collect();
        full.extend(ops.iter().copied());
        let base = asvm::AsvmConfig::default().coalesced();
        let mut hints = base;
        hints.prefetch = asvm::PrefetchCfg::hints_only(4);
        let mut streaming = base;
        streaming.prefetch = asvm::PrefetchCfg::streaming(4);
        let owners = |own: &OwnershipMap| -> Vec<(u32, u16)> {
            own.iter().map(|(p, o, _)| (*p, *o)).collect()
        };
        for faulted in [false, true] {
            let plan = || if faulted {
                FaultPlan::seeded(7).with_drop_ppm(10_000).with_dup_ppm(2_000)
            } else {
                FaultPlan::none()
            };
            let (mem_off, own_off) = asvm_final_state(base, plan(), 3, 6, &full);
            let (mem_h, own_h) = asvm_final_state(hints, plan(), 3, 6, &full);
            let (mem_s, own_s) = asvm_final_state(streaming, plan(), 3, 6, &full);
            prop_assert_eq!(&mem_off, &mem_h, "hint-only memory diverged (faulted={})", faulted);
            prop_assert_eq!(&mem_off, &mem_s, "hint+data memory diverged (faulted={})", faulted);
            prop_assert_eq!(
                owners(&own_off), owners(&own_h),
                "hint-only ownership diverged (faulted={})", faulted
            );
            prop_assert_eq!(
                owners(&own_off), owners(&own_s),
                "hint+data ownership diverged (faulted={})", faulted
            );
        }
    }

    /// The online per-object policy (`asvm::policy`) makes *consultation*
    /// choices only — which forwarding layer to ask first, whether to
    /// speculate — so an adaptive run must converge to the same final
    /// state as any static configuration, healthy and faulted. With a
    /// speculation-free base, the full state (memory, ownership,
    /// copysets) must match the static arms exactly. With readahead in
    /// the base, prefetch legitimately changes *who asks first* for a
    /// never-written page, so the minted owner may differ — visible
    /// memory still may not.
    #[test]
    fn adaptive_policy_preserves_final_state(ops in trace_strategy(3, 6, 12)) {
        let mut adaptive = asvm::AsvmConfig::default().adaptive();
        adaptive.policy.window = 4;
        let mut adaptive_accel = asvm::AsvmConfig::fixed_distributed().coalesced().adaptive();
        adaptive_accel.prefetch = asvm::PrefetchCfg::readahead(4);
        adaptive_accel.policy.window = 4;
        for faulted in [false, true] {
            let plan = || if faulted {
                FaultPlan::seeded(7).with_drop_ppm(10_000).with_dup_ppm(2_000)
            } else {
                FaultPlan::none()
            };
            let (mem_dyn, own_dyn) =
                asvm_final_state(asvm::AsvmConfig::default(), plan(), 3, 6, &ops);
            let (mem_static, own_static) =
                asvm_final_state(asvm::AsvmConfig::fixed_distributed(), plan(), 3, 6, &ops);
            let (mem_ad, own_ad) = asvm_final_state(adaptive, plan(), 3, 6, &ops);
            prop_assert_eq!(&mem_ad, &mem_dyn, "adaptive vs dynamic memory (faulted={})", faulted);
            prop_assert_eq!(&mem_ad, &mem_static, "adaptive vs static memory (faulted={})", faulted);
            prop_assert_eq!(&own_ad, &own_dyn, "adaptive vs dynamic ownership (faulted={})", faulted);
            prop_assert_eq!(&own_ad, &own_static, "adaptive vs static ownership (faulted={})", faulted);
            // Accelerated base: runtime readahead toggles may mint
            // different first owners for never-written pages, so only
            // visible memory is compared (single-owner and coherence
            // invariants are still asserted inside the runner).
            let (mem_acc, _own_acc) = asvm_final_state(adaptive_accel, plan(), 3, 6, &ops);
            prop_assert_eq!(&mem_acc, &mem_dyn, "accel-adaptive memory (faulted={})", faulted);
        }
    }

    /// The transport backend is a carrier, not a protocol: the same
    /// randomized workload over STS, NORMA-IPC, and RDMA must converge to
    /// identical final memory contents, page ownership, and copysets —
    /// healthy and faulted. RDMA is the interesting arm: eligible read
    /// faults go one-sided (zero owner occupancy, no link ARQ, watchdog
    /// re-issue on loss), yet every state transition must match the
    /// two-sided backends exactly.
    #[test]
    fn backends_preserve_final_state(ops in trace_strategy(3, 6, 12)) {
        let base = asvm::AsvmConfig::default();
        for faulted in [false, true] {
            let plan = || if faulted {
                FaultPlan::seeded(7).with_drop_ppm(10_000).with_dup_ppm(2_000)
            } else {
                FaultPlan::none()
            };
            let (mem_sts, own_sts) =
                asvm_backend_state(base, Transport::STS, plan(), 3, 6, &ops);
            let (mem_norma, own_norma) =
                asvm_backend_state(base, Transport::NORMA, plan(), 3, 6, &ops);
            let (mem_rdma, own_rdma) =
                asvm_backend_state(base, Transport::RDMA, plan(), 3, 6, &ops);
            prop_assert_eq!(
                &mem_sts, &mem_norma,
                "STS vs NORMA memory diverged (faulted={})", faulted
            );
            prop_assert_eq!(
                &own_sts, &own_norma,
                "STS vs NORMA ownership diverged (faulted={})", faulted
            );
            prop_assert_eq!(
                &mem_sts, &mem_rdma,
                "STS vs RDMA memory diverged (faulted={})", faulted
            );
            prop_assert_eq!(
                &own_sts, &own_rdma,
                "STS vs RDMA ownership diverged (faulted={})", faulted
            );
        }
    }
}

#[test]
fn parity_on_a_write_heavy_pingpong() {
    let ops: Vec<TraceOp> = (0..10)
        .map(|i| TraceOp {
            node: (i % 3) as u16,
            page: (i % 2) as u32,
            write: i % 3 != 2,
        })
        .collect();
    let asvm = final_memory(ManagerKind::asvm(), 3, 2, &ops);
    let xmm = final_memory(ManagerKind::xmm(), 3, 2, &ops);
    assert_eq!(asvm, xmm);
}
