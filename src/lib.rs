//! `asvm-repro` — umbrella crate for the ASVM reproduction.
//!
//! Re-exports the public API of every workspace crate. See `README.md` for
//! the architecture overview, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub use asvm;
pub use cluster;
pub use machvm;
pub use pager;
pub use svmsim;
pub use transport;
pub use workloads;
pub use xmm;
