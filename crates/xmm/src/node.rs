//! The per-node XMM instance: proxies, the centralized manager, and the
//! internal copy pagers.
//!
//! XMM (NMK13) intercepts EMMI between each node's VM system and the real
//! pager. For every memory object, exactly one node — the *manager*, where
//! the object was created — holds all state and talks to the pager; every
//! other node runs a forwarding proxy (paper §2.3.1). The manager keeps a
//! page-state byte per page *per node* (the memory cost §3.1 criticizes)
//! and serializes all requests for a page.
//!
//! Inherited memory uses *internal pagers* (§2.3.3): a fork-time snapshot
//! of the parent address space lives in a pseudo task; remote faults arrive
//! as messages, occupy a thread from a bounded pool, and run a *local*
//! page fault on the snapshot — the blocking design whose thread
//! exhaustion deadlock the paper calls out (and which ASVM's asynchronous
//! transitions avoid).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use machvm::{
    Access, EmmiToKernel, EmmiToPager, FaultId, FaultOutcome, LockMode, LockOp, MemObjId, PageIdx,
    SupplyMode, TaskId, VmObjId, VmSystem,
};
use svmsim::{CostModel, Dur, NodeId, Time};

use crate::protocol::{XLock, XmmMsg};

/// A cross-node send requested by XMM (carried over NORMA-IPC).
#[derive(Clone, Debug)]
pub struct XmmSend {
    /// Destination node.
    pub dst: NodeId,
    /// The message.
    pub msg: XmmMsg,
}

/// An EMMI request to a real pager task (also NORMA-IPC).
#[derive(Clone, Debug)]
pub struct XmmPagerSend {
    /// The I/O node hosting the pager.
    pub pager_node: NodeId,
    /// Node the reply must go to.
    pub reply_to: NodeId,
    /// The memory object addressed.
    pub mobj: MemObjId,
    /// Reply-routing VM object on `reply_to`.
    pub obj: VmObjId,
    /// The EMMI call.
    pub call: EmmiToPager,
}

/// Effects produced by XMM handlers.
#[derive(Debug, Default)]
pub struct Fx {
    /// Message-processor time to charge.
    pub cpu: Dur,
    /// XMMI messages to send.
    pub net: Vec<XmmSend>,
    /// EMMI requests to real pagers.
    pub pager: Vec<XmmPagerSend>,
    /// Effects emitted by nested VM calls.
    pub vm: machvm::Effects,
}

impl Fx {
    /// Creates an empty effect sink.
    pub fn new() -> Fx {
        Fx::default()
    }

    fn send(&mut self, dst: NodeId, msg: XmmMsg) {
        self.net.push(XmmSend { dst, msg });
    }
}

/// What backs an XMM-managed object.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XmmBacking {
    /// A real pager task on an I/O node.
    RealPager {
        /// The I/O node.
        node: NodeId,
    },
    /// An XMM internal copy pager on the node where the fork snapshot
    /// lives.
    InternalPager {
        /// The snapshot node.
        node: NodeId,
    },
}

/// A request being processed (or queued) at the centralized manager.
#[derive(Clone, Copy, Debug)]
struct PendingReq {
    access: Access,
    origin: NodeId,
    origin_obj: VmObjId,
}

/// One in-flight transaction at the manager (one per page at a time).
#[derive(Debug)]
struct Txn {
    req: PendingReq,
    awaiting: BTreeSet<NodeId>,
    upgrade: bool,
    dispatched: bool,
}

/// Centralized manager state for one object.
#[derive(Debug, Default)]
pub struct MgrState {
    /// The paper's memory hog: one state byte per page per using node
    /// (0 = none, 1 = read, 2 = write).
    table: BTreeMap<NodeId, Vec<u8>>,
    busy: BTreeMap<PageIdx, Txn>,
    queue: BTreeMap<PageIdx, VecDeque<PendingReq>>,
}

impl MgrState {
    /// Bytes of non-pageable memory the state table consumes (for the
    /// memory ablation): 1 byte × pages × nodes.
    pub fn table_bytes(&self) -> usize {
        self.table.values().map(|v| v.len()).sum()
    }

    /// Total manager metadata: the page-state table plus in-flight
    /// transaction and queue records.
    pub fn state_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut total = self.table_bytes() as u64 + (self.table.len() * size_of::<NodeId>()) as u64;
        for txn in self.busy.values() {
            total += (size_of::<PageIdx>() + size_of::<Txn>()) as u64
                + (txn.awaiting.len() * size_of::<NodeId>()) as u64;
        }
        for q in self.queue.values() {
            total += size_of::<PageIdx>() as u64 + (q.len() * size_of::<PendingReq>()) as u64;
        }
        total
    }

    fn node_row(&mut self, node: NodeId, pages: u32) -> &mut Vec<u8> {
        self.table
            .entry(node)
            .or_insert_with(|| vec![0; pages as usize])
    }
}

/// Per-node representation of one XMM-managed object.
#[derive(Debug)]
pub struct XmmObject {
    /// The object.
    pub mobj: MemObjId,
    /// The local VM object.
    pub vm_obj: VmObjId,
    /// Length in pages.
    pub size_pages: u32,
    /// The centralized manager node.
    pub manager: NodeId,
    /// Backing pager.
    pub backing: XmmBacking,
    /// Manager state (populated on the manager node only).
    pub mgr: Option<MgrState>,
    /// Our own outstanding requests.
    pub pending: BTreeMap<PageIdx, Access>,
}

/// An internal copy pager: serves one inherited memory object from a local
/// fork-time snapshot.
#[derive(Debug)]
pub struct InternalPager {
    /// The object it backs.
    pub mobj: MemObjId,
    /// The pseudo task owning the snapshot address space.
    pub task: TaskId,
    /// Virtual page where the snapshot region starts in `task`.
    pub base_va: u64,
    /// Faults in flight, keyed by fault id.
    by_fault: BTreeMap<FaultId, (PageIdx, NodeId, VmObjId)>,
}

/// The XMM instance of one node.
pub struct XmmNode {
    me: NodeId,
    cost: CostModel,
    objects: BTreeMap<MemObjId, XmmObject>,
    by_vmobj: BTreeMap<VmObjId, MemObjId>,
    internal: BTreeMap<MemObjId, InternalPager>,
    ip_tasks: BTreeMap<TaskId, MemObjId>,
    /// Copy-pager thread pool (node wide). Blocking threads are XMM's
    /// deadlock hazard; the pool is bounded like the real system's.
    threads_free: usize,
    thread_queue: VecDeque<(MemObjId, PageIdx, NodeId, VmObjId)>,
    /// Requests that never got a thread (diagnosed as deadlock when the
    /// simulation quiesces with this non-empty).
    pub stalled: u64,
}

impl XmmNode {
    /// Creates the instance for node `me` with `copy_threads` internal
    /// pager threads.
    pub fn new(me: NodeId, cost: CostModel, copy_threads: usize) -> XmmNode {
        XmmNode {
            me,
            cost,
            objects: BTreeMap::new(),
            by_vmobj: BTreeMap::new(),
            internal: BTreeMap::new(),
            ip_tasks: BTreeMap::new(),
            threads_free: copy_threads,
            thread_queue: VecDeque::new(),
            stalled: 0,
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Approximate bytes of non-pageable protocol metadata this node
    /// holds. Dominated on manager nodes by the centralized page-state
    /// table (1 byte × pages × using nodes) — the memory-scaling hazard
    /// the paper's distributed scheme removes.
    pub fn state_bytes(&self) -> u64 {
        use std::mem::size_of;
        let mut total = (self.by_vmobj.len() * (size_of::<VmObjId>() + size_of::<MemObjId>()))
            as u64
            + (self.ip_tasks.len() * (size_of::<TaskId>() + size_of::<MemObjId>())) as u64
            + (self.thread_queue.len() * size_of::<(MemObjId, PageIdx, NodeId, VmObjId)>()) as u64;
        for o in self.objects.values() {
            total += size_of::<XmmObject>() as u64;
            total += (o.pending.len() * (size_of::<PageIdx>() + size_of::<Access>())) as u64;
            if let Some(mgr) = &o.mgr {
                total += mgr.state_bytes();
            }
        }
        for ip in self.internal.values() {
            total += size_of::<InternalPager>() as u64
                + (ip.by_fault.len()
                    * (size_of::<FaultId>() + size_of::<(PageIdx, NodeId, VmObjId)>()))
                    as u64;
        }
        total
    }

    /// Registers the local representation of `mobj`.
    pub fn register_object(
        &mut self,
        mobj: MemObjId,
        vm_obj: VmObjId,
        size_pages: u32,
        manager: NodeId,
        backing: XmmBacking,
    ) {
        let mgr = (manager == self.me).then(MgrState::default);
        let prev = self.objects.insert(
            mobj,
            XmmObject {
                mobj,
                vm_obj,
                size_pages,
                manager,
                backing,
                mgr,
                pending: BTreeMap::new(),
            },
        );
        assert!(prev.is_none(), "object {mobj:?} registered twice");
        self.by_vmobj.insert(vm_obj, mobj);
    }

    /// True if `mobj` is registered here.
    pub fn has_object(&self, mobj: MemObjId) -> bool {
        self.objects.contains_key(&mobj)
    }

    /// Object state (tests/harnesses).
    pub fn object(&self, mobj: MemObjId) -> &XmmObject {
        self.objects.get(&mobj).expect("object not registered")
    }

    /// The memory object behind a VM object, if XMM manages it.
    pub fn mobj_of(&self, vm_obj: VmObjId) -> Option<MemObjId> {
        self.by_vmobj.get(&vm_obj).copied()
    }

    /// Total manager state-table bytes on this node (memory ablation).
    pub fn manager_table_bytes(&self) -> usize {
        self.objects
            .values()
            .filter_map(|o| o.mgr.as_ref())
            .map(|m| m.table_bytes())
            .sum()
    }

    /// Number of internal-pager requests waiting for a thread.
    pub fn thread_queue_len(&self) -> usize {
        self.thread_queue.len()
    }

    /// Registers an internal copy pager backing `mobj` with the snapshot
    /// held by pseudo task `task` at `base_va`.
    pub fn register_internal_pager(&mut self, mobj: MemObjId, task: TaskId, base_va: u64) {
        self.internal.insert(
            mobj,
            InternalPager {
                mobj,
                task,
                base_va,
                by_fault: BTreeMap::new(),
            },
        );
        self.ip_tasks.insert(task, mobj);
    }

    /// True if `task` is one of this node's internal-pager pseudo tasks.
    pub fn is_ip_task(&self, task: TaskId) -> bool {
        self.ip_tasks.contains_key(&task)
    }

    // --- Local VM ingress -----------------------------------------------------

    /// Handles an EMMI call from the local VM on `vm_obj`.
    pub fn handle_emmi(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        vm_obj: VmObjId,
        call: EmmiToPager,
        fx: &mut Fx,
    ) {
        fx.cpu += self.cost.xmm_handle;
        let mobj = *self
            .by_vmobj
            .get(&vm_obj)
            .expect("EMMI for unmanaged object");
        let me = self.me;
        let o = self.objects.get_mut(&mobj).unwrap();
        match call {
            EmmiToPager::DataRequest { page, access }
            | EmmiToPager::DataUnlock { page, access } => {
                if let Some(prev) = o.pending.get(&page) {
                    if prev.allows(access) {
                        return;
                    }
                }
                o.pending.insert(page, access);
                match o.backing {
                    XmmBacking::InternalPager { node } => {
                        fx.send(
                            node,
                            XmmMsg::IpRequest {
                                mobj,
                                page,
                                origin: me,
                                origin_obj: vm_obj,
                            },
                        );
                    }
                    XmmBacking::RealPager { .. } => {
                        fx.send(
                            o.manager,
                            XmmMsg::Request {
                                mobj,
                                page,
                                access,
                                origin: me,
                                origin_obj: vm_obj,
                            },
                        );
                    }
                }
            }
            EmmiToPager::DataReturn { page, data, dirty } => {
                if dirty {
                    if let XmmBacking::RealPager { node } = o.backing {
                        fx.pager.push(XmmPagerSend {
                            pager_node: node,
                            reply_to: me,
                            mobj,
                            obj: vm_obj,
                            call: EmmiToPager::DataReturn { page, data, dirty },
                        });
                    }
                }
            }
            EmmiToPager::LockCompleted { .. } => {}
            EmmiToPager::PullCompleted { .. } => {
                panic!("XMM does not use pull requests")
            }
        }
        let _ = (now, vm);
    }

    // --- Peer message ingress ------------------------------------------------------

    /// Handles one XMMI message.
    pub fn handle_msg(&mut self, now: Time, vm: &mut VmSystem, msg: XmmMsg, fx: &mut Fx) {
        // Acknowledgements are cheap bookkeeping; state-machine work pays
        // the full handling cost.
        fx.cpu += match &msg {
            XmmMsg::LockAck { .. }
            | XmmMsg::Complete { .. }
            | XmmMsg::Evicted { .. }
            | XmmMsg::LockReq { .. } => self.cost.xmm_ack_handle,
            _ => self.cost.xmm_handle,
        };
        let me = self.me;
        let mobj = msg.mobj();
        match msg {
            XmmMsg::Request {
                page,
                access,
                origin,
                origin_obj,
                ..
            } => {
                let req = PendingReq {
                    access,
                    origin,
                    origin_obj,
                };
                self.mgr_request(now, mobj, page, req, fx);
            }
            XmmMsg::LockReq { page, op, from, .. } => {
                let o = self.objects.get_mut(&mobj).unwrap();
                vm.kernel_call(
                    now,
                    o.vm_obj,
                    EmmiToKernel::LockRequest {
                        page,
                        op: LockOp::Flush {
                            return_dirty: op == XLock::FlushReturn,
                        },
                        mode: LockMode::Normal,
                    },
                    &mut fx.vm,
                );
                // Forward any resulting data return to the real pager, then
                // acknowledge.
                Self::ship_returns(o, me, &mut fx.vm, &mut fx.pager);
                fx.send(
                    from,
                    XmmMsg::LockAck {
                        mobj,
                        page,
                        from: me,
                    },
                );
            }
            XmmMsg::LockAck { page, from, .. } => {
                self.mgr_lock_ack(now, mobj, page, from, fx);
            }
            XmmMsg::GrantUp { page, .. } => {
                let o = self.objects.get_mut(&mobj).unwrap();
                o.pending.remove(&page);
                vm.kernel_call(
                    now,
                    o.vm_obj,
                    EmmiToKernel::LockRequest {
                        page,
                        op: LockOp::Grant(Access::Write),
                        mode: LockMode::Normal,
                    },
                    &mut fx.vm,
                );
                fx.send(
                    o.manager,
                    XmmMsg::Complete {
                        mobj,
                        page,
                        from: me,
                    },
                );
            }
            XmmMsg::Complete { page, .. } => {
                self.mgr_complete(now, mobj, page, fx);
            }
            XmmMsg::Evicted { page, from, .. } => {
                let o = self.objects.get_mut(&mobj).unwrap();
                let size = o.size_pages;
                let mgr = o.mgr.as_mut().expect("eviction notice at non-manager");
                mgr.node_row(from, size)[page.0 as usize] = 0;
            }
            XmmMsg::IpRequest {
                page,
                origin,
                origin_obj,
                ..
            } => {
                self.ip_request(now, vm, mobj, page, origin, origin_obj, fx);
            }
            XmmMsg::IpSupply {
                page,
                data,
                dst_obj,
                ..
            } => {
                let o = self.objects.get_mut(&mobj).unwrap();
                o.pending.remove(&page);
                vm.kernel_call(
                    now,
                    dst_obj,
                    EmmiToKernel::DataSupply {
                        page,
                        data,
                        lock: Access::Write,
                        mode: SupplyMode::Normal,
                    },
                    &mut fx.vm,
                );
            }
        }
    }

    /// A reply from the real pager arrived for `vm_obj`.
    pub fn on_pager_reply(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        vm_obj: VmObjId,
        reply: EmmiToKernel,
        fx: &mut Fx,
    ) {
        fx.cpu += self.cost.xmm_handle;
        let me = self.me;
        let mobj = *self
            .by_vmobj
            .get(&vm_obj)
            .expect("pager reply for unmanaged object");
        let o = self.objects.get_mut(&mobj).unwrap();
        match reply {
            EmmiToKernel::DataSupply { page, data, .. } => {
                let access = o.pending.remove(&page).unwrap_or(Access::Read);
                vm.kernel_call(
                    now,
                    vm_obj,
                    EmmiToKernel::DataSupply {
                        page,
                        data,
                        lock: access,
                        mode: SupplyMode::Normal,
                    },
                    &mut fx.vm,
                );
                fx.send(
                    o.manager,
                    XmmMsg::Complete {
                        mobj,
                        page,
                        from: me,
                    },
                );
            }
            other => panic!("unexpected pager reply {other:?}"),
        }
    }

    /// The VM evicted a page of an XMM object: return dirty contents to
    /// the pager and update the manager's table. XMM has no internode
    /// paging — evicted pages always leave the node set.
    #[allow(clippy::too_many_arguments)]
    pub fn evict_external(
        &mut self,
        _now: Time,
        _vm: &mut VmSystem,
        vm_obj: VmObjId,
        page: PageIdx,
        data: machvm::PageData,
        dirty: bool,
        fx: &mut Fx,
    ) {
        fx.cpu += self.cost.xmm_handle;
        let me = self.me;
        let mobj = *self
            .by_vmobj
            .get(&vm_obj)
            .expect("eviction for unmanaged object");
        let o = self.objects.get_mut(&mobj).unwrap();
        if dirty {
            if let XmmBacking::RealPager { node } = o.backing {
                fx.pager.push(XmmPagerSend {
                    pager_node: node,
                    reply_to: me,
                    mobj,
                    obj: vm_obj,
                    call: EmmiToPager::DataReturn {
                        page,
                        data,
                        dirty: true,
                    },
                });
            }
        }
        if o.manager == me {
            let size = o.size_pages;
            if let Some(mgr) = o.mgr.as_mut() {
                mgr.node_row(me, size)[page.0 as usize] = 0;
            }
        } else {
            fx.send(
                o.manager,
                XmmMsg::Evicted {
                    mobj,
                    page,
                    from: me,
                },
            );
        }
    }

    /// A fault of an internal-pager pseudo task completed.
    pub fn ip_fault_done(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        task: TaskId,
        fault: FaultId,
        fx: &mut Fx,
    ) {
        let mobj = *self.ip_tasks.get(&task).expect("not an ip task");
        let ip = self.internal.get_mut(&mobj).unwrap();
        let Some((page, origin, origin_obj)) = ip.by_fault.remove(&fault) else {
            return;
        };
        let va = ip.base_va + page.0 as u64;
        let data = vm.read_page(now, ip.task, va);
        fx.send(
            origin,
            XmmMsg::IpSupply {
                mobj,
                page,
                data,
                dst_obj: origin_obj,
            },
        );
        self.threads_free += 1;
        self.run_thread_queue(now, vm, fx);
    }

    // --- Manager logic ----------------------------------------------------------------

    fn mgr_request(
        &mut self,
        now: Time,
        mobj: MemObjId,
        page: PageIdx,
        req: PendingReq,
        fx: &mut Fx,
    ) {
        let o = self.objects.get_mut(&mobj).unwrap();
        assert_eq!(o.manager, self.me, "request at non-manager node");
        let mgr = o.mgr.as_mut().unwrap();
        if mgr.busy.contains_key(&page) {
            mgr.queue.entry(page).or_default().push_back(req);
            return;
        }
        Self::mgr_start(o, self.me, page, req, fx);
        let _ = now;
    }

    fn mgr_start(o: &mut XmmObject, me: NodeId, page: PageIdx, req: PendingReq, fx: &mut Fx) {
        let mobj = o.mobj;
        let size = o.size_pages;
        let mgr = o.mgr.as_mut().unwrap();
        let p = page.0 as usize;
        let writer: Option<NodeId> = mgr
            .table
            .iter()
            .find(|(_, row)| row[p] == 2)
            .map(|(n, _)| *n);
        let readers: Vec<NodeId> = mgr
            .table
            .iter()
            .filter(|(_, row)| row[p] == 1)
            .map(|(n, _)| *n)
            .collect();

        // Upgrade fast path: the origin already holds a clean read copy.
        if req.access == Access::Write && writer.is_none() && readers.contains(&req.origin) {
            let others: BTreeSet<NodeId> = readers
                .iter()
                .copied()
                .filter(|r| *r != req.origin)
                .collect();
            for r in &others {
                mgr.node_row(*r, size)[p] = 0;
                fx.send(
                    *r,
                    XmmMsg::LockReq {
                        mobj,
                        page,
                        op: XLock::Flush,
                        from: me,
                    },
                );
            }
            mgr.node_row(req.origin, size)[p] = 2;
            let done = others.is_empty();
            mgr.busy.insert(
                page,
                Txn {
                    req,
                    awaiting: others,
                    upgrade: true,
                    dispatched: done,
                },
            );
            if done {
                fx.send(req.origin, XmmMsg::GrantUp { mobj, page });
            }
            return;
        }

        // General path: create a coherent version at the pager first.
        let mut awaiting = BTreeSet::new();
        if let Some(w) = writer {
            if w != req.origin {
                mgr.node_row(w, size)[p] = 0;
                awaiting.insert(w);
                fx.send(
                    w,
                    XmmMsg::LockReq {
                        mobj,
                        page,
                        op: XLock::FlushReturn,
                        from: me,
                    },
                );
            }
        }
        if req.access == Access::Write {
            for r in readers {
                if r != req.origin {
                    mgr.node_row(r, size)[p] = 0;
                    awaiting.insert(r);
                    fx.send(
                        r,
                        XmmMsg::LockReq {
                            mobj,
                            page,
                            op: XLock::Flush,
                            from: me,
                        },
                    );
                }
            }
        }
        let ready = awaiting.is_empty();
        mgr.busy.insert(
            page,
            Txn {
                req,
                awaiting,
                upgrade: false,
                dispatched: false,
            },
        );
        if ready {
            Self::mgr_dispatch(o, me, page, fx);
        }
    }

    fn mgr_dispatch(o: &mut XmmObject, me: NodeId, page: PageIdx, fx: &mut Fx) {
        let mobj = o.mobj;
        let size = o.size_pages;
        let backing = o.backing;
        let mgr = o.mgr.as_mut().unwrap();
        let txn = mgr.busy.get_mut(&page).unwrap();
        txn.dispatched = true;
        let req = txn.req;
        mgr.node_row(req.origin, size)[page.0 as usize] =
            if req.access == Access::Write { 2 } else { 1 };
        match backing {
            XmmBacking::RealPager { node } => {
                fx.pager.push(XmmPagerSend {
                    pager_node: node,
                    reply_to: req.origin,
                    mobj,
                    obj: req.origin_obj,
                    call: EmmiToPager::DataRequest {
                        page,
                        access: req.access,
                    },
                });
            }
            XmmBacking::InternalPager { node } => {
                fx.send(
                    node,
                    XmmMsg::IpRequest {
                        mobj,
                        page,
                        origin: req.origin,
                        origin_obj: req.origin_obj,
                    },
                );
            }
        }
        let _ = me;
    }

    fn mgr_lock_ack(
        &mut self,
        _now: Time,
        mobj: MemObjId,
        page: PageIdx,
        from: NodeId,
        fx: &mut Fx,
    ) {
        let me = self.me;
        let o = self.objects.get_mut(&mobj).unwrap();
        let mgr = o.mgr.as_mut().expect("lock ack at non-manager");
        let Some(txn) = mgr.busy.get_mut(&page) else {
            return;
        };
        txn.awaiting.remove(&from);
        if txn.awaiting.is_empty() && !txn.dispatched {
            if txn.upgrade {
                txn.dispatched = true;
                let origin = txn.req.origin;
                fx.send(origin, XmmMsg::GrantUp { mobj, page });
            } else {
                Self::mgr_dispatch(o, me, page, fx);
            }
        }
    }

    fn mgr_complete(&mut self, now: Time, mobj: MemObjId, page: PageIdx, fx: &mut Fx) {
        let o = self.objects.get_mut(&mobj).unwrap();
        let mgr = o.mgr.as_mut().expect("complete at non-manager");
        mgr.busy.remove(&page);
        let next = mgr.queue.get_mut(&page).and_then(|q| q.pop_front());
        if let Some(req) = next {
            self.mgr_request(now, mobj, page, req, fx);
        }
    }

    // --- Internal pager --------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn ip_request(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        mobj: MemObjId,
        page: PageIdx,
        origin: NodeId,
        origin_obj: VmObjId,
        fx: &mut Fx,
    ) {
        if self.threads_free == 0 {
            // The copy-pager thread pool is exhausted: the request waits.
            // If the threads are all blocked on faults that transitively
            // need this node, this is the deadlock the paper describes.
            self.thread_queue
                .push_back((mobj, page, origin, origin_obj));
            self.stalled += 1;
            return;
        }
        self.threads_free -= 1;
        self.start_ip_fault(now, vm, mobj, page, origin, origin_obj, fx);
    }

    #[allow(clippy::too_many_arguments)]
    fn start_ip_fault(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        mobj: MemObjId,
        page: PageIdx,
        origin: NodeId,
        origin_obj: VmObjId,
        fx: &mut Fx,
    ) {
        let ip = self.internal.get_mut(&mobj).expect("no internal pager");
        let va = ip.base_va + page.0 as u64;
        match vm.fault(now, ip.task, va, Access::Read, &mut fx.vm) {
            FaultOutcome::Hit => {
                let data = vm.read_page(now, ip.task, va);
                fx.send(
                    origin,
                    XmmMsg::IpSupply {
                        mobj,
                        page,
                        data,
                        dst_obj: origin_obj,
                    },
                );
                self.threads_free += 1;
                self.run_thread_queue(now, vm, fx);
            }
            FaultOutcome::Pending(fid) => {
                ip.by_fault.insert(fid, (page, origin, origin_obj));
            }
        }
    }

    fn run_thread_queue(&mut self, now: Time, vm: &mut VmSystem, fx: &mut Fx) {
        while self.threads_free > 0 {
            let Some((mobj, page, origin, origin_obj)) = self.thread_queue.pop_front() else {
                return;
            };
            self.threads_free -= 1;
            self.start_ip_fault(now, vm, mobj, page, origin, origin_obj, fx);
        }
    }

    /// Ships any `DataReturn` effects produced by a nested VM call to the
    /// real pager (flush-with-clean path).
    fn ship_returns(
        o: &XmmObject,
        me: NodeId,
        vmfx: &mut machvm::Effects,
        pager: &mut Vec<XmmPagerSend>,
    ) {
        let XmmBacking::RealPager { node } = o.backing else {
            return;
        };
        let mut kept = Vec::new();
        for eff in vmfx.out.drain(..) {
            match eff {
                machvm::VmEffect::ToPager {
                    obj,
                    call: EmmiToPager::DataReturn { page, data, dirty },
                    ..
                } if obj == o.vm_obj => {
                    pager.push(XmmPagerSend {
                        pager_node: node,
                        reply_to: me,
                        mobj: o.mobj,
                        obj,
                        call: EmmiToPager::DataReturn { page, data, dirty },
                    });
                }
                other => kept.push(other),
            }
        }
        vmfx.out = kept;
    }
}
