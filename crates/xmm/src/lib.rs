//! `xmm` — the NMK13 eXtended Memory Manager, the paper's baseline.
//!
//! XMM extends Mach VM semantics across nodes with a **centralized
//! manager** per memory object (§2.3): one node holds all page state (one
//! byte per page per node), enforces single-writer/multiple-readers by
//! creating a coherent version at the pager before every grant, and
//! forwards every request through the pager. All communication rides on
//! NORMA-IPC, which the paper measures at ~90 % of remote fault latency.
//!
//! Delayed copies for remote task creation use **internal pagers**
//! (§2.3.3): a local fork-time snapshot plus a blocking thread per remote
//! fault — including the copy-chain thread-exhaustion deadlock the paper
//! calls out, which this implementation reproduces (bounded thread pool,
//! `stalled` diagnostics).
//!
//! The crate mirrors the sans-IO structure of the `asvm` crate so the two
//! managers are drop-in alternatives inside the `cluster` glue.

pub mod node;
pub mod protocol;

#[cfg(test)]
mod node_tests;

pub use node::{Fx, MgrState, XmmBacking, XmmNode, XmmObject, XmmPagerSend, XmmSend};
pub use protocol::{XLock, XmmMsg};
