//! Unit tests driving the XMM state machine directly: a miniature network
//! shuttles XMMI messages and pager traffic between `(XmmNode, VmSystem)`
//! pairs.

use machvm::{
    Access, Backing, EmmiToKernel, EmmiToPager, Inherit, MemObjId, PageData, PageIdx, SupplyMode,
    TaskId, VmSystem,
};
use svmsim::{CostModel, NodeId, Time};

use crate::node::{Fx, XmmBacking, XmmNode, XmmPagerSend};
use crate::protocol::XmmMsg;

const MOBJ: MemObjId = MemObjId(3);
const PAGES: u32 = 8;

struct MiniNet {
    nodes: Vec<(XmmNode, VmSystem)>,
    wire: Vec<(NodeId, XmmMsg)>,
    pager_wire: Vec<XmmPagerSend>,
    /// Pages the fake pager holds (written back to it).
    pager_store: std::collections::BTreeMap<PageIdx, PageData>,
    pager_writes: u32,
    now_ns: u64,
}

impl MiniNet {
    /// Builds `n` nodes; the manager is node 0; the pager is out-of-band.
    fn new(n: u16) -> MiniNet {
        let cost = CostModel::default();
        let mut nodes = Vec::new();
        for i in 0..n {
            let mut vm = VmSystem::new(8192, 1 << 20, cost.clone());
            let mut xmm = XmmNode::new(NodeId(i), cost.clone(), 4);
            let vo = vm.create_object(PAGES, Backing::External(MOBJ));
            xmm.register_object(
                MOBJ,
                vo,
                PAGES,
                NodeId(0),
                XmmBacking::RealPager { node: NodeId(99) },
            );
            nodes.push((xmm, vm));
        }
        MiniNet {
            nodes,
            wire: Vec::new(),
            pager_wire: Vec::new(),
            pager_store: Default::default(),
            pager_writes: 0,
            now_ns: 0,
        }
    }

    fn now(&mut self) -> Time {
        self.now_ns += 1000;
        Time::from_nanos(self.now_ns)
    }

    fn add_task(&mut self, n: u16) -> TaskId {
        let task = TaskId(200 + n as u32);
        let vo = self.nodes[n as usize].0.object(MOBJ).vm_obj;
        let vm = &mut self.nodes[n as usize].1;
        vm.create_task(task);
        vm.map_object(task, 0, PAGES, vo, 0, Access::Write, Inherit::Share);
        task
    }

    fn absorb(&mut self, from: NodeId, fx: Fx) {
        for xs in fx.net {
            self.wire.push((xs.dst, xs.msg));
        }
        self.pager_wire.extend(fx.pager);
        let mut vm_out: std::collections::VecDeque<machvm::VmEffect> = fx.vm.out.into();
        while let Some(eff) = vm_out.pop_front() {
            if let machvm::VmEffect::ToPager { obj, call, .. } = eff {
                let now = self.now();
                let (x, vm) = &mut self.nodes[from.index()];
                let mut fx2 = Fx::new();
                x.handle_emmi(now, vm, obj, call, &mut fx2);
                for xs in fx2.net {
                    self.wire.push((xs.dst, xs.msg));
                }
                self.pager_wire.extend(fx2.pager);
                vm_out.extend(fx2.vm.out);
            }
        }
    }

    fn settle(&mut self) {
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000, "mini net livelock");
            if let Some(p) = self.pager_wire.pop() {
                match p.call {
                    EmmiToPager::DataRequest { page, .. } => {
                        let data = self
                            .pager_store
                            .get(&page)
                            .cloned()
                            .unwrap_or(PageData::Zero);
                        let now = self.now();
                        let (x, vm) = &mut self.nodes[p.reply_to.index()];
                        let mut fx = Fx::new();
                        x.on_pager_reply(
                            now,
                            vm,
                            p.obj,
                            EmmiToKernel::DataSupply {
                                page,
                                data,
                                lock: Access::Write,
                                mode: SupplyMode::Normal,
                            },
                            &mut fx,
                        );
                        self.absorb(p.reply_to, fx);
                    }
                    EmmiToPager::DataReturn { page, data, .. } => {
                        self.pager_store.insert(page, data);
                        self.pager_writes += 1;
                    }
                    _ => {}
                }
                continue;
            }
            let Some((to, msg)) = self.wire.pop() else {
                return;
            };
            let now = self.now();
            let (x, vm) = &mut self.nodes[to.index()];
            let mut fx = Fx::new();
            x.handle_msg(now, vm, msg, &mut fx);
            self.absorb(to, fx);
        }
    }

    fn fault(&mut self, n: u16, task: TaskId, page: u32, access: Access) {
        let now = self.now();
        let (_, vm) = &mut self.nodes[n as usize];
        let mut vfx = machvm::Effects::new();
        vm.fault(now, task, page as u64, access, &mut vfx);
        let fx = Fx {
            vm: vfx,
            ..Fx::new()
        };
        self.absorb(NodeId(n), fx);
        self.settle();
    }
}

#[test]
fn fresh_write_goes_through_manager_and_pager() {
    let mut net = MiniNet::new(3);
    let t = net.add_task(1);
    net.fault(1, t, 0, Access::Write);
    assert!(net.nodes[1].1.can_access(t, 0, Access::Write));
    // The manager (node 0) recorded the grant in its state table.
    let bytes = net.nodes[0].0.manager_table_bytes();
    assert!(bytes >= PAGES as usize, "manager table materialized");
}

#[test]
fn dirty_page_flows_through_the_pager_to_the_reader() {
    let mut net = MiniNet::new(3);
    let tw = net.add_task(1);
    net.fault(1, tw, 2, Access::Write);
    let now = net.now();
    net.nodes[1]
        .1
        .write_page(now, tw, 2, PageData::Word(0xABCD));

    let tr = net.add_task(2);
    net.fault(2, tr, 2, Access::Read);
    // The coherent version went through the paging space...
    assert!(net.pager_writes >= 1, "dirty page must be returned first");
    assert_eq!(
        net.pager_store.get(&PageIdx(2)),
        Some(&PageData::Word(0xABCD))
    );
    // ...and the reader observed it.
    let now = net.now();
    assert_eq!(net.nodes[2].1.read_page(now, tr, 2), PageData::Word(0xABCD));
    // The writer lost its copy (flush, not downgrade, in NMK13).
    let vo = net.nodes[1].0.object(MOBJ).vm_obj;
    assert!(!net.nodes[1].1.object(vo).resident(PageIdx(2)));
}

#[test]
fn write_after_readers_flushes_them() {
    let mut net = MiniNet::new(4);
    let t1 = net.add_task(1);
    net.fault(1, t1, 0, Access::Write);
    let t2 = net.add_task(2);
    net.fault(2, t2, 0, Access::Read);
    let t3 = net.add_task(3);
    net.fault(3, t3, 0, Access::Write);
    // Node 2's read copy is gone; node 3 can write.
    let vo2 = net.nodes[2].0.object(MOBJ).vm_obj;
    assert!(!net.nodes[2].1.object(vo2).resident(PageIdx(0)));
    assert!(net.nodes[3].1.can_access(t3, 0, Access::Write));
}

#[test]
fn upgrade_uses_grant_without_contents() {
    let mut net = MiniNet::new(3);
    let t1 = net.add_task(1);
    net.fault(1, t1, 4, Access::Write);
    let t2 = net.add_task(2);
    net.fault(2, t2, 4, Access::Read);
    // Reset the counter; the upgrade itself must not move page contents.
    let writes_before = net.pager_writes;
    net.fault(2, t2, 4, Access::Write);
    assert!(net.nodes[2].1.can_access(t2, 4, Access::Write));
    assert_eq!(
        net.pager_writes, writes_before,
        "an upgrade of a clean copy must not touch the pager"
    );
}

#[test]
fn eviction_notifies_manager_and_returns_dirty_data() {
    let mut net = MiniNet::new(2);
    let t1 = net.add_task(1);
    net.fault(1, t1, 5, Access::Write);
    let now = net.now();
    net.nodes[1].1.write_page(now, t1, 5, PageData::Word(77));

    let vo = net.nodes[1].0.object(MOBJ).vm_obj;
    let now = net.now();
    let mut vfx = machvm::Effects::new();
    net.nodes[1].1.evict(now, vo, PageIdx(5), &mut vfx);
    let mut fx = Fx::new();
    for eff in vfx.out {
        if let machvm::VmEffect::EvictExternal {
            obj,
            page,
            data,
            dirty,
            ..
        } = eff
        {
            let now = net.now();
            let (x, vm) = &mut net.nodes[1];
            x.evict_external(now, vm, obj, page, data, dirty, &mut fx);
        }
    }
    net.absorb(NodeId(1), fx);
    net.settle();
    assert_eq!(net.pager_store.get(&PageIdx(5)), Some(&PageData::Word(77)));
    // A later fault re-fetches from the pager with the written contents.
    net.fault(1, t1, 5, Access::Read);
    let now = net.now();
    assert_eq!(net.nodes[1].1.read_page(now, t1, 5), PageData::Word(77));
}

#[test]
fn manager_serializes_conflicting_requests() {
    // Two writers race for the same fresh page; both must end up having
    // held it, with the table never showing two writers.
    let mut net = MiniNet::new(3);
    let t1 = net.add_task(1);
    let t2 = net.add_task(2);
    // Raise both faults before settling the network.
    for (n, t) in [(1u16, t1), (2u16, t2)] {
        let now = net.now();
        let (_, vm) = &mut net.nodes[n as usize];
        let mut vfx = machvm::Effects::new();
        vm.fault(now, t, 0, Access::Write, &mut vfx);
        let fx = Fx {
            vm: vfx,
            ..Fx::new()
        };
        net.absorb(NodeId(n), fx);
    }
    net.settle();
    // Exactly one of them holds write access at quiescence.
    let w1 = net.nodes[1].1.can_access(t1, 0, Access::Write);
    let w2 = net.nodes[2].1.can_access(t2, 0, Access::Write);
    assert!(w1 ^ w2, "exactly one writer may survive (w1={w1}, w2={w2})");
}

#[test]
fn state_table_bytes_grow_with_pages_times_nodes() {
    let mut net = MiniNet::new(3);
    for n in 0..3u16 {
        let t = net.add_task(n);
        net.fault(n, t, 0, Access::Read);
    }
    // Three nodes touched the object: three rows of PAGES bytes.
    assert_eq!(net.nodes[0].0.manager_table_bytes(), 3 * PAGES as usize);
}
