//! The XMMI protocol (NMK13 XMM), carried over NORMA-IPC.
//!
//! XMMI extends EMMI across nodes: every cross-node interaction is a
//! heavyweight typed NORMA-IPC message. The write-permission transfer the
//! paper criticizes takes five messages, two of them carrying page
//! contents: request → manager, manager → current writer (lock/clean),
//! writer → pager (data return with contents), manager → pager (forwarded
//! request), pager → requester (supply with contents).

use machvm::{Access, MemObjId, PageData, PageIdx, VmObjId};
use svmsim::NodeId;

/// Lock operations a manager may demand from a proxy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum XLock {
    /// Flush the page; return contents to the pager first if dirty.
    FlushReturn,
    /// Flush the page without returning contents (clean read copies).
    Flush,
}

/// One XMMI message.
#[derive(Clone, Debug)]
pub enum XmmMsg {
    /// Proxy asks the centralized manager for page access.
    Request {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Access wanted.
        access: Access,
        /// The faulting node.
        origin: NodeId,
        /// Its VM object (pager reply routing).
        origin_obj: VmObjId,
    },
    /// Manager instructs a holder to give up its copy.
    LockReq {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// What to do.
        op: XLock,
        /// The manager (ack destination).
        from: NodeId,
    },
    /// Holder acknowledges a [`XmmMsg::LockReq`] (after any data return to
    /// the pager has been sent).
    LockAck {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The acknowledging holder.
        from: NodeId,
    },
    /// Manager grants a write upgrade to a node that already holds a clean
    /// read copy (no pager round trip, no contents).
    GrantUp {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
    },
    /// Requester tells the manager the transaction finished (supply or
    /// upgrade arrived); the manager may start the next queued request.
    Complete {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The requester.
        from: NodeId,
    },
    /// A proxy evicted a page (the manager's state table must be updated;
    /// dirty contents went to the pager separately).
    Evicted {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The evicting node.
        from: NodeId,
    },
    /// Kernel-to-internal-pager page request for inherited memory (the
    /// copy-pager path of §2.3.3).
    IpRequest {
        /// The (internal-pager-backed) object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The faulting node.
        origin: NodeId,
        /// Its VM object (supply routing).
        origin_obj: VmObjId,
    },
    /// Internal pager supplies a page to a remote kernel.
    IpSupply {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Contents.
        data: PageData,
        /// Destination VM object.
        dst_obj: VmObjId,
    },
}

impl XmmMsg {
    /// Payload bytes beyond the NORMA envelope.
    pub fn payload_bytes(&self, page_size: u32) -> u32 {
        match self {
            XmmMsg::IpSupply { .. } => page_size,
            _ => 0,
        }
    }

    /// Statistics key counting sends of this message kind
    /// (`xmm.msg.<kind>`), bumped by the effect interpreter on every send.
    pub fn stat_key(&self) -> &'static str {
        match self {
            XmmMsg::Request { .. } => "xmm.msg.request",
            XmmMsg::LockReq { .. } => "xmm.msg.lock_req",
            XmmMsg::LockAck { .. } => "xmm.msg.lock_ack",
            XmmMsg::GrantUp { .. } => "xmm.msg.grant_up",
            XmmMsg::Complete { .. } => "xmm.msg.complete",
            XmmMsg::Evicted { .. } => "xmm.msg.evicted",
            XmmMsg::IpRequest { .. } => "xmm.msg.ip_request",
            XmmMsg::IpSupply { .. } => "xmm.msg.ip_supply",
        }
    }

    /// The page this message concerns (every XMMI message is page-level).
    pub fn page(&self) -> Option<PageIdx> {
        match self {
            XmmMsg::Request { page, .. }
            | XmmMsg::LockReq { page, .. }
            | XmmMsg::LockAck { page, .. }
            | XmmMsg::GrantUp { page, .. }
            | XmmMsg::Complete { page, .. }
            | XmmMsg::Evicted { page, .. }
            | XmmMsg::IpRequest { page, .. }
            | XmmMsg::IpSupply { page, .. } => Some(*page),
        }
    }

    /// The memory object this message concerns.
    pub fn mobj(&self) -> MemObjId {
        match self {
            XmmMsg::Request { mobj, .. }
            | XmmMsg::LockReq { mobj, .. }
            | XmmMsg::LockAck { mobj, .. }
            | XmmMsg::GrantUp { mobj, .. }
            | XmmMsg::Complete { mobj, .. }
            | XmmMsg::Evicted { mobj, .. }
            | XmmMsg::IpRequest { mobj, .. }
            | XmmMsg::IpSupply { mobj, .. } => *mobj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_supplies_carry_pages() {
        let m = XmmMsg::Request {
            mobj: MemObjId(1),
            page: PageIdx(0),
            access: Access::Read,
            origin: NodeId(0),
            origin_obj: VmObjId(1),
        };
        assert_eq!(m.payload_bytes(8192), 0);
        let s = XmmMsg::IpSupply {
            mobj: MemObjId(1),
            page: PageIdx(0),
            data: PageData::Zero,
            dst_obj: VmObjId(2),
        };
        assert_eq!(s.payload_bytes(8192), 8192);
    }
}
