//! `machvm` — a faithful miniature of the Mach kernel's virtual memory
//! system, as described in §2.2 of the ASVM paper.
//!
//! It provides, per node:
//!
//! * **memory objects / VM objects** — user-managed entities cached by the
//!   kernel, with physical memory acting as a cache for their contents;
//! * **address maps** — tasks map objects at page-aligned ranges with
//!   protection and inheritance attributes;
//! * **delayed copy semantics** — both the *symmetric* strategy (shadow
//!   object on first write; source freezes) and the *asymmetric* strategy
//!   (copy objects linked by copy/shadow links, push and pull operations),
//!   exactly as FIGURE 2 / FIGURE 3 of the paper sketch them;
//! * **EMMI** — the External Memory Management Interface between kernel and
//!   pager tasks, including the five ASVM extensions of §3.7.1
//!   (`lock_request` mode, `lock_completed` result, `data_supply` mode,
//!   `pull_request`, `pull_completed`);
//! * **pageout** — clock-based victim selection and eviction, with
//!   anonymous pages going to the default pager and externally managed
//!   pages handed to their manager (where ASVM's internode paging takes
//!   over).
//!
//! Everything is a sans-IO state machine emitting [`system::VmEffect`]s, so
//! the same code is unit-testable in isolation and drives the full
//! cluster simulation.

// State-machine entry points naturally thread (object, node, cost, time,
// vm, ...) through; splitting them into context structs would obscure the
// protocol flow the paper describes.
#![allow(clippy::too_many_arguments)]

pub mod emmi;
pub mod ids;
pub mod map;
pub mod object;
pub mod pagedata;
pub mod system;

#[cfg(test)]
mod chain_tests;
#[cfg(test)]
mod system_tests;

pub use emmi::{EmmiToKernel, EmmiToPager, LockMode, LockOp, LockResult, PullResult, SupplyMode};
pub use ids::{Access, FaultId, Inherit, MemObjId, PageIdx, TaskId, VmObjId};
pub use map::{AddressMap, MapEntry};
pub use object::{Backing, CopyStrategy, ResidentPage, VmObject};
pub use pagedata::PageData;
pub use system::{Effects, EvictDisposition, FaultOutcome, VmEffect, VmSystem};
