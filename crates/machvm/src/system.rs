//! The per-node VM system: fault handling, EMMI kernel calls, delayed
//! copies and pageout.
//!
//! This is a sans-IO state machine. Public methods consume kernel entry
//! points (page faults from tasks, EMMI calls from managers, pageout ticks)
//! and emit [`VmEffect`]s plus accumulated CPU cost into an [`Effects`]
//! sink; the `cluster` crate binds those effects to the event loop and to
//! whichever memory manager (local pager, XMM, ASVM) owns each object.
//!
//! Faults are fully asynchronous: a fault that cannot complete locally
//! registers a waiter on the `(object, page)` it is stalled on and returns;
//! a later `data_supply`/`lock_request(grant)` re-runs resolution. Nothing
//! ever blocks a thread, mirroring the paper's "asynchronous state
//! transitions" design rule.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use svmsim::{CostModel, Dur, Time};

use crate::emmi::{
    EmmiToKernel, EmmiToPager, LockMode, LockOp, LockResult, PullResult, SupplyMode,
};
use crate::ids::{Access, FaultId, Inherit, MemObjId, PageIdx, TaskId, VmObjId};
use crate::map::{AddressMap, MapEntry};
use crate::object::{Backing, CopyStrategy, ResidentPage, VmObject};
use crate::pagedata::PageData;

/// Side effects emitted by the VM state machine.
#[derive(Debug)]
pub enum VmEffect {
    /// An EMMI call to the manager/pager of `obj` (routing decided by the
    /// glue from `backing`).
    ToPager {
        /// Originating VM object.
        obj: VmObjId,
        /// Its backing at emission time (routing key).
        backing: Backing,
        /// The call.
        call: EmmiToPager,
    },
    /// A pending fault completed; the task may resume.
    FaultDone {
        /// Faulting task.
        task: TaskId,
        /// Fault instance.
        fault: FaultId,
        /// When the fault started (for latency stats).
        started: Time,
    },
    /// A delayed (asymmetric) copy object was created locally; managers of
    /// the source may need to know (ASVM version counters / read-only
    /// broadcast).
    CopyCreated {
        /// The source object.
        source: VmObjId,
        /// The new copy object.
        copy: VmObjId,
    },
    /// An externally managed page was evicted from the cache; the manager
    /// decides its fate (ASVM's four-step internode paging, §3.6).
    EvictExternal {
        /// The VM object.
        obj: VmObjId,
        /// Its memory object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Contents handed off to the manager.
        data: PageData,
        /// Whether the contents were modified since supply.
        dirty: bool,
    },
}

/// Effect sink: emitted effects plus CPU time to charge.
#[derive(Debug, Default)]
pub struct Effects {
    /// CPU to charge for the processing that generated these effects.
    pub cpu: Dur,
    /// Ordered effects.
    pub out: Vec<VmEffect>,
}

impl Effects {
    /// Creates an empty sink.
    pub fn new() -> Effects {
        Effects::default()
    }

    /// Adds CPU cost.
    pub fn charge(&mut self, d: Dur) {
        self.cpu += d;
    }

    fn pager(&mut self, obj: VmObjId, backing: Backing, call: EmmiToPager) {
        self.out.push(VmEffect::ToPager { obj, backing, call });
    }
}

/// Result of a fault entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultOutcome {
    /// Resolved immediately (cache hit, local zero-fill or copy-up).
    Hit,
    /// Suspended; a [`VmEffect::FaultDone`] with this id will follow.
    Pending(FaultId),
}

/// What happened to an evicted page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvictDisposition {
    /// Dropped silently (reconstructible or clean).
    Dropped,
    /// Written to the default pager (anonymous memory).
    ToDefaultPager,
    /// Handed to the external manager via [`VmEffect::EvictExternal`].
    Handed,
}

#[derive(Clone, Copy, Debug)]
enum Resolve {
    Done,
    Wait(VmObjId, PageIdx),
}

#[derive(Clone, Copy, Debug)]
enum Waiter {
    Fault(FaultId),
    Pull { origin: VmObjId, page: PageIdx },
}

#[derive(Clone, Copy, Debug)]
struct PendingFault {
    task: TaskId,
    va_page: u64,
    access: Access,
    started: Time,
}

/// The VM system of one node.
pub struct VmSystem {
    page_size: u32,
    capacity_pages: u32,
    cost: CostModel,
    next_obj: u32,
    next_fault: u64,
    objects: BTreeMap<VmObjId, VmObject>,
    maps: BTreeMap<TaskId, AddressMap>,
    resident_total: u32,
    faults: BTreeMap<FaultId, PendingFault>,
    waiters: BTreeMap<(VmObjId, PageIdx), Vec<Waiter>>,
    outstanding: BTreeMap<(VmObjId, PageIdx), Access>,
    clock: VecDeque<(VmObjId, PageIdx)>,
}

impl VmSystem {
    /// Creates a VM system with a physical cache of `capacity_pages`.
    pub fn new(page_size: u32, capacity_pages: u32, cost: CostModel) -> VmSystem {
        VmSystem {
            page_size,
            capacity_pages,
            cost,
            next_obj: 1,
            next_fault: 1,
            objects: BTreeMap::new(),
            maps: BTreeMap::new(),
            resident_total: 0,
            faults: BTreeMap::new(),
            waiters: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            clock: VecDeque::new(),
        }
    }

    /// The VM page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Pages currently resident.
    pub fn resident_total(&self) -> u32 {
        self.resident_total
    }

    /// Physical page capacity.
    pub fn capacity_pages(&self) -> u32 {
        self.capacity_pages
    }

    /// Number of pages above capacity (pageout pressure).
    pub fn over_capacity(&self) -> u32 {
        self.resident_total.saturating_sub(self.capacity_pages)
    }

    // --- Objects and maps ---------------------------------------------------

    /// Creates a VM object.
    pub fn create_object(&mut self, size_pages: u32, backing: Backing) -> VmObjId {
        let id = VmObjId(self.next_obj);
        self.next_obj += 1;
        self.objects
            .insert(id, VmObject::new(id, size_pages, backing));
        id
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if the object does not exist.
    pub fn object(&self, id: VmObjId) -> &VmObject {
        self.objects.get(&id).expect("no such VM object")
    }

    /// Mutable access to an object.
    pub fn object_mut(&mut self, id: VmObjId) -> &mut VmObject {
        self.objects.get_mut(&id).expect("no such VM object")
    }

    /// Associates an anonymous object with an external memory object,
    /// turning it into a managed one (used when a local copy object becomes
    /// shared across nodes).
    pub fn associate(&mut self, obj: VmObjId, mobj: MemObjId) {
        let o = self.object_mut(obj);
        assert!(
            matches!(o.backing, Backing::Anonymous),
            "object already associated"
        );
        o.backing = Backing::External(mobj);
    }

    /// Registers an (empty) address space for `task`.
    pub fn create_task(&mut self, task: TaskId) {
        let prev = self.maps.insert(task, AddressMap::new());
        assert!(prev.is_none(), "task already exists");
    }

    /// True if `task` has an address space on this node.
    pub fn has_task(&self, task: TaskId) -> bool {
        self.maps.contains_key(&task)
    }

    /// Maps `pages` pages of `obj` starting at `offset` into `task`'s
    /// address space at `va_page`.
    pub fn map_object(
        &mut self,
        task: TaskId,
        va_page: u64,
        pages: u32,
        obj: VmObjId,
        offset: u32,
        prot: Access,
        inherit: Inherit,
    ) {
        self.object_mut(obj).refs += 1;
        self.maps
            .get_mut(&task)
            .expect("no such task")
            .insert(MapEntry {
                va_page,
                pages,
                object: obj,
                offset,
                prot,
                inherit,
                needs_copy: false,
            });
    }

    /// The address map of `task`.
    pub fn address_map(&self, task: TaskId) -> &AddressMap {
        self.maps.get(&task).expect("no such task")
    }

    /// Removes the mapping covering `va_page` from `task`'s address space,
    /// dropping one reference on its VM object (and garbage-collecting the
    /// object chain when the last reference disappears).
    ///
    /// # Panics
    ///
    /// Panics if nothing is mapped at `va_page` or the task has a fault in
    /// flight under the mapping (tear-down during a fault is a caller bug).
    pub fn unmap(&mut self, task: TaskId, va_page: u64) {
        let entry = self
            .maps
            .get_mut(&task)
            .expect("no such task")
            .remove(va_page)
            .expect("unmap of unmapped range");
        assert!(
            !self.faults.values().any(|f| f.task == task
                && f.va_page >= entry.va_page
                && f.va_page < entry.va_page + entry.pages as u64),
            "unmap with a fault in flight"
        );
        self.deallocate_ref(entry.object);
    }

    /// Destroys `task`: unmaps everything and removes its address space.
    ///
    /// # Panics
    ///
    /// Panics if the task still has faults in flight.
    pub fn destroy_task(&mut self, task: TaskId) {
        assert!(
            !self.faults.values().any(|f| f.task == task),
            "destroying a task with faults in flight"
        );
        let map = self.maps.remove(&task).expect("no such task");
        for e in map.entries() {
            self.deallocate_ref(e.object);
        }
    }

    /// Drops one reference from `obj`; destroys it (releasing resident
    /// pages and its shadow-chain references) when the count reaches zero.
    fn deallocate_ref(&mut self, obj: VmObjId) {
        let o = self.object_mut(obj);
        assert!(o.refs > 0, "reference underflow on {obj:?}");
        o.refs -= 1;
        if o.refs > 0 {
            return;
        }
        // Last reference: release the cache and follow the shadow link.
        // (A live copy link means a copy object still shadows us, which
        // keeps refs > 0 — so reaching zero implies no live copies.)
        let shadow = o.shadow.take();
        let resident = o.pages.len() as u32;
        o.pages.clear();
        o.paged_out.clear();
        self.resident_total -= resident;
        self.objects.remove(&obj);
        if let Some(s) = shadow {
            self.deallocate_ref(s);
        }
    }

    /// Contents and dirty flag of a resident page, if present (managers
    /// like ASVM are kernel-resident and may inspect the cache directly).
    pub fn peek_page(&self, obj: VmObjId, page: PageIdx) -> Option<(&PageData, bool)> {
        self.objects
            .get(&obj)?
            .pages
            .get(&page)
            .map(|rp| (&rp.data, rp.dirty))
    }

    /// Pins (`busy = true`) or unpins a resident page against eviction
    /// while a manager protocol operation is in flight. A no-op if the
    /// page is not resident.
    pub fn set_busy(&mut self, obj: VmObjId, page: PageIdx, busy: bool) {
        if let Some(o) = self.objects.get_mut(&obj) {
            if let Some(rp) = o.pages.get_mut(&page) {
                rp.busy = busy;
            }
        }
    }

    // --- Data access (driver fast path) ----------------------------------------

    /// True if `task` can access `va_page` with `access` right now (no
    /// fault needed). Does not mutate.
    pub fn can_access(&self, task: TaskId, va_page: u64, access: Access) -> bool {
        let Some(entry) = self.maps.get(&task).and_then(|m| m.lookup(va_page)) else {
            return false;
        };
        if access == Access::Write && entry.needs_copy {
            return false;
        }
        let page = entry.object_page(va_page);
        let mut oid = entry.object;
        let mut depth = 0u32;
        loop {
            let o = self.object(oid);
            if let Some(rp) = o.pages.get(&page) {
                return match access {
                    Access::Read => true,
                    // Writes must hit the top object with write protection.
                    Access::Write => depth == 0 && rp.prot == Access::Write,
                };
            }
            if o.paged_out.contains(&page) {
                return false;
            }
            match (o.backing, o.shadow) {
                (Backing::External(_), _) => return false,
                (Backing::Anonymous, Some(s)) => {
                    oid = s;
                    depth += 1;
                }
                (Backing::Anonymous, None) => return false,
            }
        }
    }

    /// Combined [`VmSystem::can_access`] + [`VmSystem::read_page`]: one
    /// translation walk instead of two. Returns the page contents when the
    /// read can proceed without faulting (updating the page's use stamp
    /// exactly as `read_page` would), `None` when the caller must fault.
    /// The `None` cases are precisely those where `can_access(.., Read)`
    /// is false, so `try_read_page(..).is_some() == can_access(.., Read)`.
    pub fn try_read_page(&mut self, now: Time, task: TaskId, va_page: u64) -> Option<PageData> {
        let entry = self.maps.get(&task).and_then(|m| m.lookup(va_page))?;
        let page = entry.object_page(va_page);
        let mut oid = entry.object;
        loop {
            let o = self.objects.get_mut(&oid).expect("no such VM object");
            if let Some(rp) = o.pages.get_mut(&page) {
                rp.last_use = now;
                return Some(rp.data.clone());
            }
            if o.paged_out.contains(&page) {
                return None;
            }
            match (o.backing, o.shadow) {
                (Backing::External(_), _) => return None,
                (Backing::Anonymous, Some(s)) => oid = s,
                (Backing::Anonymous, None) => return None,
            }
        }
    }

    /// Combined [`VmSystem::can_access`] + [`VmSystem::write_page`]: one
    /// translation walk. Writes `data` and returns `true` when the write
    /// can proceed without faulting; returns `false` (writing nothing)
    /// exactly when `can_access(.., Write)` is false and the caller must
    /// fault first.
    pub fn try_write_page(
        &mut self,
        now: Time,
        task: TaskId,
        va_page: u64,
        data: PageData,
    ) -> bool {
        let Some(entry) = self.maps.get(&task).and_then(|m| m.lookup(va_page)) else {
            return false;
        };
        if entry.needs_copy {
            return false;
        }
        let page = entry.object_page(va_page);
        let obj = entry.object;
        // Writes must hit the top object with write protection; a page
        // resident only deeper in the chain still faults.
        let Some(rp) = self
            .objects
            .get_mut(&obj)
            .expect("no such VM object")
            .pages
            .get_mut(&page)
        else {
            return false;
        };
        if rp.prot != Access::Write {
            return false;
        }
        rp.data = data;
        rp.dirty = true;
        rp.last_use = now;
        true
    }

    /// The stamp of the page currently serving `va_page` for `task`, or
    /// `None` if no resident page serves it (no mutation; for tests and
    /// verification harnesses).
    pub fn peek_task_page(&self, task: TaskId, va_page: u64) -> Option<u64> {
        let entry = self.maps.get(&task)?.lookup(va_page)?;
        let page = entry.object_page(va_page);
        let mut oid = entry.object;
        loop {
            let o = self.objects.get(&oid)?;
            if let Some(rp) = o.pages.get(&page) {
                return Some(rp.data.word());
            }
            oid = o.shadow?;
        }
    }

    /// Reads the page serving `va_page` for `task`.
    ///
    /// # Panics
    ///
    /// Panics if the access would fault — callers must fault first.
    pub fn read_page(&mut self, now: Time, task: TaskId, va_page: u64) -> PageData {
        let entry = self
            .maps
            .get(&task)
            .and_then(|m| m.lookup(va_page))
            .expect("read of unmapped page");
        let page = entry.object_page(va_page);
        let mut oid = entry.object;
        loop {
            if let Some(rp) = self.objects.get_mut(&oid).unwrap().pages.get_mut(&page) {
                rp.last_use = now;
                return rp.data.clone();
            }
            oid = self
                .object(oid)
                .shadow
                .expect("read_page: page not resident anywhere in chain");
        }
    }

    /// Overwrites the page at `va_page` with `data`.
    ///
    /// # Panics
    ///
    /// Panics if the task lacks a resident, writable page — callers must
    /// fault for write first.
    pub fn write_page(&mut self, now: Time, task: TaskId, va_page: u64, data: PageData) {
        let entry = self
            .maps
            .get(&task)
            .and_then(|m| m.lookup(va_page))
            .expect("write to unmapped page");
        assert!(!entry.needs_copy, "write_page before copy-on-write fault");
        let page = entry.object_page(va_page);
        let obj = entry.object;
        let rp = self
            .objects
            .get_mut(&obj)
            .unwrap()
            .pages
            .get_mut(&page)
            .expect("write_page: page not resident");
        assert_eq!(rp.prot, Access::Write, "write_page without write grant");
        rp.data = data;
        rp.dirty = true;
        rp.last_use = now;
    }

    // --- Fault entry ------------------------------------------------------------

    /// Handles a page fault of `task` at `va_page` for `access`.
    pub fn fault(
        &mut self,
        now: Time,
        task: TaskId,
        va_page: u64,
        access: Access,
        fx: &mut Effects,
    ) -> FaultOutcome {
        fx.charge(self.cost.vm_fault_entry);
        match self.try_resolve(now, task, va_page, access, fx) {
            Resolve::Done => {
                fx.charge(self.cost.vm_fault_finish);
                FaultOutcome::Hit
            }
            Resolve::Wait(obj, page) => {
                let id = FaultId(self.next_fault);
                self.next_fault += 1;
                self.faults.insert(
                    id,
                    PendingFault {
                        task,
                        va_page,
                        access,
                        started: now,
                    },
                );
                self.waiters
                    .entry((obj, page))
                    .or_default()
                    .push(Waiter::Fault(id));
                FaultOutcome::Pending(id)
            }
        }
    }

    /// Number of faults currently suspended (diagnostics).
    pub fn pending_faults(&self) -> usize {
        self.faults.len()
    }

    fn try_resolve(
        &mut self,
        now: Time,
        task: TaskId,
        va_page: u64,
        access: Access,
        fx: &mut Effects,
    ) -> Resolve {
        // Symmetric copy-on-write: the first write through a needs-copy
        // entry gets a fresh shadow object (paper FIGURE 2).
        let entry = self
            .maps
            .get(&task)
            .and_then(|m| m.lookup(va_page))
            .unwrap_or_else(|| panic!("fault outside mappings: {task:?} va {va_page}"));
        let (mut top, page) = (entry.object, entry.object_page(va_page));
        if access == Access::Write && entry.needs_copy {
            let shadow = self.create_object(self.object(top).size_pages, Backing::Anonymous);
            // The map entry moves from `top` to the shadow: `top` loses a
            // map reference but gains the shadow link (net zero); the
            // shadow object starts with the map reference.
            self.object_mut(shadow).shadow = Some(top);
            self.object_mut(shadow).refs += 1;
            let e = self
                .maps
                .get_mut(&task)
                .unwrap()
                .lookup_mut(va_page)
                .unwrap();
            e.object = shadow;
            e.needs_copy = false;
            fx.charge(self.cost.vm_object_op);
            top = shadow;
        }

        let mut oid = top;
        let mut depth = 0u32;
        loop {
            let obj = self.object(oid);
            assert!(
                page.0 < obj.size_pages,
                "fault beyond object size: {page:?} in {oid:?}"
            );
            if obj.resident(page) {
                return self.resolve_at(now, top, oid, page, depth, access, fx);
            }
            if obj.paged_out.contains(&page) {
                // The default pager holds this anonymous page.
                self.request(oid, page, Access::Write, fx);
                return Resolve::Wait(oid, page);
            }
            match (obj.backing, obj.shadow) {
                (Backing::External(_), _) => {
                    // Stop the local walk at the first externally managed
                    // object lacking the page (paper §3.7.3). Below the top
                    // object we only ever need read access: a write fault
                    // copies the page up into the top object afterwards.
                    let want = if depth == 0 { access } else { Access::Read };
                    self.request(oid, page, want, fx);
                    return Resolve::Wait(oid, page);
                }
                (Backing::Anonymous, Some(s)) => {
                    fx.charge(self.cost.vm_object_op);
                    oid = s;
                    depth += 1;
                }
                (Backing::Anonymous, None) => {
                    // End of chain: zero-fill into the top object.
                    fx.charge(self.cost.vm_zero_fill);
                    self.insert_page(
                        top,
                        page,
                        ResidentPage {
                            data: PageData::Zero,
                            prot: Access::Write,
                            dirty: access == Access::Write,
                            busy: false,
                            last_use: now,
                        },
                    );
                    return Resolve::Done;
                }
            }
        }
    }

    /// Completes resolution once the page was found resident in `oid` at
    /// `depth` below `top`.
    fn resolve_at(
        &mut self,
        now: Time,
        top: VmObjId,
        oid: VmObjId,
        page: PageIdx,
        depth: u32,
        access: Access,
        fx: &mut Effects,
    ) -> Resolve {
        if depth == 0 {
            let rp = self
                .objects
                .get_mut(&oid)
                .unwrap()
                .pages
                .get_mut(&page)
                .unwrap();
            rp.last_use = now;
            if access == Access::Read || rp.prot == Access::Write {
                if access == Access::Write {
                    rp.dirty = true;
                }
                return Resolve::Done;
            }
            // Write upgrade on a read-only page. Push down the local copy
            // chain first if a copy object lacks the page.
            self.local_push(now, oid, page, fx);
            let obj = self.object(oid);
            match obj.backing {
                Backing::Anonymous => {
                    let rp = self
                        .objects
                        .get_mut(&oid)
                        .unwrap()
                        .pages
                        .get_mut(&page)
                        .unwrap();
                    rp.prot = Access::Write;
                    rp.dirty = true;
                    Resolve::Done
                }
                Backing::External(_) => {
                    // The manager must grant the upgrade.
                    self.unlock(oid, page, fx);
                    Resolve::Wait(oid, page)
                }
            }
        } else {
            // Page found in an ancestor.
            if access == Access::Read {
                // Enter the source object's page directly (paper §2.2: read
                // faults are satisfied from the source object; no copy).
                let rp = self
                    .objects
                    .get_mut(&oid)
                    .unwrap()
                    .pages
                    .get_mut(&page)
                    .unwrap();
                rp.last_use = now;
                return Resolve::Done;
            }
            // Write: copy the page up into the top object (copy-on-write).
            match self.object(top).backing {
                Backing::Anonymous => {
                    let data = self.object(oid).pages.get(&page).unwrap().data.clone();
                    fx.charge(self.cost.vm_page_copy);
                    self.insert_page(
                        top,
                        page,
                        ResidentPage {
                            data,
                            prot: Access::Write,
                            dirty: true,
                            busy: false,
                            last_use: now,
                        },
                    );
                    Resolve::Done
                }
                Backing::External(_) => {
                    // A shared (distributed) copy object: write permission
                    // comes from its manager, which coordinates the push
                    // scan across nodes.
                    self.request(top, page, Access::Write, fx);
                    Resolve::Wait(top, page)
                }
            }
        }
    }

    /// Pushes `page` of `oid` into its copy object if that copy lacks it
    /// (the VM-internal part of a delayed-copy push).
    ///
    /// Pages pushed into an externally managed copy object are inserted
    /// read-only: writes must fault into its manager, which coordinates
    /// the copy object's *own* distributed push machinery. Pushes into
    /// purely local copy objects grant write directly.
    fn local_push(&mut self, now: Time, oid: VmObjId, page: PageIdx, fx: &mut Effects) -> bool {
        let Some(copy) = self.object(oid).copy else {
            return false;
        };
        if self.object(copy).resident(page) || self.object(copy).paged_out.contains(&page) {
            return false;
        }
        let data = self.object(oid).pages.get(&page).unwrap().data.clone();
        let prot = match self.object(copy).backing {
            Backing::Anonymous => Access::Write,
            Backing::External(_) => Access::Read,
        };
        fx.charge(self.cost.vm_page_copy);
        self.insert_page(
            copy,
            page,
            ResidentPage {
                data,
                prot,
                dirty: true,
                busy: false,
                last_use: now,
            },
        );
        true
    }

    /// Emits a `data_request` unless an equal-or-stronger one is already
    /// outstanding for `(obj, page)`.
    fn request(&mut self, obj: VmObjId, page: PageIdx, access: Access, fx: &mut Effects) {
        if let Some(prev) = self.outstanding.get(&(obj, page)) {
            if prev.allows(access) {
                return;
            }
        }
        self.outstanding.insert((obj, page), access);
        let backing = self.object(obj).backing;
        fx.charge(self.cost.vm_object_op);
        fx.pager(obj, backing, EmmiToPager::DataRequest { page, access });
    }

    /// Emits a `data_unlock` (write upgrade) unless already outstanding.
    fn unlock(&mut self, obj: VmObjId, page: PageIdx, fx: &mut Effects) {
        if let Some(prev) = self.outstanding.get(&(obj, page)) {
            if prev.allows(Access::Write) {
                return;
            }
        }
        self.outstanding.insert((obj, page), Access::Write);
        let backing = self.object(obj).backing;
        fx.charge(self.cost.vm_object_op);
        fx.pager(
            obj,
            backing,
            EmmiToPager::DataUnlock {
                page,
                access: Access::Write,
            },
        );
    }

    // --- EMMI ingress (manager → kernel) -------------------------------------------

    /// Handles an EMMI call from the manager/pager of `obj`.
    pub fn kernel_call(&mut self, now: Time, obj: VmObjId, call: EmmiToKernel, fx: &mut Effects) {
        match call {
            EmmiToKernel::DataSupply {
                page,
                data,
                lock,
                mode,
            } => self.data_supply(now, obj, page, data, lock, mode, fx),
            EmmiToKernel::LockRequest { page, op, mode } => {
                self.lock_request(now, obj, page, op, mode, fx)
            }
            EmmiToKernel::PullRequest { page } => self.pull_request(now, obj, page, fx),
            EmmiToKernel::DataError { page } => {
                panic!("pager reported data error for {obj:?} {page:?}")
            }
        }
    }

    fn data_supply(
        &mut self,
        now: Time,
        obj: VmObjId,
        page: PageIdx,
        data: PageData,
        lock: Access,
        mode: SupplyMode,
        fx: &mut Effects,
    ) {
        fx.charge(self.cost.vm_object_op);
        let target = match mode {
            SupplyMode::Normal => obj,
            SupplyMode::PushCopyChain => self
                .object(obj)
                .copy
                .expect("push supply on object without copy"),
        };
        // Pushed pages land read-only in externally managed copy objects
        // (see `local_push`).
        let lock = if mode == SupplyMode::PushCopyChain
            && matches!(self.object(target).backing, Backing::External(_))
        {
            Access::Read
        } else {
            lock
        };
        let dirty = mode == SupplyMode::PushCopyChain;
        if mode == SupplyMode::PushCopyChain && self.object(target).resident(page) {
            // The copy already has its own version; the push is stale.
        } else {
            let o = self.objects.get_mut(&target).unwrap();
            o.paged_out.remove(&page);
            match o.pages.get_mut(&page) {
                Some(rp) => {
                    // Re-supply of a resident page (e.g. a write grant that
                    // arrives as a fresh supply): upgrade in place.
                    rp.prot = rp.prot.max(lock);
                    rp.data = data;
                    rp.last_use = now;
                }
                None => self.insert_page(
                    target,
                    page,
                    ResidentPage {
                        data,
                        prot: lock,
                        dirty,
                        busy: false,
                        last_use: now,
                    },
                ),
            }
        }
        if mode == SupplyMode::Normal {
            self.outstanding.remove(&(obj, page));
        }
        self.wake(now, target, page, fx);
        if target != obj {
            self.wake(now, obj, page, fx);
        }
    }

    fn lock_request(
        &mut self,
        now: Time,
        obj: VmObjId,
        page: PageIdx,
        op: LockOp,
        mode: LockMode,
        fx: &mut Effects,
    ) {
        fx.charge(self.cost.vm_object_op);
        let backing = self.object(obj).backing;
        if mode == LockMode::PushFirst && !self.object(obj).resident(page) {
            // ASVM extension: report that the push could not run.
            fx.pager(
                obj,
                backing,
                EmmiToPager::LockCompleted {
                    page,
                    result: LockResult::PageAbsent,
                },
            );
            return;
        }
        if mode == LockMode::PushFirst {
            self.local_push(now, obj, page, fx);
        }
        if self.object(obj).resident(page) {
            match op {
                LockOp::Flush { return_dirty } => {
                    let rp = self.remove_page(obj, page);
                    if rp.dirty && return_dirty {
                        fx.charge(self.cost.vm_pmap_op);
                        fx.pager(
                            obj,
                            backing,
                            EmmiToPager::DataReturn {
                                page,
                                data: rp.data,
                                dirty: true,
                            },
                        );
                    } else {
                        fx.charge(self.cost.vm_pmap_op);
                    }
                }
                LockOp::Downgrade { return_dirty } => {
                    let rp = self
                        .objects
                        .get_mut(&obj)
                        .unwrap()
                        .pages
                        .get_mut(&page)
                        .unwrap();
                    rp.prot = Access::Read;
                    fx.charge(self.cost.vm_pmap_op);
                    if rp.dirty && return_dirty {
                        let data = rp.data.clone();
                        rp.dirty = false;
                        fx.pager(
                            obj,
                            backing,
                            EmmiToPager::DataReturn {
                                page,
                                data,
                                dirty: true,
                            },
                        );
                    }
                }
                LockOp::Grant(a) => {
                    let rp = self
                        .objects
                        .get_mut(&obj)
                        .unwrap()
                        .pages
                        .get_mut(&page)
                        .unwrap();
                    rp.prot = rp.prot.max(a);
                    rp.last_use = now;
                    self.outstanding.remove(&(obj, page));
                    self.wake(now, obj, page, fx);
                }
            }
        } else if let LockOp::Grant(_) = op {
            // Grant for a page that is no longer resident: the fault will
            // re-request; nothing to do.
            self.outstanding.remove(&(obj, page));
            self.wake(now, obj, page, fx);
        }
        fx.pager(
            obj,
            backing,
            EmmiToPager::LockCompleted {
                page,
                result: LockResult::Done,
            },
        );
    }

    fn pull_request(&mut self, now: Time, obj: VmObjId, page: PageIdx, fx: &mut Effects) {
        fx.charge(self.cost.vm_object_op);
        let backing = self.object(obj).backing;
        let mut oid = obj;
        let mut depth = 0u32;
        loop {
            let o = self.object(oid);
            if o.resident(page) {
                let rp = self
                    .objects
                    .get_mut(&oid)
                    .unwrap()
                    .pages
                    .get_mut(&page)
                    .unwrap();
                rp.last_use = now;
                let data = rp.data.clone();
                fx.pager(
                    obj,
                    backing,
                    EmmiToPager::PullCompleted {
                        page,
                        result: PullResult::Data(data),
                    },
                );
                return;
            }
            if o.paged_out.contains(&page) {
                // Fetch from the default pager, then re-run the pull.
                self.waiters
                    .entry((oid, page))
                    .or_default()
                    .push(Waiter::Pull { origin: obj, page });
                self.request(oid, page, Access::Write, fx);
                return;
            }
            if depth > 0 {
                if let Backing::External(_) = o.backing {
                    // Case 3: ask the shadow object's memory manager.
                    fx.pager(
                        obj,
                        backing,
                        EmmiToPager::PullCompleted {
                            page,
                            result: PullResult::AskShadow(oid),
                        },
                    );
                    return;
                }
            }
            match o.shadow {
                Some(s) => {
                    fx.charge(self.cost.vm_object_op);
                    oid = s;
                    depth += 1;
                }
                None => {
                    fx.pager(
                        obj,
                        backing,
                        EmmiToPager::PullCompleted {
                            page,
                            result: PullResult::Zero,
                        },
                    );
                    return;
                }
            }
        }
    }

    /// Re-runs everything stalled on `(obj, page)`.
    fn wake(&mut self, now: Time, obj: VmObjId, page: PageIdx, fx: &mut Effects) {
        let Some(list) = self.waiters.remove(&(obj, page)) else {
            return;
        };
        for w in list {
            match w {
                Waiter::Fault(fid) => {
                    let Some(pf) = self.faults.get(&fid).copied() else {
                        continue;
                    };
                    match self.try_resolve(now, pf.task, pf.va_page, pf.access, fx) {
                        Resolve::Done => {
                            self.faults.remove(&fid);
                            fx.charge(self.cost.vm_fault_finish);
                            fx.out.push(VmEffect::FaultDone {
                                task: pf.task,
                                fault: fid,
                                started: pf.started,
                            });
                        }
                        Resolve::Wait(o2, p2) => {
                            self.waiters
                                .entry((o2, p2))
                                .or_default()
                                .push(Waiter::Fault(fid));
                        }
                    }
                }
                Waiter::Pull { origin, page } => {
                    self.pull_request(now, origin, page, fx);
                }
            }
        }
    }

    // --- Delayed copies ---------------------------------------------------------------

    /// Forks `parent` into `child` on the same node, honouring inheritance
    /// attributes (paper §2.2).
    pub fn fork_local(&mut self, _now: Time, parent: TaskId, child: TaskId, fx: &mut Effects) {
        assert!(self.maps.contains_key(&parent), "no such parent task");
        self.create_task(child);
        let entries: Vec<MapEntry> = self.maps[&parent].entries().to_vec();
        for e in entries {
            match e.inherit {
                Inherit::None => {}
                Inherit::Share => {
                    self.map_object(
                        child, e.va_page, e.pages, e.object, e.offset, e.prot, e.inherit,
                    );
                }
                Inherit::Copy => match self.object(e.object).copy_strategy {
                    CopyStrategy::Symmetric => {
                        // Both sides keep the object; whichever writes first
                        // shadows it.
                        if let Some(pe) = self.maps.get_mut(&parent).unwrap().lookup_mut(e.va_page)
                        {
                            pe.needs_copy = true;
                        }
                        self.object_mut(e.object).refs += 1;
                        let mut ce = e.clone();
                        ce.needs_copy = true;
                        self.maps.get_mut(&child).unwrap().insert(ce);
                        fx.charge(self.cost.vm_object_op);
                    }
                    CopyStrategy::Asymmetric => {
                        let copy = self.copy_delayed(e.object, fx);
                        self.map_object(
                            child, e.va_page, e.pages, copy, e.offset, e.prot, e.inherit,
                        );
                    }
                },
            }
        }
    }

    /// Creates a delayed (asymmetric) copy object of `src` and links it
    /// into the copy chain (paper FIGURE 3). Returns the copy object.
    pub fn copy_delayed(&mut self, src: VmObjId, fx: &mut Effects) -> VmObjId {
        let size = self.object(src).size_pages;
        let copy = self.create_object(size, Backing::Anonymous);
        // New copies are inserted immediately after their source object:
        // any older copy now shadows the new one.
        if let Some(prev) = self.object(src).copy {
            self.object_mut(prev).shadow = Some(copy);
            self.object_mut(copy).refs += 1;
            self.object_mut(src).refs -= 1;
        }
        self.object_mut(copy).shadow = Some(src);
        self.object_mut(copy).copy_strategy = CopyStrategy::Asymmetric;
        self.object_mut(src).refs += 1;
        self.object_mut(src).copy = Some(copy);
        let downgraded = self.object_mut(src).write_protect_all();
        fx.charge(self.cost.vm_object_op + self.cost.vm_pmap_op * downgraded as u64);
        fx.out.push(VmEffect::CopyCreated { source: src, copy });
        copy
    }

    // --- Pageout -------------------------------------------------------------------------

    /// Selects the next eviction victim using a clock (second-chance)
    /// policy. Returns `None` if nothing is evictable.
    pub fn select_victim(&mut self) -> Option<(VmObjId, PageIdx)> {
        let mut passes = self.clock.len();
        while passes > 0 {
            passes -= 1;
            let (obj, page) = self.clock.pop_front()?;
            let Some(o) = self.objects.get_mut(&obj) else {
                continue;
            };
            let Some(rp) = o.pages.get_mut(&page) else {
                continue;
            };
            if rp.busy {
                self.clock.push_back((obj, page));
                continue;
            }
            self.clock.push_back((obj, page));
            return Some((obj, page));
        }
        None
    }

    /// Evicts `(obj, page)` from the cache.
    ///
    /// Anonymous pages go to the default pager (or are dropped when
    /// reconstructible); externally managed pages are handed to their
    /// manager, which implements the paper's four-step internode pageout.
    pub fn evict(
        &mut self,
        _now: Time,
        obj: VmObjId,
        page: PageIdx,
        fx: &mut Effects,
    ) -> EvictDisposition {
        let backing = self.object(obj).backing;
        match backing {
            Backing::External(mobj) => {
                let rp = self.remove_page(obj, page);
                fx.charge(self.cost.vm_pmap_op);
                fx.out.push(VmEffect::EvictExternal {
                    obj,
                    mobj,
                    page,
                    data: rp.data,
                    dirty: rp.dirty,
                });
                EvictDisposition::Handed
            }
            Backing::Anonymous => {
                let rp = self.remove_page(obj, page);
                fx.charge(self.cost.vm_pmap_op);
                let reconstructible = !rp.dirty
                    && (matches!(rp.data, PageData::Zero)
                        || self.object(obj).paged_out.contains(&page));
                if reconstructible {
                    return EvictDisposition::Dropped;
                }
                self.object_mut(obj).paged_out.insert(page);
                fx.pager(
                    obj,
                    Backing::Anonymous,
                    EmmiToPager::DataReturn {
                        page,
                        data: rp.data,
                        dirty: true,
                    },
                );
                EvictDisposition::ToDefaultPager
            }
        }
    }

    // --- internals ------------------------------------------------------------------------

    fn insert_page(&mut self, obj: VmObjId, page: PageIdx, rp: ResidentPage) {
        let o = self.objects.get_mut(&obj).unwrap();
        let prev = o.pages.insert(page, rp);
        assert!(prev.is_none(), "page already resident: {obj:?} {page:?}");
        o.paged_out.remove(&page);
        self.resident_total += 1;
        self.clock.push_back((obj, page));
    }

    fn remove_page(&mut self, obj: VmObjId, page: PageIdx) -> ResidentPage {
        let o = self.objects.get_mut(&obj).unwrap();
        let rp = o.pages.remove(&page).expect("removing non-resident page");
        self.resident_total -= 1;
        rp
    }
}
