//! The External Memory Management Interface (EMMI).
//!
//! EMMI is the Mach protocol between the kernel's VM system and user-level
//! pager tasks ("memory managers"). XMM intercepts it transparently; ASVM
//! uses it as the interface to the local VM system and to pagers, and
//! *extends* it for distributed delayed-copy management (§3.7.1 of the
//! paper):
//!
//! * `memory_object_lock_request` gains a **mode** argument — push the page
//!   down the VM-internal copy chain before the lock is applied
//!   ([`LockMode::PushFirst`]).
//! * `memory_object_lock_completed` gains a **result** — reports when a
//!   push could not run because the page was absent
//!   ([`LockResult::PageAbsent`]).
//! * `memory_object_data_supply` gains a **mode** — deliver the page down
//!   the copy chain instead of into the object itself
//!   ([`SupplyMode::PushCopyChain`]).
//! * `memory_object_pull_request` / `memory_object_pull_completed` are
//!   added to retrieve a page through the VM-internal shadow chain; the
//!   completion can report zero-fill, contents, or "ask the shadow's
//!   memory manager" ([`PullResult`]).
//!
//! Everything here is plain data: the kernel side lives in
//! [`crate::system::VmSystem`], the pager/manager sides in the `pager`,
//! `xmm` and `asvm` crates.

use crate::ids::{Access, PageIdx, VmObjId};
use crate::pagedata::PageData;

/// Calls from the kernel's VM system to a memory manager (pager or
/// intercepting XMM/ASVM layer), addressed by VM object.
#[derive(Clone, Debug)]
pub enum EmmiToPager {
    /// `memory_object_data_request`: the kernel needs the page with at
    /// least `access` rights.
    DataRequest {
        /// Page within the object.
        page: PageIdx,
        /// Access level required.
        access: Access,
    },
    /// `memory_object_data_unlock`: the page is cached with insufficient
    /// rights; the kernel asks for an upgrade to `access`.
    DataUnlock {
        /// Page within the object.
        page: PageIdx,
        /// Access level required.
        access: Access,
    },
    /// `memory_object_data_return`: the kernel evicts the page and returns
    /// its (possibly dirty) contents to the manager.
    DataReturn {
        /// Page within the object.
        page: PageIdx,
        /// The page contents.
        data: PageData,
        /// True if the contents were modified since supply.
        dirty: bool,
    },
    /// `memory_object_lock_completed`: reply to a
    /// [`EmmiToKernel::LockRequest`], with the ASVM `result` extension.
    LockCompleted {
        /// Page within the object.
        page: PageIdx,
        /// Outcome of the lock (and of its push, if one was requested).
        result: LockResult,
    },
    /// `memory_object_pull_completed` (ASVM extension): reply to a
    /// [`EmmiToKernel::PullRequest`].
    PullCompleted {
        /// Page within the object.
        page: PageIdx,
        /// Outcome of the shadow-chain traversal.
        result: PullResult,
    },
}

impl EmmiToPager {
    /// Statistics key counting sends of this call kind (`emmi.req.*`).
    pub fn stat_key(&self) -> &'static str {
        match self {
            EmmiToPager::DataRequest { .. } => "emmi.req.data_request",
            EmmiToPager::DataUnlock { .. } => "emmi.req.data_unlock",
            EmmiToPager::DataReturn { .. } => "emmi.req.data_return",
            EmmiToPager::LockCompleted { .. } => "emmi.req.lock_completed",
            EmmiToPager::PullCompleted { .. } => "emmi.req.pull_completed",
        }
    }

    /// The page this call concerns.
    pub fn page(&self) -> PageIdx {
        match self {
            EmmiToPager::DataRequest { page, .. }
            | EmmiToPager::DataUnlock { page, .. }
            | EmmiToPager::DataReturn { page, .. }
            | EmmiToPager::LockCompleted { page, .. }
            | EmmiToPager::PullCompleted { page, .. } => *page,
        }
    }
}

/// Calls from a memory manager into the kernel's VM system, addressed by
/// VM object (the "memory object control port" direction).
#[derive(Clone, Debug)]
pub enum EmmiToKernel {
    /// `memory_object_data_supply`: deliver page contents with `lock` as
    /// the maximum access the kernel may grant, with the ASVM `mode`
    /// extension.
    DataSupply {
        /// Page within the object.
        page: PageIdx,
        /// The page contents.
        data: PageData,
        /// Maximum access granted.
        lock: Access,
        /// Normal supply or push down the copy chain.
        mode: SupplyMode,
    },
    /// `memory_object_lock_request`: change the cache state of a page, with
    /// the ASVM `mode` extension.
    LockRequest {
        /// Page within the object.
        page: PageIdx,
        /// The state change to apply.
        op: LockOp,
        /// Whether to push the page down the copy chain first.
        mode: LockMode,
    },
    /// `memory_object_pull_request` (ASVM extension): retrieve the page
    /// through the VM-internal shadow chain starting at this object.
    PullRequest {
        /// Page within the object.
        page: PageIdx,
    },
    /// `memory_object_data_error`: the manager cannot provide the page.
    DataError {
        /// Page within the object.
        page: PageIdx,
    },
}

impl EmmiToKernel {
    /// Statistics key counting sends of this call kind (`emmi.reply.*`).
    pub fn stat_key(&self) -> &'static str {
        match self {
            EmmiToKernel::DataSupply { .. } => "emmi.reply.data_supply",
            EmmiToKernel::LockRequest { .. } => "emmi.reply.lock_request",
            EmmiToKernel::PullRequest { .. } => "emmi.reply.pull_request",
            EmmiToKernel::DataError { .. } => "emmi.reply.data_error",
        }
    }

    /// The page this call concerns.
    pub fn page(&self) -> PageIdx {
        match self {
            EmmiToKernel::DataSupply { page, .. }
            | EmmiToKernel::LockRequest { page, .. }
            | EmmiToKernel::PullRequest { page }
            | EmmiToKernel::DataError { page } => *page,
        }
    }
}

/// Cache-state change requested by a lock request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockOp {
    /// Remove the page from the cache. If it is dirty and `return_dirty`
    /// is set, the kernel returns the contents via
    /// [`EmmiToPager::DataReturn`] first.
    Flush {
        /// Return dirty contents before flushing.
        return_dirty: bool,
    },
    /// Reduce the page to read-only. Dirty contents are returned (cleaned)
    /// if `return_dirty` is set.
    Downgrade {
        /// Return dirty contents while downgrading.
        return_dirty: bool,
    },
    /// Raise the maximum access on the cached page (the manager grants an
    /// upgrade previously requested through `data_unlock`).
    Grant(Access),
}

/// ASVM `mode` argument of `memory_object_lock_request`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Plain lock request.
    Normal,
    /// Push the page down the VM-internal copy chain before locking.
    PushFirst,
}

/// ASVM `mode` argument of `memory_object_data_supply`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SupplyMode {
    /// Supply into the object itself.
    Normal,
    /// Push down the copy chain instead of supplying the source object.
    PushCopyChain,
}

/// ASVM `result` argument of `memory_object_lock_completed`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockResult {
    /// The lock (and push, if requested) executed.
    Done,
    /// The push could not execute: the page is not in the VM cache.
    PageAbsent,
}

/// Result of a `memory_object_pull_request` (ASVM extension).
///
/// The paper's three cases: *"1. The page is not available and can be
/// zero-filled. 2. The page is available and its contents are returned.
/// 3. The memory manager of a shadow object has to be asked for the page
/// and the shadow object port is returned."*
#[derive(Clone, Debug)]
pub enum PullResult {
    /// Case 1: zero-fill.
    Zero,
    /// Case 2: contents found in the local shadow chain.
    Data(PageData),
    /// Case 3: ask the memory manager of this shadow object (identified by
    /// the VM object whose external association must be consulted).
    AskShadow(VmObjId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_result_distinguishes_absent() {
        assert_ne!(LockResult::Done, LockResult::PageAbsent);
    }

    #[test]
    fn messages_are_cloneable_and_debuggable() {
        let m = EmmiToKernel::DataSupply {
            page: PageIdx(4),
            data: PageData::Word(9),
            lock: Access::Read,
            mode: SupplyMode::Normal,
        };
        let c = m.clone();
        assert!(format!("{c:?}").contains("DataSupply"));
    }
}
