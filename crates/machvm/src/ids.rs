//! Identifier newtypes shared across the VM model and the memory managers.

use std::fmt;

/// A node-local VM object identifier.
///
/// VM objects are kernel-side entities; each node's VM system numbers its
/// own. A `VmObjId` is only meaningful relative to one node's
/// [`crate::system::VmSystem`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmObjId(pub u32);

/// A system-wide memory object identifier.
///
/// Memory objects are the user-visible abstraction backed by a pager task
/// and (when shared across nodes) managed by XMM or ASVM. One `MemObjId`
/// names the same distributed entity on every node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemObjId(pub u32);

/// A system-wide task identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

/// A page index within a memory or VM object (object-relative, not an
/// address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageIdx(pub u32);

/// A node-local identifier for one in-flight page fault.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultId(pub u64);

/// The kind of memory access a fault or request is for.
///
/// `Write` strictly dominates `Read`; the derived ordering encodes that and
/// is used for "is this grant sufficient" checks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Access {
    /// Read access.
    Read,
    /// Write (and read) access.
    Write,
}

impl Access {
    /// True if a grant of `self` satisfies a request for `want`.
    pub fn allows(self, want: Access) -> bool {
        self >= want
    }
}

/// Inheritance attribute of an address-map entry, controlling what a child
/// task receives on `fork`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Inherit {
    /// Parent and child share the same memory (shared memory semantics).
    Share,
    /// The child receives a delayed copy (copy-on-write semantics).
    Copy,
    /// The child does not inherit the region.
    None,
}

impl fmt::Debug for VmObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vo{}", self.0)
    }
}

impl fmt::Debug for MemObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mo{}", self.0)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for PageIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Debug for FaultId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_dominates_read() {
        assert!(Access::Write.allows(Access::Read));
        assert!(Access::Write.allows(Access::Write));
        assert!(Access::Read.allows(Access::Read));
        assert!(!Access::Read.allows(Access::Write));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", VmObjId(3)), "vo3");
        assert_eq!(format!("{:?}", MemObjId(5)), "mo5");
        assert_eq!(format!("{:?}", PageIdx(7)), "p7");
    }
}
