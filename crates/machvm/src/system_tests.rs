//! Unit tests for the VM system state machine.

use svmsim::{CostModel, Time};

use crate::emmi::{
    EmmiToKernel, EmmiToPager, LockMode, LockOp, LockResult, PullResult, SupplyMode,
};
use crate::ids::{Access, Inherit, MemObjId, PageIdx, TaskId, VmObjId};
use crate::object::Backing;
use crate::pagedata::PageData;
use crate::system::{Effects, EvictDisposition, FaultOutcome, VmEffect, VmSystem};

fn vm() -> VmSystem {
    VmSystem::new(8192, 1024, CostModel::default())
}

fn t(n: u64) -> Time {
    Time::from_nanos(n * 1_000_000)
}

/// Finds the first `ToPager` effect and returns `(obj, call)`.
fn first_pager_call(fx: &Effects) -> Option<(VmObjId, &EmmiToPager)> {
    fx.out.iter().find_map(|e| match e {
        VmEffect::ToPager { obj, call, .. } => Some((*obj, call)),
        _ => None,
    })
}

fn fault_done_count(fx: &Effects) -> usize {
    fx.out
        .iter()
        .filter(|e| matches!(e, VmEffect::FaultDone { .. }))
        .count()
}

#[test]
fn anonymous_zero_fill_fault_hits() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(16, Backing::Anonymous);
    v.map_object(task, 0, 16, obj, 0, Access::Write, Inherit::Copy);

    let mut fx = Effects::new();
    assert!(!v.can_access(task, 3, Access::Read));
    let out = v.fault(t(0), task, 3, Access::Read, &mut fx);
    assert_eq!(out, FaultOutcome::Hit);
    assert!(v.can_access(task, 3, Access::Read));
    assert!(
        v.can_access(task, 3, Access::Write),
        "zero fill grants write"
    );
    assert_eq!(v.read_page(t(1), task, 3), PageData::Zero);
    assert!(fx.cpu > svmsim::Dur::ZERO);
}

#[test]
fn external_fault_requests_and_completes_on_supply() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(16, Backing::External(MemObjId(7)));
    v.map_object(task, 0, 16, obj, 0, Access::Write, Inherit::Share);

    let mut fx = Effects::new();
    let out = v.fault(t(0), task, 5, Access::Read, &mut fx);
    let FaultOutcome::Pending(_) = out else {
        panic!("external fault must suspend")
    };
    let (o, call) = first_pager_call(&fx).expect("must emit data_request");
    assert_eq!(o, obj);
    assert!(matches!(
        call,
        EmmiToPager::DataRequest {
            page: PageIdx(5),
            access: Access::Read
        }
    ));

    // Duplicate fault on the same page must not re-request.
    let mut fx2 = Effects::new();
    let out2 = v.fault(t(1), task, 5, Access::Read, &mut fx2);
    assert!(matches!(out2, FaultOutcome::Pending(_)));
    assert!(first_pager_call(&fx2).is_none(), "request must be deduped");
    assert_eq!(v.pending_faults(), 2);

    // Supply wakes both faults.
    let mut fx3 = Effects::new();
    v.kernel_call(
        t(2),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(5),
            data: PageData::Word(0xAB),
            lock: Access::Read,
            mode: SupplyMode::Normal,
        },
        &mut fx3,
    );
    assert_eq!(fault_done_count(&fx3), 2);
    assert_eq!(v.pending_faults(), 0);
    assert_eq!(v.read_page(t(3), task, 5), PageData::Word(0xAB));
    assert!(!v.can_access(task, 5, Access::Write), "read lock only");
}

#[test]
fn write_upgrade_goes_through_data_unlock_and_grant() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(16, Backing::External(MemObjId(7)));
    v.map_object(task, 0, 16, obj, 0, Access::Write, Inherit::Share);

    // Install a read-only page.
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(2),
            data: PageData::Word(1),
            lock: Access::Read,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );

    let mut fx = Effects::new();
    let out = v.fault(t(1), task, 2, Access::Write, &mut fx);
    assert!(matches!(out, FaultOutcome::Pending(_)));
    let (_, call) = first_pager_call(&fx).unwrap();
    assert!(matches!(
        call,
        EmmiToPager::DataUnlock {
            page: PageIdx(2),
            access: Access::Write
        }
    ));

    // Manager grants the upgrade.
    let mut fx = Effects::new();
    v.kernel_call(
        t(2),
        obj,
        EmmiToKernel::LockRequest {
            page: PageIdx(2),
            op: LockOp::Grant(Access::Write),
            mode: LockMode::Normal,
        },
        &mut fx,
    );
    assert_eq!(fault_done_count(&fx), 1);
    assert!(v.can_access(task, 2, Access::Write));
    v.write_page(t(3), task, 2, PageData::Word(99));
    assert_eq!(v.read_page(t(3), task, 2), PageData::Word(99));
}

#[test]
fn symmetric_fork_copy_on_write_isolates_parent_and_child() {
    let mut v = vm();
    let parent = TaskId(1);
    let child = TaskId(2);
    v.create_task(parent);
    let obj = v.create_object(8, Backing::Anonymous);
    v.map_object(parent, 0, 8, obj, 0, Access::Write, Inherit::Copy);

    // Parent writes page 0 before the fork.
    let mut fx = Effects::new();
    v.fault(t(0), parent, 0, Access::Write, &mut fx);
    v.write_page(t(0), parent, 0, PageData::Word(111));

    let mut fx = Effects::new();
    v.fork_local(t(1), parent, child, &mut fx);

    // Child reads the parent's data through the shared frozen object.
    let mut fx = Effects::new();
    assert_eq!(
        v.fault(t(2), child, 0, Access::Read, &mut fx),
        FaultOutcome::Hit
    );
    assert_eq!(v.read_page(t(2), child, 0), PageData::Word(111));

    // Child writes: gets its own shadow; parent is unaffected.
    let mut fx = Effects::new();
    assert_eq!(
        v.fault(t(3), child, 0, Access::Write, &mut fx),
        FaultOutcome::Hit
    );
    v.write_page(t(3), child, 0, PageData::Word(222));
    assert_eq!(v.read_page(t(4), child, 0), PageData::Word(222));
    assert_eq!(v.read_page(t(4), parent, 0), PageData::Word(111));

    // Parent writes the same page: its own shadow, child unaffected.
    let mut fx = Effects::new();
    assert_eq!(
        v.fault(t(5), parent, 0, Access::Write, &mut fx),
        FaultOutcome::Hit
    );
    v.write_page(t(5), parent, 0, PageData::Word(333));
    assert_eq!(v.read_page(t(6), parent, 0), PageData::Word(333));
    assert_eq!(v.read_page(t(6), child, 0), PageData::Word(222));
}

#[test]
fn asymmetric_copy_pushes_before_source_write() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let src = v.create_object(8, Backing::External(MemObjId(9)));
    v.map_object(task, 0, 8, src, 0, Access::Write, Inherit::Copy);

    // Page 0 resident with write access, value 5.
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        src,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(5),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );

    // Create a delayed copy; source pages get write-protected.
    let mut fx = Effects::new();
    let copy = v.copy_delayed(src, &mut fx);
    assert!(fx
        .out
        .iter()
        .any(|e| matches!(e, VmEffect::CopyCreated { .. })));
    assert!(
        !v.can_access(task, 0, Access::Write),
        "source write-protected"
    );

    // Source write fault: push to copy first, then upgrade via manager.
    let mut fx = Effects::new();
    let out = v.fault(t(1), task, 0, Access::Write, &mut fx);
    assert!(
        matches!(out, FaultOutcome::Pending(_)),
        "needs manager grant"
    );
    assert!(v.object(copy).resident(PageIdx(0)), "page pushed to copy");

    let mut fx = Effects::new();
    v.kernel_call(
        t(2),
        src,
        EmmiToKernel::LockRequest {
            page: PageIdx(0),
            op: LockOp::Grant(Access::Write),
            mode: LockMode::Normal,
        },
        &mut fx,
    );
    v.write_page(t(3), task, 0, PageData::Word(6));

    // The copy still sees the pre-modification value.
    assert_eq!(
        v.object(copy).pages.get(&PageIdx(0)).unwrap().data,
        PageData::Word(5)
    );
}

#[test]
fn copy_chain_inserts_new_copy_after_source() {
    let mut v = vm();
    let src = v.create_object(4, Backing::External(MemObjId(1)));
    let mut fx = Effects::new();
    let c1 = v.copy_delayed(src, &mut fx);
    let c2 = v.copy_delayed(src, &mut fx);
    // Chain: c1 -> c2 -> src; src.copy = c2 (newest).
    assert_eq!(v.object(src).copy, Some(c2));
    assert_eq!(v.object(c2).shadow, Some(src));
    assert_eq!(v.object(c1).shadow, Some(c2));
}

#[test]
fn pull_request_traverses_shadow_chain() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let src = v.create_object(4, Backing::External(MemObjId(1)));
    v.map_object(task, 0, 4, src, 0, Access::Write, Inherit::Copy);
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        src,
        EmmiToKernel::DataSupply {
            page: PageIdx(1),
            data: PageData::Word(42),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    let copy = v.copy_delayed(src, &mut fx);

    // Pull on the copy finds the page in the source below it.
    let mut fx = Effects::new();
    v.kernel_call(
        t(1),
        copy,
        EmmiToKernel::PullRequest { page: PageIdx(1) },
        &mut fx,
    );
    let (_, call) = first_pager_call(&fx).unwrap();
    match call {
        EmmiToPager::PullCompleted {
            page: PageIdx(1),
            result: PullResult::Data(d),
        } => assert_eq!(*d, PageData::Word(42)),
        other => panic!("unexpected reply {other:?}"),
    }

    // Pull for a page nobody has: the chain ends at the external source —
    // its manager must be asked.
    let mut fx = Effects::new();
    v.kernel_call(
        t(2),
        copy,
        EmmiToKernel::PullRequest { page: PageIdx(2) },
        &mut fx,
    );
    let (_, call) = first_pager_call(&fx).unwrap();
    match call {
        EmmiToPager::PullCompleted {
            result: PullResult::AskShadow(o),
            ..
        } => assert_eq!(*o, src),
        other => panic!("unexpected reply {other:?}"),
    }
}

#[test]
fn pull_request_zero_fills_at_chain_end() {
    let mut v = vm();
    let anon = v.create_object(4, Backing::Anonymous);
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        anon,
        EmmiToKernel::PullRequest { page: PageIdx(0) },
        &mut fx,
    );
    let (_, call) = first_pager_call(&fx).unwrap();
    assert!(matches!(
        call,
        EmmiToPager::PullCompleted {
            result: PullResult::Zero,
            ..
        }
    ));
}

#[test]
fn lock_request_push_first_reports_absent_pages() {
    let mut v = vm();
    let src = v.create_object(4, Backing::External(MemObjId(1)));
    let mut fx = Effects::new();
    let _copy = v.copy_delayed(src, &mut fx);

    let mut fx = Effects::new();
    v.kernel_call(
        t(1),
        src,
        EmmiToKernel::LockRequest {
            page: PageIdx(0),
            op: LockOp::Flush {
                return_dirty: false,
            },
            mode: LockMode::PushFirst,
        },
        &mut fx,
    );
    let (_, call) = first_pager_call(&fx).unwrap();
    assert!(matches!(
        call,
        EmmiToPager::LockCompleted {
            result: LockResult::PageAbsent,
            ..
        }
    ));
}

#[test]
fn lock_request_push_first_pushes_then_flushes() {
    let mut v = vm();
    let src = v.create_object(4, Backing::External(MemObjId(1)));
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        src,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(7),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    let copy = v.copy_delayed(src, &mut fx);

    let mut fx = Effects::new();
    v.kernel_call(
        t(1),
        src,
        EmmiToKernel::LockRequest {
            page: PageIdx(0),
            op: LockOp::Flush {
                return_dirty: false,
            },
            mode: LockMode::PushFirst,
        },
        &mut fx,
    );
    // Push ran: the copy has the data; the source page is flushed.
    assert_eq!(
        v.object(copy).pages.get(&PageIdx(0)).unwrap().data,
        PageData::Word(7)
    );
    assert!(!v.object(src).resident(PageIdx(0)));
    let (_, call) = first_pager_call(&fx).unwrap();
    assert!(matches!(
        call,
        EmmiToPager::LockCompleted {
            result: LockResult::Done,
            ..
        }
    ));
}

#[test]
fn supply_push_mode_lands_in_copy_object() {
    let mut v = vm();
    let src = v.create_object(4, Backing::External(MemObjId(1)));
    let mut fx = Effects::new();
    let copy = v.copy_delayed(src, &mut fx);

    let mut fx = Effects::new();
    v.kernel_call(
        t(1),
        src,
        EmmiToKernel::DataSupply {
            page: PageIdx(3),
            data: PageData::Word(55),
            lock: Access::Write,
            mode: SupplyMode::PushCopyChain,
        },
        &mut fx,
    );
    assert!(v.object(copy).resident(PageIdx(3)));
    assert!(!v.object(src).resident(PageIdx(3)));
}

#[test]
fn flush_returns_dirty_data_when_asked() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(4, Backing::External(MemObjId(1)));
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Share);
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(1),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    v.fault(t(1), task, 0, Access::Write, &mut Effects::new());
    v.write_page(t(1), task, 0, PageData::Word(2));

    let mut fx = Effects::new();
    v.kernel_call(
        t(2),
        obj,
        EmmiToKernel::LockRequest {
            page: PageIdx(0),
            op: LockOp::Flush { return_dirty: true },
            mode: LockMode::Normal,
        },
        &mut fx,
    );
    let returned = fx.out.iter().find_map(|e| match e {
        VmEffect::ToPager {
            call: EmmiToPager::DataReturn { data, dirty, .. },
            ..
        } => Some((data.clone(), *dirty)),
        _ => None,
    });
    assert_eq!(returned, Some((PageData::Word(2), true)));
    assert!(!v.object(obj).resident(PageIdx(0)));
}

#[test]
fn downgrade_cleans_and_keeps_page() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(4, Backing::External(MemObjId(1)));
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Share);
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(1),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    v.fault(t(1), task, 0, Access::Write, &mut Effects::new());
    v.write_page(t(1), task, 0, PageData::Word(3));

    let mut fx = Effects::new();
    v.kernel_call(
        t(2),
        obj,
        EmmiToKernel::LockRequest {
            page: PageIdx(0),
            op: LockOp::Downgrade { return_dirty: true },
            mode: LockMode::Normal,
        },
        &mut fx,
    );
    assert!(v.object(obj).resident(PageIdx(0)));
    assert!(!v.can_access(task, 0, Access::Write));
    assert!(v.can_access(task, 0, Access::Read));
    let rp = v.object(obj).pages.get(&PageIdx(0)).unwrap();
    assert!(!rp.dirty, "downgrade with return cleans the page");
}

#[test]
fn eviction_of_anonymous_page_round_trips_via_default_pager() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), task, 1, Access::Write, &mut Effects::new());
    v.write_page(t(0), task, 1, PageData::Word(77));

    let mut fx = Effects::new();
    let disp = v.evict(t(1), obj, PageIdx(1), &mut fx);
    assert_eq!(disp, EvictDisposition::ToDefaultPager);
    let (_, call) = first_pager_call(&fx).unwrap();
    assert!(matches!(call, EmmiToPager::DataReturn { .. }));
    assert!(!v.can_access(task, 1, Access::Read));

    // Refault: must request from the default pager, not zero-fill.
    let mut fx = Effects::new();
    let out = v.fault(t(2), task, 1, Access::Read, &mut fx);
    assert!(matches!(out, FaultOutcome::Pending(_)));
    let (_, call) = first_pager_call(&fx).unwrap();
    assert!(matches!(
        call,
        EmmiToPager::DataRequest {
            page: PageIdx(1),
            ..
        }
    ));

    // Default pager supplies the stored contents back.
    let mut fx = Effects::new();
    v.kernel_call(
        t(3),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(1),
            data: PageData::Word(77),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    assert_eq!(fault_done_count(&fx), 1);
    assert_eq!(v.read_page(t(4), task, 1), PageData::Word(77));
}

#[test]
fn clean_zero_pages_drop_on_eviction() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), task, 0, Access::Read, &mut Effects::new());

    let mut fx = Effects::new();
    let disp = v.evict(t(1), obj, PageIdx(0), &mut fx);
    assert_eq!(disp, EvictDisposition::Dropped);
    assert!(first_pager_call(&fx).is_none());
    // Refault zero-fills again.
    let out = v.fault(t(2), task, 0, Access::Read, &mut Effects::new());
    assert_eq!(out, FaultOutcome::Hit);
}

#[test]
fn external_eviction_hands_page_to_manager() {
    let mut v = vm();
    let obj = v.create_object(4, Backing::External(MemObjId(3)));
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(5),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    let mut fx = Effects::new();
    let disp = v.evict(t(1), obj, PageIdx(0), &mut fx);
    assert_eq!(disp, EvictDisposition::Handed);
    match &fx.out[..] {
        [VmEffect::EvictExternal {
            mobj, page, data, ..
        }] => {
            assert_eq!(*mobj, MemObjId(3));
            assert_eq!(*page, PageIdx(0));
            assert_eq!(*data, PageData::Word(5));
        }
        other => panic!("unexpected effects {other:?}"),
    }
}

#[test]
fn select_victim_skips_busy_pages() {
    let mut v = vm();
    let obj = v.create_object(4, Backing::Anonymous);
    let task = TaskId(1);
    v.create_task(task);
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), task, 0, Access::Write, &mut Effects::new());
    v.fault(t(0), task, 1, Access::Write, &mut Effects::new());
    v.object_mut(obj).pages.get_mut(&PageIdx(0)).unwrap().busy = true;

    let victim = v.select_victim().unwrap();
    assert_eq!(victim, (obj, PageIdx(1)));
}

#[test]
fn resident_accounting_tracks_inserts_and_removals() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(8, Backing::Anonymous);
    v.map_object(task, 0, 8, obj, 0, Access::Write, Inherit::Copy);
    assert_eq!(v.resident_total(), 0);
    for p in 0..5 {
        v.fault(t(p), task, p, Access::Write, &mut Effects::new());
    }
    assert_eq!(v.resident_total(), 5);
    v.evict(t(9), obj, PageIdx(0), &mut Effects::new());
    assert_eq!(v.resident_total(), 4);
}

#[test]
fn share_mapping_sees_other_tasks_writes() {
    let mut v = vm();
    let a = TaskId(1);
    let b = TaskId(2);
    v.create_task(a);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(a, 0, 4, obj, 0, Access::Write, Inherit::Share);
    v.fork_local(t(0), a, b, &mut Effects::new());

    v.fault(t(1), a, 0, Access::Write, &mut Effects::new());
    v.write_page(t(1), a, 0, PageData::Word(10));
    assert_eq!(
        v.fault(t(2), b, 0, Access::Read, &mut Effects::new()),
        FaultOutcome::Hit
    );
    assert_eq!(v.read_page(t(2), b, 0), PageData::Word(10));
}
