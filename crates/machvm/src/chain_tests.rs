//! Edge-case tests for shadow/copy chains, pageout interplay and the
//! asynchronous pull path.

use svmsim::{CostModel, Time};

use crate::emmi::{EmmiToKernel, EmmiToPager, PullResult, SupplyMode};
use crate::ids::{Access, Inherit, MemObjId, PageIdx, TaskId};
use crate::object::Backing;
use crate::pagedata::PageData;
use crate::system::{Effects, FaultOutcome, VmEffect, VmSystem};

fn vm() -> VmSystem {
    VmSystem::new(8192, 1024, CostModel::default())
}

fn t(n: u64) -> Time {
    Time::from_nanos(n * 1_000_000)
}

fn pull_reply(fx: &Effects) -> Option<&PullResult> {
    fx.out.iter().find_map(|e| match e {
        VmEffect::ToPager {
            call: EmmiToPager::PullCompleted { result, .. },
            ..
        } => Some(result),
        _ => None,
    })
}

#[test]
fn pull_waits_for_paged_out_page_and_resumes() {
    // A page evicted to the default pager sits in the middle of a shadow
    // chain; a pull must fetch it back and then complete asynchronously.
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let base = v.create_object(4, Backing::Anonymous);
    v.map_object(task, 0, 4, base, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), task, 1, Access::Write, &mut Effects::new());
    v.write_page(t(0), task, 1, PageData::Word(0x77));

    // Evict it: the data goes to the default pager.
    let mut fx = Effects::new();
    v.evict(t(1), base, PageIdx(1), &mut fx);
    assert!(v.object(base).paged_out.contains(&PageIdx(1)));

    // Build a copy above it and issue a pull on the copy.
    let mut fx = Effects::new();
    let copy = v.copy_delayed(base, &mut fx);
    let mut fx = Effects::new();
    v.kernel_call(
        t(2),
        copy,
        EmmiToKernel::PullRequest { page: PageIdx(1) },
        &mut fx,
    );
    // No immediate completion: the chain is blocked on the pager fetch.
    assert!(pull_reply(&fx).is_none(), "pull must wait for the fetch");
    // The walk emitted a request for the paged-out page on the base object.
    let requested = fx.out.iter().any(|e| {
        matches!(
            e,
            VmEffect::ToPager {
                call: EmmiToPager::DataRequest {
                    page: PageIdx(1),
                    ..
                },
                ..
            }
        )
    });
    assert!(requested, "the default pager must be asked");

    // Default pager supplies; the pull re-runs and completes with data.
    let mut fx = Effects::new();
    v.kernel_call(
        t(3),
        base,
        EmmiToKernel::DataSupply {
            page: PageIdx(1),
            data: PageData::Word(0x77),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    match pull_reply(&fx) {
        Some(PullResult::Data(d)) => assert_eq!(*d, PageData::Word(0x77)),
        other => panic!("expected data, got {other:?}"),
    }
}

#[test]
fn deep_symmetric_fork_chains_preserve_generations() {
    // Five generations of local forks, each writing a different page, each
    // generation seeing exactly its ancestors' values.
    let mut v = vm();
    let root = TaskId(1);
    v.create_task(root);
    let obj = v.create_object(8, Backing::Anonymous);
    v.map_object(root, 0, 8, obj, 0, Access::Write, Inherit::Copy);

    let mut parent = root;
    for g in 0..5u32 {
        let mut fx = Effects::new();
        v.fault(t(g as u64 * 10), parent, g as u64, Access::Write, &mut fx);
        v.write_page(
            t(g as u64 * 10),
            parent,
            g as u64,
            PageData::Word(g as u64 + 1),
        );
        let child = TaskId(10 + g);
        v.fork_local(t(g as u64 * 10 + 5), parent, child, &mut Effects::new());
        parent = child;
    }
    // The last child sees every generation's write.
    for g in 0..5u64 {
        let mut fx = Effects::new();
        assert_eq!(
            v.fault(t(100 + g), parent, g, Access::Read, &mut fx),
            FaultOutcome::Hit
        );
        assert_eq!(v.read_page(t(100 + g), parent, g), PageData::Word(g + 1));
    }
    // The root overwrites page 0; the last child is unaffected.
    let mut fx = Effects::new();
    v.fault(t(200), root, 0, Access::Write, &mut fx);
    v.write_page(t(200), root, 0, PageData::Word(0xBAD));
    assert_eq!(v.read_page(t(201), parent, 0), PageData::Word(1));
}

#[test]
fn cow_write_after_eviction_of_ancestor_page() {
    // Ancestor's page is paged out; a child's WRITE must fetch it, copy
    // up, and leave the ancestor's (paged) version intact.
    let mut v = vm();
    let parent = TaskId(1);
    let child = TaskId(2);
    v.create_task(parent);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(parent, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), parent, 0, Access::Write, &mut Effects::new());
    v.write_page(t(0), parent, 0, PageData::Word(5));
    v.fork_local(t(1), parent, child, &mut Effects::new());

    // Parent's write creates its own shadow; the original page freezes in
    // the (now shared) object. Evict the frozen page.
    v.fault(t(2), parent, 0, Access::Write, &mut Effects::new());
    v.write_page(t(2), parent, 0, PageData::Word(6));
    // Find the frozen object: the child's entry still points at it.
    let frozen = v.address_map(child).lookup(0).unwrap().object;
    let mut fx = Effects::new();
    v.evict(t(3), frozen, PageIdx(0), &mut fx);

    // Child writes: fault suspends on the pager fetch.
    let mut fx = Effects::new();
    let out = v.fault(t(4), child, 0, Access::Write, &mut fx);
    assert!(matches!(out, FaultOutcome::Pending(_)));
    let mut fx = Effects::new();
    v.kernel_call(
        t(5),
        frozen,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(5),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    assert!(fx
        .out
        .iter()
        .any(|e| matches!(e, VmEffect::FaultDone { .. })));
    v.write_page(t(6), child, 0, PageData::Word(7));
    assert_eq!(v.read_page(t(7), child, 0), PageData::Word(7));
    assert_eq!(v.read_page(t(7), parent, 0), PageData::Word(6));
}

#[test]
fn clock_gives_second_chance_via_busy_skip_and_wraps() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(16, Backing::Anonymous);
    v.map_object(task, 0, 16, obj, 0, Access::Write, Inherit::Copy);
    for p in 0..8 {
        v.fault(t(p), task, p, Access::Write, &mut Effects::new());
    }
    // Victims come out in insertion order and cycle.
    let mut victims = Vec::new();
    for _ in 0..8 {
        let (o, p) = v.select_victim().unwrap();
        assert_eq!(o, obj);
        victims.push(p.0);
    }
    assert_eq!(victims, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    // Evicted pages stop being offered.
    v.evict(t(20), obj, PageIdx(0), &mut Effects::new());
    for _ in 0..16 {
        let (_, p) = v.select_victim().unwrap();
        assert_ne!(p.0, 0, "evicted page must leave the clock");
    }
}

#[test]
fn resupply_upgrades_resident_page_in_place() {
    // A manager may answer a write upgrade with a full supply; the kernel
    // must upgrade the resident page rather than double-insert.
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(4, Backing::External(MemObjId(1)));
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Share);
    let mut fx = Effects::new();
    v.kernel_call(
        t(0),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(1),
            lock: Access::Read,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    assert_eq!(v.resident_total(), 1);
    let mut fx = Effects::new();
    v.kernel_call(
        t(1),
        obj,
        EmmiToKernel::DataSupply {
            page: PageIdx(0),
            data: PageData::Word(2),
            lock: Access::Write,
            mode: SupplyMode::Normal,
        },
        &mut fx,
    );
    assert_eq!(v.resident_total(), 1, "no duplicate residency");
    assert!(v.can_access(task, 0, Access::Write));
    assert_eq!(v.read_page(t(2), task, 0), PageData::Word(2));
}

#[test]
fn can_access_respects_needs_copy_and_prot() {
    let mut v = vm();
    let a = TaskId(1);
    let b = TaskId(2);
    v.create_task(a);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(a, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), a, 0, Access::Write, &mut Effects::new());
    v.fork_local(t(1), a, b, &mut Effects::new());
    // Reads pass through; writes must re-fault (symmetric needs-copy).
    assert!(v.can_access(a, 0, Access::Read));
    assert!(v.can_access(b, 0, Access::Read));
    assert!(!v.can_access(a, 0, Access::Write));
    assert!(!v.can_access(b, 0, Access::Write));
}

#[test]
fn unmap_releases_pages_and_objects() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(task, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    for p in 0..4 {
        v.fault(t(p), task, p, Access::Write, &mut Effects::new());
    }
    assert_eq!(v.resident_total(), 4);
    v.unmap(task, 0);
    assert_eq!(v.resident_total(), 0, "sole mapping dropped the cache");
}

#[test]
fn unmap_keeps_objects_shared_with_other_tasks() {
    let mut v = vm();
    let a = TaskId(1);
    let b = TaskId(2);
    v.create_task(a);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(a, 0, 4, obj, 0, Access::Write, Inherit::Share);
    v.fork_local(t(0), a, b, &mut Effects::new());
    v.fault(t(1), a, 0, Access::Write, &mut Effects::new());
    v.write_page(t(1), a, 0, PageData::Word(5));

    v.destroy_task(a);
    // b still reads the shared data.
    assert_eq!(v.read_page(t(2), b, 0), PageData::Word(5));
    v.destroy_task(b);
    assert_eq!(v.resident_total(), 0);
}

#[test]
fn destroying_forked_chains_releases_shadow_objects() {
    let mut v = vm();
    let root = TaskId(1);
    v.create_task(root);
    let obj = v.create_object(4, Backing::Anonymous);
    v.map_object(root, 0, 4, obj, 0, Access::Write, Inherit::Copy);
    v.fault(t(0), root, 0, Access::Write, &mut Effects::new());
    v.write_page(t(0), root, 0, PageData::Word(1));

    let mut children = Vec::new();
    let mut parent = root;
    for g in 0..3 {
        let child = TaskId(10 + g);
        v.fork_local(t(g as u64), parent, child, &mut Effects::new());
        // Each generation writes to force shadow objects into existence.
        v.fault(
            t(5 + g as u64),
            child,
            0,
            Access::Write,
            &mut Effects::new(),
        );
        v.write_page(t(5 + g as u64), child, 0, PageData::Word(g as u64 + 2));
        children.push(child);
        parent = child;
    }
    // Tear down everything; all objects and pages must go.
    v.destroy_task(root);
    for c in children {
        v.destroy_task(c);
    }
    assert_eq!(v.resident_total(), 0, "every page released");
}

#[test]
#[should_panic(expected = "unmap of unmapped range")]
fn unmap_of_unmapped_range_panics() {
    let mut v = vm();
    let task = TaskId(1);
    v.create_task(task);
    v.unmap(task, 0);
}
