//! Page contents.
//!
//! The simulation carries *real* page contents through every protocol so
//! that coherence and copy semantics can be verified against a reference
//! model rather than assumed. Three representations keep this cheap:
//! all-zero pages (the common initial state) cost nothing, pages written
//! page-at-a-time by workloads carry a single 64-bit stamp, and pages
//! written byte-wise materialize a full buffer behind an `Rc` so that the
//! many cached copies a shared page accumulates stay O(1) to clone.

use std::rc::Rc;

/// Contents of one VM page.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum PageData {
    /// An all-zero page (zero-fill state).
    #[default]
    Zero,
    /// A page whose entire contents are summarized by one stamp value —
    /// what the workload generators write when only identity matters.
    Word(u64),
    /// Full byte contents (cheaply shared; copy-on-write on mutation).
    Bytes(Rc<Vec<u8>>),
}

impl PageData {
    /// Reads the stamp of a `Word` page, the first 8 bytes of a `Bytes`
    /// page, or 0 for a zero page.
    pub fn word(&self) -> u64 {
        match self {
            PageData::Zero => 0,
            PageData::Word(w) => *w,
            PageData::Bytes(b) => {
                let n = b.len().min(8);
                let mut buf = [0u8; 8];
                buf[..n].copy_from_slice(&b[..n]);
                u64::from_le_bytes(buf)
            }
        }
    }

    /// Reads `len` bytes at `off`, materializing the logical contents.
    pub fn read_bytes(&self, off: usize, len: usize, page_size: usize) -> Vec<u8> {
        assert!(off + len <= page_size, "read beyond page");
        match self {
            PageData::Zero => vec![0; len],
            PageData::Word(w) => {
                // The stamp occupies bytes 0..8 (little-endian); the rest of
                // the page is zero. Materialize only the requested range
                // instead of staging a full page-sized buffer.
                let mut out = vec![0u8; len];
                if off < 8 {
                    let n = (8 - off).min(len);
                    out[..n].copy_from_slice(&w.to_le_bytes()[off..off + n]);
                }
                out
            }
            PageData::Bytes(b) => b[off..off + len].to_vec(),
        }
    }

    /// Writes `bytes` at `off`, materializing a byte buffer if needed.
    pub fn write_bytes(&mut self, off: usize, bytes: &[u8], page_size: usize) {
        assert!(off + bytes.len() <= page_size, "write beyond page");
        let mut buf = match std::mem::take(self) {
            PageData::Zero => vec![0u8; page_size],
            PageData::Word(w) => {
                let mut v = vec![0u8; page_size];
                v[..8.min(page_size)].copy_from_slice(&w.to_le_bytes()[..8.min(page_size)]);
                v
            }
            PageData::Bytes(rc) => match Rc::try_unwrap(rc) {
                Ok(v) => v,
                Err(rc) => (*rc).clone(),
            },
        };
        buf[off..off + bytes.len()].copy_from_slice(bytes);
        *self = PageData::Bytes(Rc::new(buf));
    }

    /// Approximate heap footprint, for memory accounting in the ablations.
    pub fn heap_bytes(&self) -> usize {
        match self {
            PageData::Zero | PageData::Word(_) => 0,
            PageData::Bytes(b) => b.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 8192;

    #[test]
    fn zero_page_reads_zero() {
        let p = PageData::Zero;
        assert_eq!(p.word(), 0);
        assert_eq!(p.read_bytes(100, 4, PS), vec![0, 0, 0, 0]);
    }

    #[test]
    fn word_round_trips() {
        let p = PageData::Word(0xdead_beef_cafe_f00d);
        assert_eq!(p.word(), 0xdead_beef_cafe_f00d);
        assert_eq!(
            p.read_bytes(0, 8, PS),
            0xdead_beef_cafe_f00du64.to_le_bytes()
        );
        assert_eq!(p.read_bytes(8, 2, PS), vec![0, 0]);
        // A read straddling the 8-byte stamp boundary: stamp tail, then
        // zero fill.
        let stamp = 0xdead_beef_cafe_f00du64.to_le_bytes();
        assert_eq!(p.read_bytes(6, 4, PS), vec![stamp[6], stamp[7], 0, 0],);
        assert_eq!(p.read_bytes(4000, 3, PS), vec![0, 0, 0]);
    }

    #[test]
    fn byte_writes_materialize_and_merge() {
        let mut p = PageData::Word(7);
        p.write_bytes(16, &[1, 2, 3], PS);
        // Original stamp preserved in the first 8 bytes.
        assert_eq!(p.word(), 7);
        assert_eq!(p.read_bytes(16, 3, PS), vec![1, 2, 3]);
        assert_eq!(p.heap_bytes(), PS);
    }

    #[test]
    fn clones_share_until_written() {
        let mut a = PageData::Zero;
        a.write_bytes(0, &[9], PS);
        let b = a.clone();
        let mut c = a.clone();
        c.write_bytes(0, &[8], PS);
        assert_eq!(a.read_bytes(0, 1, PS), vec![9]);
        assert_eq!(b.read_bytes(0, 1, PS), vec![9]);
        assert_eq!(c.read_bytes(0, 1, PS), vec![8]);
    }

    #[test]
    #[should_panic(expected = "write beyond page")]
    fn write_past_end_panics() {
        PageData::Zero.write_bytes(PS - 1, &[1, 2], PS);
    }
}
