//! Task address maps.
//!
//! An address map is an ordered list of entries mapping page-aligned
//! virtual address ranges onto `(VM object, offset)` pairs, with protection
//! and inheritance attributes — a faithful miniature of Mach's `vm_map`.

use crate::ids::{Access, Inherit, PageIdx, VmObjId};

/// One mapping in a task's address space.
#[derive(Clone, Debug)]
pub struct MapEntry {
    /// First virtual page number covered.
    pub va_page: u64,
    /// Length in pages.
    pub pages: u32,
    /// The mapped VM object.
    pub object: VmObjId,
    /// Offset into the object, in pages.
    pub offset: u32,
    /// Maximum access this mapping permits.
    pub prot: Access,
    /// Fork behaviour.
    pub inherit: Inherit,
    /// Symmetric copy pending: the next write through this entry must
    /// first create a shadow object (FIGURE 2 of the paper).
    pub needs_copy: bool,
}

impl MapEntry {
    /// Translates a virtual page number to a page index within the object.
    ///
    /// # Panics
    ///
    /// Panics if `va_page` is outside the entry.
    pub fn object_page(&self, va_page: u64) -> PageIdx {
        assert!(self.contains(va_page), "va outside entry");
        PageIdx(self.offset + (va_page - self.va_page) as u32)
    }

    /// True if the entry covers `va_page`.
    pub fn contains(&self, va_page: u64) -> bool {
        va_page >= self.va_page && va_page < self.va_page + self.pages as u64
    }
}

/// A task's address space.
#[derive(Clone, Debug, Default)]
pub struct AddressMap {
    entries: Vec<MapEntry>,
}

impl AddressMap {
    /// An empty address space.
    pub fn new() -> AddressMap {
        AddressMap::default()
    }

    /// Inserts a mapping.
    ///
    /// # Panics
    ///
    /// Panics if the range overlaps an existing entry — the workloads always
    /// lay out their address spaces disjointly, so an overlap is a bug.
    pub fn insert(&mut self, entry: MapEntry) {
        assert!(
            !self
                .entries
                .iter()
                .any(|e| entry.va_page < e.va_page + e.pages as u64
                    && e.va_page < entry.va_page + entry.pages as u64),
            "overlapping map entry at va_page {}",
            entry.va_page
        );
        let pos = self.entries.partition_point(|e| e.va_page < entry.va_page);
        self.entries.insert(pos, entry);
    }

    /// Finds the entry covering `va_page`.
    pub fn lookup(&self, va_page: u64) -> Option<&MapEntry> {
        let pos = self
            .entries
            .partition_point(|e| e.va_page + e.pages as u64 <= va_page);
        self.entries.get(pos).filter(|e| e.contains(va_page))
    }

    /// Mutable lookup.
    pub fn lookup_mut(&mut self, va_page: u64) -> Option<&mut MapEntry> {
        let pos = self
            .entries
            .partition_point(|e| e.va_page + e.pages as u64 <= va_page);
        self.entries.get_mut(pos).filter(|e| e.contains(va_page))
    }

    /// Removes the entry covering `va_page`, returning it.
    pub fn remove(&mut self, va_page: u64) -> Option<MapEntry> {
        let pos = self.entries.iter().position(|e| e.contains(va_page))?;
        Some(self.entries.remove(pos))
    }

    /// All entries in address order.
    pub fn entries(&self) -> &[MapEntry] {
        &self.entries
    }

    /// Mutable access to all entries (fork rewrites inheritance state).
    pub fn entries_mut(&mut self) -> &mut [MapEntry] {
        &mut self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(va: u64, pages: u32, obj: u32) -> MapEntry {
        MapEntry {
            va_page: va,
            pages,
            object: VmObjId(obj),
            offset: 0,
            prot: Access::Write,
            inherit: Inherit::Copy,
            needs_copy: false,
        }
    }

    #[test]
    fn lookup_finds_covering_entry() {
        let mut m = AddressMap::new();
        m.insert(entry(10, 5, 1));
        m.insert(entry(0, 4, 2));
        assert_eq!(m.lookup(0).unwrap().object, VmObjId(2));
        assert_eq!(m.lookup(3).unwrap().object, VmObjId(2));
        assert!(m.lookup(4).is_none());
        assert_eq!(m.lookup(14).unwrap().object, VmObjId(1));
        assert!(m.lookup(15).is_none());
    }

    #[test]
    fn object_page_translates_offsets() {
        let mut e = entry(10, 5, 1);
        e.offset = 100;
        assert_eq!(e.object_page(12), PageIdx(102));
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_rejected() {
        let mut m = AddressMap::new();
        m.insert(entry(0, 4, 1));
        m.insert(entry(3, 2, 2));
    }

    #[test]
    fn remove_returns_entry() {
        let mut m = AddressMap::new();
        m.insert(entry(0, 4, 1));
        assert_eq!(m.remove(2).unwrap().object, VmObjId(1));
        assert!(m.lookup(2).is_none());
        assert!(m.remove(2).is_none());
    }

    #[test]
    fn entries_sorted_by_va() {
        let mut m = AddressMap::new();
        m.insert(entry(20, 1, 1));
        m.insert(entry(0, 1, 2));
        m.insert(entry(10, 1, 3));
        let vas: Vec<u64> = m.entries().iter().map(|e| e.va_page).collect();
        assert_eq!(vas, vec![0, 10, 20]);
    }
}
