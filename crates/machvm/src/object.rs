//! VM objects: the kernel-side representation of memory, with shadow and
//! copy links implementing Mach's delayed-copy strategies (§2.2 of the
//! paper).

use std::collections::BTreeSet;

use svmsim::Time;

use crate::ids::{Access, MemObjId, PageIdx, VmObjId};
use crate::pagedata::PageData;

/// What backs a VM object when its pages are not resident.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backing {
    /// Zero-filled on first touch; evicted pages go to the default pager.
    Anonymous,
    /// Backed by an external memory object (a pager task, possibly behind
    /// an XMM or ASVM layer).
    External(MemObjId),
}

/// Which delayed-copy strategy applies when this object is copied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyStrategy {
    /// Symmetric: source and copy keep referencing the object; whichever
    /// side writes first gets a fresh shadow object (FIGURE 2). The source
    /// object's contents freeze. Used when changes need not reach a pager.
    Symmetric,
    /// Asymmetric: a copy object is created eagerly and linked with
    /// copy/shadow links; pages are pushed to it before modification and
    /// pulled through it on access (FIGURE 3). Used for externally managed
    /// memory such as mapped files.
    Asymmetric,
}

/// One page resident in the VM page cache.
#[derive(Clone, Debug)]
pub struct ResidentPage {
    /// Contents.
    pub data: PageData,
    /// Maximum access the kernel may grant on this page (the manager's
    /// lock value for external objects).
    pub prot: Access,
    /// Modified since it was supplied / created.
    pub dirty: bool,
    /// A protocol operation (fault completion, push, eviction) is in
    /// flight; the page must not be evicted or flushed underneath it.
    pub busy: bool,
    /// Last access time, for LRU victim selection.
    pub last_use: Time,
}

impl ResidentPage {
    /// A freshly supplied page.
    pub fn new(data: PageData, prot: Access, now: Time) -> ResidentPage {
        ResidentPage {
            data,
            prot,
            dirty: false,
            busy: false,
            last_use: now,
        }
    }
}

/// The resident-page table of one VM object: dense storage indexed by
/// page number.
///
/// This sits on the hottest path in the simulator — every Touch/Read/
/// Write step walks a shadow chain doing one lookup per object — so the
/// page record lives in a flat slot array (`O(1)` index instead of a
/// B-tree descent). Iteration order is ascending page index, exactly the
/// order the previous `BTreeMap<PageIdx, ResidentPage>` iterated in, so
/// the swap is invisible to every deterministic consumer. The trade is
/// memory proportional to the highest resident page index per object;
/// simulated regions are compact, and sparse giants would only pay one
/// `Option` slot per hole.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    slots: Vec<Option<ResidentPage>>,
    resident: usize,
}

impl PageTable {
    /// An empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// The resident page record, if the page is resident.
    #[inline]
    pub fn get(&self, page: &PageIdx) -> Option<&ResidentPage> {
        self.slots.get(page.0 as usize)?.as_ref()
    }

    /// Mutable access to the resident page record.
    #[inline]
    pub fn get_mut(&mut self, page: &PageIdx) -> Option<&mut ResidentPage> {
        self.slots.get_mut(page.0 as usize)?.as_mut()
    }

    /// True if `page` is resident.
    #[inline]
    pub fn contains_key(&self, page: &PageIdx) -> bool {
        self.get(page).is_some()
    }

    /// Makes `page` resident, returning the previous record if any.
    pub fn insert(&mut self, page: PageIdx, rp: ResidentPage) -> Option<ResidentPage> {
        let i = page.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(rp);
        if prev.is_none() {
            self.resident += 1;
        }
        prev
    }

    /// Removes `page`, returning its record if it was resident.
    pub fn remove(&mut self, page: &PageIdx) -> Option<ResidentPage> {
        let prev = self.slots.get_mut(page.0 as usize)?.take();
        if prev.is_some() {
            self.resident -= 1;
        }
        prev
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident
    }

    /// True if no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Drops every resident page.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.resident = 0;
    }

    /// Resident pages in ascending page order.
    pub fn iter(&self) -> impl Iterator<Item = (PageIdx, &ResidentPage)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|rp| (PageIdx(i as u32), rp)))
    }

    /// Resident page records in ascending page order.
    pub fn values(&self) -> impl Iterator<Item = &ResidentPage> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Mutable records in ascending page order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut ResidentPage> {
        self.slots.iter_mut().filter_map(|s| s.as_mut())
    }
}

/// A kernel VM object.
#[derive(Clone, Debug)]
pub struct VmObject {
    /// This object's id within its node.
    pub id: VmObjId,
    /// Object length in pages.
    pub size_pages: u32,
    /// Resident pages.
    pub pages: PageTable,
    /// Backing store.
    pub backing: Backing,
    /// Copy strategy used when this object is delayed-copied.
    pub copy_strategy: CopyStrategy,
    /// Shadow link: where to look for pages this object lacks (toward the
    /// copy's source).
    pub shadow: Option<VmObjId>,
    /// Copy link: the most recent copy object (asymmetric strategy); pushes
    /// target it.
    pub copy: Option<VmObjId>,
    /// Reference count from address-map entries and child shadow links.
    pub refs: u32,
    /// Pages evicted to the default pager (anonymous objects only): the
    /// kernel must re-request them instead of zero-filling.
    pub paged_out: BTreeSet<PageIdx>,
}

impl VmObject {
    /// Creates an object with no pages resident.
    pub fn new(id: VmObjId, size_pages: u32, backing: Backing) -> VmObject {
        let copy_strategy = match backing {
            Backing::Anonymous => CopyStrategy::Symmetric,
            Backing::External(_) => CopyStrategy::Asymmetric,
        };
        VmObject {
            id,
            size_pages,
            pages: PageTable::new(),
            backing,
            copy_strategy,
            shadow: None,
            copy: None,
            refs: 0,
            paged_out: BTreeSet::new(),
        }
    }

    /// The external memory object this VM object represents, if any.
    pub fn mem_obj(&self) -> Option<MemObjId> {
        match self.backing {
            Backing::External(m) => Some(m),
            Backing::Anonymous => None,
        }
    }

    /// True if `page` is resident.
    pub fn resident(&self, page: PageIdx) -> bool {
        self.pages.contains_key(&page)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.pages.len()
    }

    /// Write-protects every resident page (used when a delayed copy is
    /// created, so the next write faults and triggers a push).
    pub fn write_protect_all(&mut self) -> u32 {
        let mut n = 0;
        for rp in self.pages.values_mut() {
            if rp.prot == Access::Write {
                rp.prot = Access::Read;
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_follows_backing() {
        let a = VmObject::new(VmObjId(1), 4, Backing::Anonymous);
        assert_eq!(a.copy_strategy, CopyStrategy::Symmetric);
        let e = VmObject::new(VmObjId(2), 4, Backing::External(MemObjId(9)));
        assert_eq!(e.copy_strategy, CopyStrategy::Asymmetric);
        assert_eq!(e.mem_obj(), Some(MemObjId(9)));
        assert_eq!(a.mem_obj(), None);
    }

    #[test]
    fn write_protect_counts_downgrades() {
        let mut o = VmObject::new(VmObjId(1), 4, Backing::Anonymous);
        o.pages.insert(
            PageIdx(0),
            ResidentPage::new(PageData::Zero, Access::Write, Time::ZERO),
        );
        o.pages.insert(
            PageIdx(1),
            ResidentPage::new(PageData::Zero, Access::Read, Time::ZERO),
        );
        assert_eq!(o.write_protect_all(), 1);
        assert!(o.pages.values().all(|p| p.prot == Access::Read));
    }
}
