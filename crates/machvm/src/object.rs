//! VM objects: the kernel-side representation of memory, with shadow and
//! copy links implementing Mach's delayed-copy strategies (§2.2 of the
//! paper).

use std::collections::{BTreeMap, BTreeSet};

use svmsim::Time;

use crate::ids::{Access, MemObjId, PageIdx, VmObjId};
use crate::pagedata::PageData;

/// What backs a VM object when its pages are not resident.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backing {
    /// Zero-filled on first touch; evicted pages go to the default pager.
    Anonymous,
    /// Backed by an external memory object (a pager task, possibly behind
    /// an XMM or ASVM layer).
    External(MemObjId),
}

/// Which delayed-copy strategy applies when this object is copied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyStrategy {
    /// Symmetric: source and copy keep referencing the object; whichever
    /// side writes first gets a fresh shadow object (FIGURE 2). The source
    /// object's contents freeze. Used when changes need not reach a pager.
    Symmetric,
    /// Asymmetric: a copy object is created eagerly and linked with
    /// copy/shadow links; pages are pushed to it before modification and
    /// pulled through it on access (FIGURE 3). Used for externally managed
    /// memory such as mapped files.
    Asymmetric,
}

/// One page resident in the VM page cache.
#[derive(Clone, Debug)]
pub struct ResidentPage {
    /// Contents.
    pub data: PageData,
    /// Maximum access the kernel may grant on this page (the manager's
    /// lock value for external objects).
    pub prot: Access,
    /// Modified since it was supplied / created.
    pub dirty: bool,
    /// A protocol operation (fault completion, push, eviction) is in
    /// flight; the page must not be evicted or flushed underneath it.
    pub busy: bool,
    /// Last access time, for LRU victim selection.
    pub last_use: Time,
}

impl ResidentPage {
    /// A freshly supplied page.
    pub fn new(data: PageData, prot: Access, now: Time) -> ResidentPage {
        ResidentPage {
            data,
            prot,
            dirty: false,
            busy: false,
            last_use: now,
        }
    }
}

/// A kernel VM object.
#[derive(Clone, Debug)]
pub struct VmObject {
    /// This object's id within its node.
    pub id: VmObjId,
    /// Object length in pages.
    pub size_pages: u32,
    /// Resident pages.
    pub pages: BTreeMap<PageIdx, ResidentPage>,
    /// Backing store.
    pub backing: Backing,
    /// Copy strategy used when this object is delayed-copied.
    pub copy_strategy: CopyStrategy,
    /// Shadow link: where to look for pages this object lacks (toward the
    /// copy's source).
    pub shadow: Option<VmObjId>,
    /// Copy link: the most recent copy object (asymmetric strategy); pushes
    /// target it.
    pub copy: Option<VmObjId>,
    /// Reference count from address-map entries and child shadow links.
    pub refs: u32,
    /// Pages evicted to the default pager (anonymous objects only): the
    /// kernel must re-request them instead of zero-filling.
    pub paged_out: BTreeSet<PageIdx>,
}

impl VmObject {
    /// Creates an object with no pages resident.
    pub fn new(id: VmObjId, size_pages: u32, backing: Backing) -> VmObject {
        let copy_strategy = match backing {
            Backing::Anonymous => CopyStrategy::Symmetric,
            Backing::External(_) => CopyStrategy::Asymmetric,
        };
        VmObject {
            id,
            size_pages,
            pages: BTreeMap::new(),
            backing,
            copy_strategy,
            shadow: None,
            copy: None,
            refs: 0,
            paged_out: BTreeSet::new(),
        }
    }

    /// The external memory object this VM object represents, if any.
    pub fn mem_obj(&self) -> Option<MemObjId> {
        match self.backing {
            Backing::External(m) => Some(m),
            Backing::Anonymous => None,
        }
    }

    /// True if `page` is resident.
    pub fn resident(&self, page: PageIdx) -> bool {
        self.pages.contains_key(&page)
    }

    /// Number of resident pages.
    pub fn resident_count(&self) -> usize {
        self.pages.len()
    }

    /// Write-protects every resident page (used when a delayed copy is
    /// created, so the next write faults and triggers a push).
    pub fn write_protect_all(&mut self) -> u32 {
        let mut n = 0;
        for rp in self.pages.values_mut() {
            if rp.prot == Access::Write {
                rp.prot = Access::Read;
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_follows_backing() {
        let a = VmObject::new(VmObjId(1), 4, Backing::Anonymous);
        assert_eq!(a.copy_strategy, CopyStrategy::Symmetric);
        let e = VmObject::new(VmObjId(2), 4, Backing::External(MemObjId(9)));
        assert_eq!(e.copy_strategy, CopyStrategy::Asymmetric);
        assert_eq!(e.mem_obj(), Some(MemObjId(9)));
        assert_eq!(a.mem_obj(), None);
    }

    #[test]
    fn write_protect_counts_downgrades() {
        let mut o = VmObject::new(VmObjId(1), 4, Backing::Anonymous);
        o.pages.insert(
            PageIdx(0),
            ResidentPage::new(PageData::Zero, Access::Write, Time::ZERO),
        );
        o.pages.insert(
            PageIdx(1),
            ResidentPage::new(PageData::Zero, Access::Read, Time::ZERO),
        );
        assert_eq!(o.write_protect_all(), 1);
        assert!(o.pages.values().all(|p| p.prot == Access::Read));
    }
}
