//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! carries its own benchmark harness: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (with [`BenchmarkGroup::sample_size`]),
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples; a sample runs the closure enough times to last
//! roughly a millisecond (or once, for slow closures). Mean, min and max
//! per-iteration times are printed to stdout. No statistics beyond that —
//! the numbers seed `BENCH_*.json` trajectories, they are not a
//! publication-grade harness.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 50;
const TARGET_SAMPLE: Duration = Duration::from_millis(1);

/// Drives closure timing for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Mean/min/max per-iteration durations, filled by [`Bencher::iter`].
    result: Option<(Duration, Duration, Duration)>,
}

impl Bencher {
    /// Times `f`, recording per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: how many iterations fill the target
        // sample duration?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            let d = t.elapsed() / per_sample;
            min = min.min(d);
            max = max.max(d);
            total += d;
        }
        self.result = Some((total / self.samples as u32, min, max));
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, min, max)) => println!(
            "{id:<40} time: [{} {} {}]",
            fmt_dur(min),
            fmt_dur(mean),
            fmt_dur(max)
        ),
        None => println!("{id:<40} (no measurement)"),
    }
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_prints() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("spin", |b| {
            b.iter(|| (0..100u64).fold(0u64, |a, x| a.wrapping_add(x)))
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_dur(Duration::from_nanos(5)), "5 ns");
        assert!(fmt_dur(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(50)).ends_with(" s"));
    }
}
