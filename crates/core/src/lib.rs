//! `asvm` — the Advanced Shared Virtual Memory system.
//!
//! This crate is the paper's primary contribution: a distributed memory
//! manager for the Mach microkernel that replaces the centralized-manager
//! XMM design with
//!
//! * a **dynamic distributed manager** — each page has an *owner* (the node
//!   that most recently had write access), distinct from the *ownership
//!   managers* that forward requests to it;
//! * three layered **forwarding strategies** (dynamic hint caches → fixed
//!   distributed static managers with `fresh`/`paged` hints → global walk),
//!   individually switchable per memory object;
//! * page state tied to **resident pages only**, so memory use never grows
//!   with address-space size times node count;
//! * fully **asynchronous state transitions** — no thread ever blocks on a
//!   remote operation;
//! * a compact **ASVM protocol** (32-byte headers, at most one page of
//!   payload) over the dedicated STS transport;
//! * **internode paging** — the memory of all nodes mapping an object forms
//!   a cache for it, with the four-step eviction algorithm of §3.6;
//! * **distributed delayed copies** — version-counted push/pull operations
//!   extending Mach's asymmetric copy strategy across nodes, using the five
//!   EMMI extensions of §3.7.1.
//!
//! The crate is sans-IO: [`AsvmNode`] consumes local EMMI calls, peer
//! protocol messages and pager replies, mutates the co-located
//! [`machvm::VmSystem`], and emits sends/CPU charges through [`Fx`]. The
//! `cluster` crate binds it to the simulated machine.

// State-machine entry points naturally thread (object, node, cost, time,
// vm, ...) through; splitting them into context structs would obscure the
// protocol flow the paper describes.
#![allow(clippy::too_many_arguments)]

pub mod coalesce;
pub mod config;
pub mod copymgmt;
pub mod locks;
pub mod lru;
pub mod node;
pub mod object;
pub mod policy;
pub mod prefetch;
pub mod protocol;
pub mod retry;

#[cfg(test)]
mod node_tests;

pub use coalesce::{FrameBody, FrameCombiner, OwnerHintEntry};
pub use config::{AsvmConfig, CoalesceCfg, ForwardCfg};
pub use locks::{HeldLock, PageRange, RangeLockMgr};
pub use lru::Lru;
pub use node::{AsvmNode, Fx};
pub use object::{
    AsvmObject, Busy, EvictStage, PageInfo, PendingLocal, QueuedReq, RecoverState, StaticHint,
};
pub use policy::{
    AccelBase, Observation, PolicyCfg, PolicyMode, PolicyState, PolicyVerdict, PrefetchVerdict,
};
pub use prefetch::{PrefetchCfg, StreamDetector};
pub use protocol::{AsvmMsg, NetSend, PagerSend, ReqKind, ReqPath};
pub use retry::{Accepted, LinkReceiver, LinkSender, RetryConfig, TimeoutVerdict};

use machvm::MemObjId;
use svmsim::NodeId;

/// Declares that `copy_mobj` is a distributed delayed copy of
/// `source_mobj`, created on `peer` (which maps the source and therefore
/// serves pull requests, §3.7.3). Call on each node that registers the
/// copy object. Pure bookkeeping: version counters are maintained by the
/// `CopyMade` settle protocol.
pub fn declare_copy_link(
    node: &mut AsvmNode,
    copy_mobj: MemObjId,
    source_mobj: Option<MemObjId>,
    peer: Option<NodeId>,
) {
    copymgmt::declare_copy_link(node, copy_mobj, source_mobj, peer);
}
