//! Per-node, per-memory-object ASVM state.
//!
//! The paper's memory rule (§3.1): a node only holds page state for pages
//! cached in its physical memory. [`PageInfo`] entries therefore exist only
//! for locally resident pages (plus short-lived transitional records while
//! an eviction or transfer is in flight), and all forwarding knowledge
//! lives in bounded LRU caches.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use machvm::{Access, MemObjId, PageData, PageIdx, VmObjId};
use svmsim::{NodeId, Time};

use crate::config::AsvmConfig;
use crate::lru::Lru;
use crate::protocol::ReqKind;

/// A request parked while the page is busy or while its owner is unknown.
#[derive(Clone, Debug)]
pub struct QueuedReq {
    /// Requested access.
    pub access: Access,
    /// Requesting node.
    pub origin: NodeId,
    /// The requester's VM object (reply-routing token).
    pub origin_obj: VmObjId,
    /// The requester claims to hold a read copy.
    pub has_copy: bool,
    /// Normal access or push scan.
    pub kind: ReqKind,
    /// Pull lookup on behalf of this copy object (§3.7.3), if any.
    pub deliver: Option<MemObjId>,
}

/// Stage of an internode pageout (paper §3.6).
#[derive(Clone, Debug)]
pub enum EvictStage {
    /// Step 2: asking readers, one after another, whether they still hold
    /// the page.
    CheckingReaders {
        /// The reader currently being asked.
        current: NodeId,
        /// Readers not yet asked.
        remaining: Vec<NodeId>,
    },
    /// Step 3: asking a node with mapped memory to accept the page.
    Asking {
        /// The candidate currently being asked.
        candidate: NodeId,
        /// Whether the most-recent-acceptor fallback was already tried.
        tried_last_accept: bool,
    },
}

/// In-flight protocol operation pinning a page's state.
#[derive(Clone, Debug)]
pub enum Busy {
    /// Transition 6: invalidating readers before granting write access
    /// (and ownership) to another node.
    WriteTransfer {
        /// The node receiving write access.
        to: NodeId,
        /// The requester claimed a read copy when the request left it, so
        /// the grant may elide the page contents (checked against our
        /// reader list when the transfer completes).
        to_has_copy: bool,
        /// Acks still outstanding.
        pending_acks: BTreeSet<NodeId>,
    },
    /// Transition 7: invalidating readers before upgrading our own access.
    LocalUpgrade {
        /// Acks still outstanding.
        pending_acks: BTreeSet<NodeId>,
    },
    /// Internode pageout in progress; the contents were already removed
    /// from the VM cache and are held here.
    Evict {
        /// The page contents.
        data: PageData,
        /// Whether they differ from the pager's version.
        dirty: bool,
        /// Current stage.
        stage: EvictStage,
    },
    /// We answered a read-check positively and are waiting for the
    /// ownership transfer; the page is pinned against eviction.
    AwaitingOwnership,
    /// A push operation is collecting acknowledgements from sharing nodes
    /// before write access is granted (§3.7.2).
    Push {
        /// Nodes that have not yet completed their local push.
        pending: BTreeSet<NodeId>,
        /// The write request to serve once the push completes.
        resume: Box<QueuedReq>,
    },
}

/// ASVM state for one page on one node.
#[derive(Clone, Debug)]
pub struct PageInfo {
    /// Access level the local VM cache holds.
    pub access: Access,
    /// This node is the page owner.
    pub owner: bool,
    /// Nodes holding read copies (meaningful only when `owner`).
    pub readers: BTreeSet<NodeId>,
    /// Delayed-copy page version (paper §3.7.2).
    pub version: u64,
    /// The distributed page differs from the pager's version.
    pub dirty: bool,
    /// In-flight operation, if any.
    pub busy: Option<Busy>,
    /// Requests parked on this page while busy.
    pub queued: VecDeque<QueuedReq>,
}

impl PageInfo {
    /// A fresh record with the given access and ownership.
    pub fn new(access: Access, owner: bool, version: u64) -> PageInfo {
        PageInfo {
            access,
            owner,
            readers: BTreeSet::new(),
            version,
            dirty: false,
            busy: None,
            queued: VecDeque::new(),
        }
    }
}

/// A read copy the VM silently discarded (internode pageout step 1)
/// while our own upgrade request for the page — which claimed the copy —
/// was still in flight. The owner may honour that claim and elide the
/// page contents from the ownership grant, so the contents are kept here
/// until the grant arrives. Sound because an elided grant implies this
/// node stayed in the owner's reader list the whole time: any
/// intervening write would have invalidated us out of it, and then the
/// grant carries data.
#[derive(Clone, Debug)]
pub struct StashedCopy {
    /// The discarded page contents.
    pub data: PageData,
    /// The page version the copy had (must match an elided grant's).
    pub version: u64,
}

/// Our own outstanding request for a page.
#[derive(Clone, Copy, Debug)]
pub struct PendingLocal {
    /// Access requested.
    pub access: Access,
    /// We held a read copy when the request left.
    pub has_copy: bool,
    /// When the request (or its latest watchdog re-issue) left this node.
    pub issued: Time,
    /// Watchdog re-issues so far (bounded by `ForwardCfg::retry_budget`).
    pub retries: u8,
    /// Issued by the prefetch engine ahead of any demand fault; cleared
    /// (and counted `asvm.prefetch.late`) when a demand fault catches up
    /// with the request in flight. See [`crate::prefetch`].
    pub speculative: bool,
}

/// Ownership reconstruction in progress at a static manager (or the node
/// that inherited the role) for one page whose owner is suspected dead.
#[derive(Debug)]
pub struct RecoverState {
    /// Members whose [`crate::protocol::AsvmMsg::RecoverReply`] is still
    /// outstanding.
    pub expect: BTreeSet<NodeId>,
    /// Best surviving copy seen so far: `(version, holder)`, highest
    /// version winning and ties going to the lowest node id.
    pub best: Option<(u64, NodeId)>,
    /// All members that reported a usable copy.
    pub holders: BTreeSet<NodeId>,
    /// A member that reported itself as the live owner.
    pub owner: Option<NodeId>,
    /// Requests parked until reconstruction resolves.
    pub waiting: Vec<QueuedReq>,
}

/// Static-ownership-manager knowledge about a page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StaticHint {
    /// This node owns the page (last we heard).
    Owner(NodeId),
    /// The page was returned to the pager.
    Paged,
}

/// Per-node representation of one ASVM-managed memory object.
#[derive(Debug)]
pub struct AsvmObject {
    /// The distributed memory object.
    pub mobj: MemObjId,
    /// The local VM object representing it.
    pub vm_obj: VmObjId,
    /// Object length in pages.
    pub size_pages: u32,
    /// Creation node; membership authority.
    pub home: NodeId,
    /// I/O node hosting the backing pager.
    pub pager_node: NodeId,
    /// Striped backing (§6 future work): pager nodes used round-robin by
    /// page. Contains just `pager_node` for a conventional object.
    pub stripe: Vec<NodeId>,
    /// Forwarding configuration.
    pub cfg: AsvmConfig,
    /// All nodes that have mapped the object, sorted (kept consistent by
    /// home-node broadcasts).
    pub nodes: Vec<NodeId>,
    /// Page state (resident/owned pages only).
    pub pages: BTreeMap<PageIdx, PageInfo>,
    /// Our own outstanding requests.
    pub pending: BTreeMap<PageIdx, PendingLocal>,
    /// Read copies discarded by the VM while an upgrade request claiming
    /// them was in flight (see [`StashedCopy`]); consumed when the grant
    /// arrives.
    pub stash: BTreeMap<PageIdx, StashedCopy>,
    /// Requests from others that will be servable once our own pending
    /// write/fill completes.
    pub fill_waiters: BTreeMap<PageIdx, Vec<QueuedReq>>,
    /// Dynamic forwarding hints (most recent presumed owner).
    pub dyn_cache: Lru<PageIdx, NodeId>,
    /// Static-manager hint cache (for pages this node statically manages).
    pub static_cache: Lru<PageIdx, StaticHint>,
    /// Pager fills in flight, recorded at the static manager so that
    /// concurrent no-owner requests serialize instead of racing to the
    /// pager.
    pub static_filling: BTreeMap<PageIdx, NodeId>,
    /// Requests parked at the static manager until a fill completes.
    pub static_waiting: BTreeMap<PageIdx, Vec<QueuedReq>>,
    /// Pages that have ever had an owner (distinguishes `fresh` from
    /// merely-unknown while no hint has been evicted).
    pub static_seen: BTreeSet<PageIdx>,
    /// The `fresh` fast path is sound: membership has not changed since
    /// setup, so "never seen at the static manager" really means "no owner
    /// anywhere". Runtime membership changes (forks) clear it; unknown
    /// pages then take the global walk, which finds owners the (moved)
    /// static managers never heard about.
    pub fresh_valid: bool,
    /// Pages whose transfer we accepted and are waiting to receive
    /// (internode pageout step 3); requests park until the page lands.
    pub incoming_transfer: BTreeSet<PageIdx>,
    /// Delayed-copy object version counter (incremented per copy).
    pub version: u64,
    /// Internode pageout cycling counter (§3.6 step 3).
    pub pageout_counter: usize,
    /// Node that most recently accepted a page transfer from us.
    pub last_accept: Option<NodeId>,
    /// Distributed delayed copy: the node where this copy object was
    /// created ("peer node", §3.7.3), which maps the source object.
    pub peer: Option<NodeId>,
    /// Distributed delayed copy: the source object this object was copied
    /// from.
    pub source: Option<MemObjId>,
    /// Distributed copy objects made from this object.
    pub copies: Vec<MemObjId>,
    /// Pull requests whose local shadow-chain traversal
    /// (`memory_object_pull_request`) is in flight.
    pub pull_in_flight: BTreeMap<PageIdx, Vec<QueuedReq>>,
    /// Copy notifications being settled at the home node: the copying node
    /// and the members whose acknowledgement is still outstanding.
    pub copy_settles: Vec<(NodeId, BTreeSet<NodeId>)>,
    /// Range-lock manager (home node only; §6 future work).
    pub range_locks: crate::locks::RangeLockMgr,
    /// Online per-object policy state (inert unless `cfg.policy.enabled`):
    /// traffic-window accumulators and the hysteresis ledger driving
    /// runtime switches of this node's forwarding/coalescing choices for
    /// the object. See [`crate::policy`].
    pub policy: crate::policy::PolicyState,
    /// Local fault-stream detector driving data prefetch (inert unless
    /// `cfg.prefetch.enabled`). See [`crate::prefetch`].
    pub local_stream: crate::prefetch::StreamDetector,
    /// Per-peer request-stream detectors driving hint prefetch: arriving
    /// demand requests advance the origin node's detector, and frames
    /// flowing back to it carry owner hints for its predicted window.
    /// Populated only when `cfg.prefetch.hints` is on.
    pub peer_streams: BTreeMap<NodeId, crate::prefetch::StreamDetector>,
    /// Speculatively filled pages no demand access has consumed yet:
    /// removed with `asvm.prefetch.hit` on first demand use, or with
    /// `asvm.prefetch.wasted` when invalidation/eviction takes the page
    /// first.
    pub prefetched: BTreeSet<PageIdx>,
    /// Members of this object suspected dead by the failure detector.
    /// Persists across quiescence — suspicion is evidence, not state to
    /// drain.
    pub suspects: BTreeSet<NodeId>,
    /// Ownership reconstructions in flight (must be empty at quiescence).
    pub recover: BTreeMap<PageIdx, RecoverState>,
}

impl AsvmObject {
    /// Creates the local representation of `mobj`.
    pub fn new(
        mobj: MemObjId,
        vm_obj: VmObjId,
        size_pages: u32,
        home: NodeId,
        pager_node: NodeId,
        me: NodeId,
        cfg: AsvmConfig,
    ) -> AsvmObject {
        let mut nodes = vec![home];
        if me != home {
            nodes.push(me);
            nodes.sort();
        }
        // Under a live policy the configuration must agree with the mode
        // the policy believes it holds: apply the starting mode up front
        // (a no-op for a Dynamic start, which keeps its configured
        // accelerants; a Static/Global start has them stripped until read
        // evidence upgrades the object). The accelerant base is snapshotted
        // first so an upgrade knows what to restore.
        let base = crate::policy::AccelBase::of(&cfg);
        let mode = crate::policy::PolicyMode::of(&cfg);
        let mut cfg = cfg;
        if cfg.policy.enabled {
            mode.apply(&mut cfg, base);
        }
        AsvmObject {
            mobj,
            vm_obj,
            size_pages,
            home,
            pager_node,
            stripe: vec![pager_node],
            cfg,
            nodes,
            pages: BTreeMap::new(),
            pending: BTreeMap::new(),
            stash: BTreeMap::new(),
            fill_waiters: BTreeMap::new(),
            dyn_cache: Lru::new(cfg.dynamic_cache_entries),
            static_cache: Lru::new(cfg.static_cache_entries),
            static_filling: BTreeMap::new(),
            static_waiting: BTreeMap::new(),
            static_seen: BTreeSet::new(),
            fresh_valid: true,
            incoming_transfer: BTreeSet::new(),
            version: 0,
            pageout_counter: 0,
            last_accept: None,
            peer: None,
            source: None,
            copies: Vec::new(),
            pull_in_flight: BTreeMap::new(),
            copy_settles: Vec::new(),
            range_locks: crate::locks::RangeLockMgr::default(),
            policy: crate::policy::PolicyState::new(cfg.policy, mode, base),
            local_stream: crate::prefetch::StreamDetector::default(),
            peer_streams: BTreeMap::new(),
            prefetched: BTreeSet::new(),
            suspects: BTreeSet::new(),
            recover: BTreeMap::new(),
        }
    }

    /// True if this node's local copy chain below the object still needs
    /// `page` pushed into it (the copy object exists and lacks the page).
    pub fn has_local_copy_needing(&self, vm: &machvm::VmSystem, page: PageIdx) -> bool {
        let src = vm.object(self.vm_obj);
        match src.copy {
            Some(c) => {
                let copy = vm.object(c);
                !copy.resident(page) && !copy.paged_out.contains(&page)
            }
            None => false,
        }
    }

    /// The static ownership manager for `page`: a fixed hash of the page
    /// number over the object's membership.
    pub fn static_node(&self, page: PageIdx) -> NodeId {
        assert!(!self.nodes.is_empty(), "object with empty membership");
        self.nodes[page.0 as usize % self.nodes.len()]
    }

    /// [`AsvmObject::static_node`] with failover: when the hashed manager
    /// is suspected dead, the role rehashes to the next live member in
    /// membership order. With no suspects this is exactly `static_node`;
    /// with every member suspected it degenerates to the original hash
    /// (the caller falls back to the pager in that regime anyway).
    pub fn static_node_live(&self, page: PageIdx) -> NodeId {
        assert!(!self.nodes.is_empty(), "object with empty membership");
        let n = self.nodes.len();
        let start = page.0 as usize % n;
        for i in 0..n {
            let cand = self.nodes[(start + i) % n];
            if !self.suspects.contains(&cand) {
                return cand;
            }
        }
        self.nodes[start]
    }

    /// The pager serving `page`: round-robin over the stripe set (§6
    /// future work — *"multiple pagers for one VM object that are used for
    /// paging requests in a round-robin fashion"*).
    pub fn pager_for(&self, page: PageIdx) -> NodeId {
        self.stripe[page.0 as usize % self.stripe.len()]
    }

    /// Approximate bytes of non-pageable memory this node spends on the
    /// object's distributed-memory state (for the memory ablation).
    pub fn state_bytes(&self) -> usize {
        use std::mem::size_of;
        self.pages.len() * (size_of::<PageIdx>() + size_of::<PageInfo>())
            + self
                .pages
                .values()
                .map(|p| p.readers.len() * 2)
                .sum::<usize>()
            + self.dyn_cache.len() * (size_of::<PageIdx>() + size_of::<NodeId>() + 8)
            + self.static_cache.len() * (size_of::<PageIdx>() + size_of::<StaticHint>() + 8)
            + self.static_seen.len() * size_of::<PageIdx>()
            + self.nodes.len() * size_of::<NodeId>()
            + self.peer_streams.len()
                * (size_of::<NodeId>() + size_of::<crate::prefetch::StreamDetector>())
            + self.prefetched.len() * size_of::<PageIdx>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(me: u16, home: u16) -> AsvmObject {
        AsvmObject::new(
            MemObjId(1),
            VmObjId(1),
            64,
            NodeId(home),
            NodeId(9),
            NodeId(me),
            AsvmConfig::default(),
        )
    }

    #[test]
    fn initial_membership_contains_home_and_self() {
        let o = obj(2, 0);
        assert_eq!(o.nodes, vec![NodeId(0), NodeId(2)]);
        let h = obj(0, 0);
        assert_eq!(h.nodes, vec![NodeId(0)]);
    }

    #[test]
    fn static_manager_is_deterministic_hash() {
        let mut o = obj(0, 0);
        o.nodes = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        assert_eq!(o.static_node(PageIdx(0)), NodeId(0));
        assert_eq!(o.static_node(PageIdx(5)), NodeId(1));
        assert_eq!(o.static_node(PageIdx(7)), NodeId(3));
    }

    #[test]
    fn static_role_rehashes_past_suspects() {
        let mut o = obj(0, 0);
        o.nodes = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)];
        // No suspects: identical to the plain hash.
        assert_eq!(o.static_node_live(PageIdx(5)), o.static_node(PageIdx(5)));
        // The hashed manager died: the role moves to its successor.
        o.suspects.insert(NodeId(1));
        assert_eq!(o.static_node_live(PageIdx(5)), NodeId(2));
        // Successor also dead: keep walking.
        o.suspects.insert(NodeId(2));
        assert_eq!(o.static_node_live(PageIdx(5)), NodeId(3));
        // Everyone suspected: fall back to the original hash.
        o.suspects.extend([NodeId(0), NodeId(3)]);
        assert_eq!(o.static_node_live(PageIdx(5)), NodeId(1));
    }

    #[test]
    fn state_bytes_grows_with_resident_pages_only() {
        let mut o = obj(0, 0);
        let empty = o.state_bytes();
        o.pages
            .insert(PageIdx(0), PageInfo::new(Access::Read, true, 0));
        assert!(o.state_bytes() > empty);
        // Crucially: no term proportional to size_pages.
        let mut big = obj(0, 0);
        big.size_pages = 1 << 20;
        assert_eq!(big.state_bytes(), empty);
    }
}
