//! Online per-object strategy selection.
//!
//! The paper's configuration hook — each forwarding strategy *"can be
//! disabled per memory object"* — is a static knob: whoever maps the
//! object picks a [`crate::AsvmConfig`] and lives with it. The measured
//! trade-offs (see `EXPERIMENTS.md`, forwarding ablation) show there is no
//! single winner: write-heavy migratory sharing is fastest with dynamic
//! hints *disabled* (every ownership hop invalidates the hint caches the
//! next request chases), read-fanout sharing is fastest with them enabled,
//! and message coalescing helps exactly the read-fanout shapes while
//! slightly hurting migratory ones. A host running thousands of objects
//! with skewed popularity cannot pick one configuration that suits them
//! all.
//!
//! [`PolicyState`] closes the loop *per object, per node*: it watches the
//! object's own traffic — local faults and arriving remote requests — in
//! fixed-size observation windows and, with hysteresis, switches the
//! object between three modes:
//!
//! * [`PolicyMode::Dynamic`] — dynamic + static forwarding (the full ASVM
//!   default) plus the object's configured *speculation accelerants*:
//!   readahead and, where the transport supports it, coalescing. Best for
//!   read-mostly fan-out — sequential readers are exactly what §6's read
//!   clustering prefetches for, and the prefetch bursts are what
//!   coalescing packs.
//! * [`PolicyMode::Static`] — static + global only (Kai Li's fixed
//!   distributed manager), speculation stripped: best for write-heavy
//!   migratory sharing, where prefetched neighbours are invalidated
//!   before they are read and every speculative frame is pure cost.
//! * [`PolicyMode::Global`] — global only, the zero-hint-state
//!   configuration, chosen when the object has at most one other member
//!   and forwarding strategy cannot matter.
//!
//! Mode changes are *consultation* choices only — which forwarding layer
//! to ask first, whether to speculatively request extra pages, whether to
//! pack frames. The static managers' safety record ([`crate::AsvmNode`]'s
//! `OwnerHint` maintenance) is unconditional in every configuration,
//! global forwarding always remains as the final fallback, and each node
//! adapts its own replica of the object independently — a cluster where
//! node A routes object X dynamically while node B routes it statically
//! is exactly as correct as any mixed static configuration (the
//! `adaptive_policy_preserves_final_state` parity proptest pins this).
//!
//! Costs are visible: every closed window bumps `asvm.policy.observe` and
//! every applied mode change bumps `asvm.policy.switch`. A workload whose
//! phase flips faster than `window × hysteresis` observations makes the
//! policy churn — high `asvm.policy.switch` with no speedup — which the
//! `tenants` bench reports as an honest counter-case.
//!
//! # Example
//!
//! The state machine itself is pure and host-independent: feed it
//! observations, apply the verdicts.
//!
//! ```
//! use asvm::policy::{AccelBase, Observation, PolicyCfg, PolicyMode, PolicyState, PolicyVerdict};
//!
//! let cfg = PolicyCfg {
//!     enabled: true,
//!     window: 4,
//!     hysteresis: 2,
//!     ..PolicyCfg::default()
//! };
//! // The accelerants Dynamic mode restores — normally captured from the
//! // object's configuration with `AccelBase::of`.
//! let base = AccelBase { coalesce: true, readahead: 4 };
//! let mut p = PolicyState::new(cfg, PolicyMode::Dynamic, base);
//!
//! // A write-heavy phase on a widely shared object: each window of 4
//! // observations recommends Static, but the switch only lands after the
//! // recommendation repeats for `hysteresis` consecutive windows.
//! let mut switched_at = None;
//! for i in 0..8 {
//!     let verdict = p.record(4, Observation::LocalFault { write: true });
//!     if let PolicyVerdict::Switch(mode) = verdict {
//!         assert_eq!(mode, PolicyMode::Static);
//!         switched_at = Some(i);
//!     }
//! }
//! // Window 1 (obs 0..4) recommends Static, window 2 (obs 4..8) repeats
//! // it: the switch fires on the 8th observation, not the 4th.
//! assert_eq!(switched_at, Some(7));
//! assert_eq!(p.mode(), PolicyMode::Static);
//!
//! // Read-mostly traffic now recommends Dynamic, again with hysteresis.
//! for _ in 0..16 {
//!     p.record(4, Observation::RemoteReq { write: false });
//! }
//! assert_eq!(p.mode(), PolicyMode::Dynamic);
//! ```

use crate::config::AsvmConfig;

/// Tunables of the online per-object policy (off by default: the policy
/// layer is opt-in, and a disabled policy records nothing, bumps nothing
/// and never touches the object's configuration, keeping baseline runs
/// byte-identical).
#[derive(Clone, Copy, Debug)]
pub struct PolicyCfg {
    /// Master switch.
    pub enabled: bool,
    /// Observations (local faults + arriving remote requests) per
    /// evaluation window. Windows are event-counted, not timed, so the
    /// policy adds no simulator events and adapts at the speed the object
    /// is actually used: hot objects converge quickly, cold objects never
    /// churn.
    pub window: u32,
    /// Consecutive windows that must repeat a recommendation before it is
    /// applied. 1 switches on every disagreeing window; the default of 2
    /// absorbs a single anomalous window.
    pub hysteresis: u8,
    /// Write fraction (percent of observed accesses that want write
    /// access) at or above which the window recommends
    /// [`PolicyMode::Static`]. The forwarding ablation's crossover:
    /// migratory (all-write) sharing ran 2.24 → 2.11 ms/fault when
    /// dynamic hints were disabled, while read-fanout shapes prefer them.
    pub write_threshold_pct: u32,
    /// Let the policy toggle the object's `CoalesceCfg::enabled` along
    /// with the mode (restored to its configured base in Dynamic, off
    /// otherwise). Only bites on transports that support coalescing;
    /// disable to adapt forwarding alone.
    pub manage_coalesce: bool,
    /// Let the policy toggle the object's readahead along with the mode
    /// (restored to its configured base in Dynamic, zero otherwise). The
    /// tenants sweep's motivating asymmetry: prefetch cuts a sequential
    /// reader's faults by a third but is pure frame cost on a write-heavy
    /// object, whose prefetched neighbours are invalidated unread.
    pub manage_readahead: bool,
}

impl Default for PolicyCfg {
    fn default() -> PolicyCfg {
        PolicyCfg {
            enabled: false,
            window: 48,
            hysteresis: 2,
            write_threshold_pct: 50,
            manage_coalesce: true,
            manage_readahead: true,
        }
    }
}

impl PolicyCfg {
    /// The policy switched on with the default window and hysteresis.
    pub fn on() -> PolicyCfg {
        PolicyCfg {
            enabled: true,
            ..PolicyCfg::default()
        }
    }
}

/// The speculation accelerants [`PolicyMode::Dynamic`] restores: a
/// snapshot of the object's *configured* coalescing and readahead
/// settings, captured (via [`AccelBase::of`]) before the policy starts
/// rewriting them. Without the snapshot a Dynamic → Static → Dynamic
/// round trip would forget what "on" meant for this object.
#[derive(Clone, Copy, Debug)]
pub struct AccelBase {
    /// The configured `CoalesceCfg::enabled`.
    pub coalesce: bool,
    /// The configured readahead depth in pages.
    pub readahead: u32,
}

impl AccelBase {
    /// Snapshots `cfg`'s accelerant settings.
    pub fn of(cfg: &AsvmConfig) -> AccelBase {
        AccelBase {
            coalesce: cfg.coalesce.enabled,
            readahead: cfg.readahead,
        }
    }
}

/// The three per-object configurations the policy switches between.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyMode {
    /// Dynamic + static forwarding, coalescing on (where managed): the
    /// full ASVM default, best for read-mostly fan-out.
    Dynamic,
    /// Static + global forwarding only (the fixed distributed manager),
    /// coalescing off: best for write-heavy migratory sharing.
    Static,
    /// Global forwarding only, the zero-hint-state configuration for
    /// objects where forwarding strategy cannot matter (at most one other
    /// member).
    Global,
}

impl PolicyMode {
    /// The mode a configuration's forwarding switches express.
    pub fn of(cfg: &AsvmConfig) -> PolicyMode {
        match (cfg.dynamic_forwarding, cfg.static_forwarding) {
            (true, _) => PolicyMode::Dynamic,
            (false, true) => PolicyMode::Static,
            (false, false) => PolicyMode::Global,
        }
    }

    /// Rewrites `cfg`'s forwarding switches to this mode and — gated on
    /// `cfg.policy`'s `manage_coalesce` / `manage_readahead` flags —
    /// restores the accelerants in `base` (Dynamic) or strips them
    /// (Static/Global). Every other knob — cache capacities, watchdog
    /// parameters — is preserved.
    pub fn apply(self, cfg: &mut AsvmConfig, base: AccelBase) {
        let (dynamic, statik) = match self {
            PolicyMode::Dynamic => (true, true),
            PolicyMode::Static => (false, true),
            PolicyMode::Global => (false, false),
        };
        cfg.dynamic_forwarding = dynamic;
        cfg.static_forwarding = statik;
        let speculate = self == PolicyMode::Dynamic;
        if cfg.policy.manage_coalesce {
            cfg.coalesce.enabled = speculate && base.coalesce;
        }
        if cfg.policy.manage_readahead {
            cfg.readahead = if speculate { base.readahead } else { 0 };
        }
    }
}

/// One event the policy learns from.
#[derive(Clone, Copy, Debug)]
pub enum Observation {
    /// A local task faulted on the object.
    LocalFault {
        /// The fault wanted write access.
        write: bool,
    },
    /// A peer's page request arrived here (as owner, forwarder or static
    /// manager).
    RemoteReq {
        /// The request wants write access.
        write: bool,
    },
}

impl Observation {
    fn write(self) -> bool {
        match self {
            Observation::LocalFault { write } | Observation::RemoteReq { write } => write,
        }
    }
}

/// What one [`PolicyState::record`] call concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyVerdict {
    /// Mid-window (or the policy is disabled): nothing to do.
    Idle,
    /// A window closed and was evaluated; the mode stands. Callers bump
    /// `asvm.policy.observe`.
    Observed,
    /// A window closed and the hysteresis threshold was crossed: the
    /// caller must apply the new mode to the object's configuration and
    /// bump `asvm.policy.observe` + `asvm.policy.switch`.
    Switch(PolicyMode),
}

/// Per-object, per-node policy state: window accumulators plus the
/// hysteresis ledger.
#[derive(Clone, Copy, Debug)]
pub struct PolicyState {
    cfg: PolicyCfg,
    /// Accelerant settings [`PolicyMode::Dynamic`] restores, captured
    /// from the object's configuration before the policy rewrote it.
    base: AccelBase,
    /// Observations in the current window.
    seen: u32,
    /// Of those, how many wanted write access.
    writes: u32,
    /// Mode currently applied to the object.
    mode: PolicyMode,
    /// Most recent window recommendation and how many consecutive windows
    /// produced it.
    candidate: PolicyMode,
    streak: u8,
}

impl PolicyState {
    /// Fresh state for an object currently configured as `mode`, with
    /// `base` the accelerant settings Dynamic mode restores (snapshot the
    /// object's configuration with [`AccelBase::of`] before the policy
    /// touches it).
    pub fn new(cfg: PolicyCfg, mode: PolicyMode, base: AccelBase) -> PolicyState {
        PolicyState {
            cfg,
            base,
            seen: 0,
            writes: 0,
            mode,
            candidate: mode,
            streak: 0,
        }
    }

    /// The mode the policy currently holds the object in.
    pub fn mode(&self) -> PolicyMode {
        self.mode
    }

    /// Whether the policy is live.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The accelerant settings [`PolicyMode::Dynamic`] restores (pass to
    /// [`PolicyMode::apply`] when acting on a
    /// [`PolicyVerdict::Switch`]).
    pub fn base(&self) -> AccelBase {
        self.base
    }

    /// Feeds one observation; `members` is the object's current membership
    /// size. Closes and evaluates the window every `cfg.window`
    /// observations.
    pub fn record(&mut self, members: usize, obs: Observation) -> PolicyVerdict {
        if !self.cfg.enabled {
            return PolicyVerdict::Idle;
        }
        self.seen += 1;
        if obs.write() {
            self.writes += 1;
        }
        if self.seen < self.cfg.window.max(1) {
            return PolicyVerdict::Idle;
        }
        let rec = self.recommend(members);
        self.seen = 0;
        self.writes = 0;
        if rec == self.candidate {
            self.streak = self.streak.saturating_add(1);
        } else {
            self.candidate = rec;
            self.streak = 1;
        }
        if rec != self.mode && self.streak >= self.cfg.hysteresis.max(1) {
            self.mode = rec;
            return PolicyVerdict::Switch(rec);
        }
        PolicyVerdict::Observed
    }

    /// The closed window's recommendation. Pure function of the window
    /// accumulators and membership:
    ///
    /// 1. at most one other member — forwarding cannot matter, drop to
    ///    the zero-hint-state [`PolicyMode::Global`];
    /// 2. write fraction at or above the threshold — migratory-like,
    ///    [`PolicyMode::Static`];
    /// 3. otherwise read-mostly fan-out, [`PolicyMode::Dynamic`].
    fn recommend(&self, members: usize) -> PolicyMode {
        if members <= 2 {
            return PolicyMode::Global;
        }
        let total = self.seen.max(1);
        if self.writes * 100 >= self.cfg.write_threshold_pct * total {
            PolicyMode::Static
        } else {
            PolicyMode::Dynamic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(window: u32, hysteresis: u8) -> PolicyCfg {
        PolicyCfg {
            enabled: true,
            window,
            hysteresis,
            ..PolicyCfg::default()
        }
    }

    fn base() -> AccelBase {
        AccelBase {
            coalesce: false,
            readahead: 0,
        }
    }

    #[test]
    fn disabled_policy_is_inert() {
        let mut p = PolicyState::new(PolicyCfg::default(), PolicyMode::Dynamic, base());
        for _ in 0..1000 {
            assert_eq!(
                p.record(8, Observation::LocalFault { write: true }),
                PolicyVerdict::Idle
            );
        }
        assert_eq!(p.mode(), PolicyMode::Dynamic);
    }

    #[test]
    fn write_heavy_windows_switch_to_static_after_hysteresis() {
        let mut p = PolicyState::new(on(4, 2), PolicyMode::Dynamic, base());
        let mut verdicts = Vec::new();
        for _ in 0..8 {
            verdicts.push(p.record(4, Observation::RemoteReq { write: true }));
        }
        // First window: recommendation noted, streak 1 — no switch yet.
        assert_eq!(verdicts[3], PolicyVerdict::Observed);
        // Second window repeats it: switch.
        assert_eq!(verdicts[7], PolicyVerdict::Switch(PolicyMode::Static));
        assert_eq!(p.mode(), PolicyMode::Static);
    }

    #[test]
    fn anomalous_window_does_not_flap() {
        let mut p = PolicyState::new(on(2, 2), PolicyMode::Static, base());
        // One read-mostly window (recommends Dynamic), then write-heavy
        // again: the streak resets and the mode never leaves Static.
        p.record(4, Observation::LocalFault { write: false });
        assert_eq!(
            p.record(4, Observation::LocalFault { write: false }),
            PolicyVerdict::Observed
        );
        for _ in 0..10 {
            let v = p.record(4, Observation::LocalFault { write: true });
            assert_ne!(v, PolicyVerdict::Switch(PolicyMode::Dynamic));
        }
        assert_eq!(p.mode(), PolicyMode::Static);
    }

    #[test]
    fn tiny_membership_prefers_global() {
        let mut p = PolicyState::new(on(2, 1), PolicyMode::Dynamic, base());
        p.record(2, Observation::LocalFault { write: false });
        assert_eq!(
            p.record(2, Observation::LocalFault { write: false }),
            PolicyVerdict::Switch(PolicyMode::Global)
        );
    }

    #[test]
    fn apply_strips_and_restores_managed_accelerants() {
        let mut cfg = AsvmConfig::with_readahead(8).coalesced();
        cfg.dynamic_cache_entries = 7;
        let base = AccelBase::of(&cfg);
        PolicyMode::Static.apply(&mut cfg, base);
        assert!(!cfg.dynamic_forwarding && cfg.static_forwarding);
        assert!(!cfg.coalesce.enabled, "Static strips managed coalescing");
        assert_eq!(cfg.readahead, 0, "Static strips managed readahead");
        assert_eq!(cfg.dynamic_cache_entries, 7, "unrelated knobs survive");
        PolicyMode::Dynamic.apply(&mut cfg, base);
        assert!(cfg.coalesce.enabled, "Dynamic restores the coalescing base");
        assert_eq!(cfg.readahead, 8, "Dynamic restores the readahead base");
    }

    #[test]
    fn apply_leaves_unmanaged_accelerants_alone() {
        let mut keep = AsvmConfig::with_readahead(3).coalesced();
        keep.policy.manage_coalesce = false;
        keep.policy.manage_readahead = false;
        let base = AccelBase::of(&keep);
        PolicyMode::Global.apply(&mut keep, base);
        assert!(!keep.dynamic_forwarding && !keep.static_forwarding);
        assert!(keep.coalesce.enabled, "unmanaged coalescing is untouched");
        assert_eq!(keep.readahead, 3, "unmanaged readahead is untouched");
    }

    #[test]
    fn mode_of_reads_forwarding_switches() {
        assert_eq!(PolicyMode::of(&AsvmConfig::default()), PolicyMode::Dynamic);
        assert_eq!(
            PolicyMode::of(&AsvmConfig::fixed_distributed()),
            PolicyMode::Static
        );
        assert_eq!(
            PolicyMode::of(&AsvmConfig::global_only()),
            PolicyMode::Global
        );
    }
}
