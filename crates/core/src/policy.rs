//! Online per-object strategy selection.
//!
//! The paper's configuration hook — each forwarding strategy *"can be
//! disabled per memory object"* — is a static knob: whoever maps the
//! object picks a [`crate::AsvmConfig`] and lives with it. The measured
//! trade-offs (see `EXPERIMENTS.md`, forwarding ablation) show there is no
//! single winner: write-heavy migratory sharing is fastest with dynamic
//! hints *disabled* (every ownership hop invalidates the hint caches the
//! next request chases), read-fanout sharing is fastest with them enabled,
//! and message coalescing helps exactly the read-fanout shapes while
//! slightly hurting migratory ones. A host running thousands of objects
//! with skewed popularity cannot pick one configuration that suits them
//! all.
//!
//! [`PolicyState`] closes the loop *per object, per node*: it watches the
//! object's own traffic — local faults and arriving remote requests — in
//! fixed-size observation windows and, with hysteresis, switches the
//! object between three modes:
//!
//! * [`PolicyMode::Dynamic`] — dynamic + static forwarding (the full ASVM
//!   default) plus the object's configured *speculation accelerants*:
//!   prefetch and, where the transport supports it, coalescing. Best for
//!   read-mostly fan-out — sequential readers are exactly what §6's read
//!   clustering prefetches for, and the prefetch bursts are what
//!   coalescing packs.
//! * [`PolicyMode::Static`] — static + global only (Kai Li's fixed
//!   distributed manager), speculation stripped: best for write-heavy
//!   migratory sharing, where prefetched neighbours are invalidated
//!   before they are read and every speculative frame is pure cost.
//! * [`PolicyMode::Global`] — global only, the zero-hint-state
//!   configuration, chosen when the object has at most one other member
//!   and forwarding strategy cannot matter.
//!
//! Mode changes are *consultation* choices only — which forwarding layer
//! to ask first, whether to speculatively request extra pages, whether to
//! pack frames. The static managers' safety record ([`crate::AsvmNode`]'s
//! `OwnerHint` maintenance) is unconditional in every configuration,
//! global forwarding always remains as the final fallback, and each node
//! adapts its own replica of the object independently — a cluster where
//! node A routes object X dynamically while node B routes it statically
//! is exactly as correct as any mixed static configuration (the
//! `adaptive_policy_preserves_final_state` parity proptest pins this).
//!
//! Costs are visible: every closed window bumps `asvm.policy.observe` and
//! every applied mode change bumps `asvm.policy.switch`. A workload whose
//! phase flips faster than `window × hysteresis` observations makes the
//! policy churn — high `asvm.policy.switch` with no speedup — which the
//! `tenants` bench reports as an honest counter-case.
//!
//! # Example
//!
//! The state machine itself is pure and host-independent: feed it
//! observations, apply the verdicts.
//!
//! ```
//! use asvm::policy::{AccelBase, Observation, PolicyCfg, PolicyMode, PolicyState, PolicyVerdict};
//!
//! let cfg = PolicyCfg {
//!     enabled: true,
//!     window: 4,
//!     hysteresis: 2,
//!     ..PolicyCfg::default()
//! };
//! // The accelerants Dynamic mode restores — normally captured from the
//! // object's configuration with `AccelBase::of`.
//! let base = AccelBase {
//!     coalesce: true,
//!     prefetch: asvm::prefetch::PrefetchCfg::readahead(4),
//! };
//! let mut p = PolicyState::new(cfg, PolicyMode::Dynamic, base);
//!
//! // A write-heavy phase on a widely shared object: each window of 4
//! // observations recommends Static, but the switch only lands after the
//! // recommendation repeats for `hysteresis` consecutive windows.
//! let mut switched_at = None;
//! for i in 0..8 {
//!     let verdict = p.record(4, Observation::LocalFault { write: true });
//!     if let PolicyVerdict::Switch(mode) = verdict {
//!         assert_eq!(mode, PolicyMode::Static);
//!         switched_at = Some(i);
//!     }
//! }
//! // Window 1 (obs 0..4) recommends Static, window 2 (obs 4..8) repeats
//! // it: the switch fires on the 8th observation, not the 4th.
//! assert_eq!(switched_at, Some(7));
//! assert_eq!(p.mode(), PolicyMode::Static);
//!
//! // Read-mostly traffic now recommends Dynamic, again with hysteresis.
//! for _ in 0..16 {
//!     p.record(4, Observation::RemoteReq { write: false });
//! }
//! assert_eq!(p.mode(), PolicyMode::Dynamic);
//! ```

use crate::config::AsvmConfig;

/// Tunables of the online per-object policy (off by default: the policy
/// layer is opt-in, and a disabled policy records nothing, bumps nothing
/// and never touches the object's configuration, keeping baseline runs
/// byte-identical).
#[derive(Clone, Copy, Debug)]
pub struct PolicyCfg {
    /// Master switch.
    pub enabled: bool,
    /// Observations (local faults + arriving remote requests) per
    /// evaluation window. Windows are event-counted, not timed, so the
    /// policy adds no simulator events and adapts at the speed the object
    /// is actually used: hot objects converge quickly, cold objects never
    /// churn.
    pub window: u32,
    /// Consecutive windows that must repeat a recommendation before it is
    /// applied. 1 switches on every disagreeing window; the default of 2
    /// absorbs a single anomalous window.
    pub hysteresis: u8,
    /// Write fraction (percent of observed accesses that want write
    /// access) at or above which the window recommends
    /// [`PolicyMode::Static`]. The forwarding ablation's crossover:
    /// migratory (all-write) sharing ran 2.24 → 2.11 ms/fault when
    /// dynamic hints were disabled, while read-fanout shapes prefer them.
    pub write_threshold_pct: u32,
    /// Let the policy toggle the object's `CoalesceCfg::enabled` along
    /// with the mode (restored to its configured base in Dynamic, off
    /// otherwise). Only bites on transports that support coalescing;
    /// disable to adapt forwarding alone.
    pub manage_coalesce: bool,
    /// Let the policy toggle the object's prefetch along with the mode
    /// (restored to its configured base in Dynamic, off otherwise). The
    /// tenants sweep's motivating asymmetry: prefetch cuts a sequential
    /// reader's faults by a third but is pure frame cost on a write-heavy
    /// object, whose prefetched neighbours are invalidated unread.
    pub manage_prefetch: bool,
    /// Wasted fraction (percent of settled speculative fills that were
    /// invalidated, evicted, or overwritten before a demand *read*
    /// consumed them) at or
    /// above which a prefetch window counts against the data tier; after
    /// `hysteresis` consecutive bad windows [`PolicyState::record_prefetch`]
    /// returns [`PrefetchVerdict::Disable`] and the caller latches
    /// `PrefetchCfg::data` off for the object.
    pub prefetch_wasted_pct: u32,
}

impl Default for PolicyCfg {
    fn default() -> PolicyCfg {
        PolicyCfg {
            enabled: false,
            window: 48,
            hysteresis: 2,
            write_threshold_pct: 50,
            manage_coalesce: true,
            manage_prefetch: true,
            prefetch_wasted_pct: 50,
        }
    }
}

impl PolicyCfg {
    /// The policy switched on with the default window and hysteresis.
    pub fn on() -> PolicyCfg {
        PolicyCfg {
            enabled: true,
            ..PolicyCfg::default()
        }
    }
}

/// The speculation accelerants [`PolicyMode::Dynamic`] restores: a
/// snapshot of the object's *configured* coalescing and prefetch
/// settings, captured (via [`AccelBase::of`]) before the policy starts
/// rewriting them. Without the snapshot a Dynamic → Static → Dynamic
/// round trip would forget what "on" meant for this object.
#[derive(Clone, Copy, Debug)]
pub struct AccelBase {
    /// The configured `CoalesceCfg::enabled`.
    pub coalesce: bool,
    /// The configured prefetch tiers and depths.
    pub prefetch: crate::prefetch::PrefetchCfg,
}

impl AccelBase {
    /// Snapshots `cfg`'s accelerant settings.
    pub fn of(cfg: &AsvmConfig) -> AccelBase {
        AccelBase {
            coalesce: cfg.coalesce.enabled,
            prefetch: cfg.prefetch,
        }
    }
}

/// The three per-object configurations the policy switches between.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyMode {
    /// Dynamic + static forwarding, coalescing on (where managed): the
    /// full ASVM default, best for read-mostly fan-out.
    Dynamic,
    /// Static + global forwarding only (the fixed distributed manager),
    /// coalescing off: best for write-heavy migratory sharing.
    Static,
    /// Global forwarding only, the zero-hint-state configuration for
    /// objects where forwarding strategy cannot matter (at most one other
    /// member).
    Global,
}

impl PolicyMode {
    /// The mode a configuration's forwarding switches express.
    pub fn of(cfg: &AsvmConfig) -> PolicyMode {
        match (cfg.dynamic_forwarding, cfg.static_forwarding) {
            (true, _) => PolicyMode::Dynamic,
            (false, true) => PolicyMode::Static,
            (false, false) => PolicyMode::Global,
        }
    }

    /// Rewrites `cfg`'s forwarding switches to this mode and — gated on
    /// `cfg.policy`'s `manage_coalesce` / `manage_prefetch` flags —
    /// restores the accelerants in `base` (Dynamic) or strips them
    /// (Static/Global). Every other knob — cache capacities, watchdog
    /// parameters — is preserved. A Dynamic restore re-arms prefetch even
    /// if [`PolicyState::record_prefetch`] previously latched the data
    /// tier off: a mode change is fresh evidence the traffic shape moved,
    /// so the accelerant gets a fresh trial.
    pub fn apply(self, cfg: &mut AsvmConfig, base: AccelBase) {
        let (dynamic, statik) = match self {
            PolicyMode::Dynamic => (true, true),
            PolicyMode::Static => (false, true),
            PolicyMode::Global => (false, false),
        };
        cfg.dynamic_forwarding = dynamic;
        cfg.static_forwarding = statik;
        let speculate = self == PolicyMode::Dynamic;
        if cfg.policy.manage_coalesce {
            cfg.coalesce.enabled = speculate && base.coalesce;
        }
        if cfg.policy.manage_prefetch {
            cfg.prefetch = if speculate {
                base.prefetch
            } else {
                crate::prefetch::PrefetchCfg::off()
            };
        }
    }
}

/// One event the policy learns from.
#[derive(Clone, Copy, Debug)]
pub enum Observation {
    /// A local task faulted on the object.
    LocalFault {
        /// The fault wanted write access.
        write: bool,
    },
    /// A peer's page request arrived here (as owner, forwarder or static
    /// manager).
    RemoteReq {
        /// The request wants write access.
        write: bool,
    },
}

impl Observation {
    fn write(self) -> bool {
        match self {
            Observation::LocalFault { write } | Observation::RemoteReq { write } => write,
        }
    }
}

/// What one [`PolicyState::record`] call concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyVerdict {
    /// Mid-window (or the policy is disabled): nothing to do.
    Idle,
    /// A window closed and was evaluated; the mode stands. Callers bump
    /// `asvm.policy.observe`.
    Observed,
    /// A window closed and the hysteresis threshold was crossed: the
    /// caller must apply the new mode to the object's configuration and
    /// bump `asvm.policy.observe` + `asvm.policy.switch`.
    Switch(PolicyMode),
}

/// What one [`PolicyState::record_prefetch`] call concluded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrefetchVerdict {
    /// Mid-window (or the policy is disabled): nothing to do.
    Idle,
    /// A prefetch window closed and was evaluated; the data tier stands.
    /// Callers bump `asvm.policy.observe`.
    Observed,
    /// Consecutive windows wasted too much: the caller must latch
    /// `PrefetchCfg::data` off for the object and bump
    /// `asvm.policy.observe` + `asvm.policy.prefetch_off`. Returned at
    /// most once per [`PolicyMode`] tenure — the latch only re-arms when
    /// a mode switch restores the accelerant base.
    Disable,
}

/// Per-object, per-node policy state: window accumulators plus the
/// hysteresis ledger.
#[derive(Clone, Copy, Debug)]
pub struct PolicyState {
    cfg: PolicyCfg,
    /// Accelerant settings [`PolicyMode::Dynamic`] restores, captured
    /// from the object's configuration before the policy rewrote it.
    base: AccelBase,
    /// Observations in the current window.
    seen: u32,
    /// Of those, how many wanted write access.
    writes: u32,
    /// Mode currently applied to the object.
    mode: PolicyMode,
    /// Most recent window recommendation and how many consecutive windows
    /// produced it.
    candidate: PolicyMode,
    streak: u8,
    /// Settled speculative fills in the current prefetch window.
    pf_seen: u32,
    /// Of those, how many were wasted (invalidated/evicted unread).
    pf_wasted: u32,
    /// Consecutive prefetch windows at or above the wasted threshold.
    pf_streak: u8,
    /// The data tier was already latched off this mode tenure.
    pf_disabled: bool,
}

impl PolicyState {
    /// Fresh state for an object currently configured as `mode`, with
    /// `base` the accelerant settings Dynamic mode restores (snapshot the
    /// object's configuration with [`AccelBase::of`] before the policy
    /// touches it).
    pub fn new(cfg: PolicyCfg, mode: PolicyMode, base: AccelBase) -> PolicyState {
        PolicyState {
            cfg,
            base,
            seen: 0,
            writes: 0,
            mode,
            candidate: mode,
            streak: 0,
            pf_seen: 0,
            pf_wasted: 0,
            pf_streak: 0,
            pf_disabled: false,
        }
    }

    /// The mode the policy currently holds the object in.
    pub fn mode(&self) -> PolicyMode {
        self.mode
    }

    /// Whether the policy is live.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The accelerant settings [`PolicyMode::Dynamic`] restores (pass to
    /// [`PolicyMode::apply`] when acting on a
    /// [`PolicyVerdict::Switch`]).
    pub fn base(&self) -> AccelBase {
        self.base
    }

    /// Feeds one observation; `members` is the object's current membership
    /// size. Closes and evaluates the window every `cfg.window`
    /// observations.
    pub fn record(&mut self, members: usize, obs: Observation) -> PolicyVerdict {
        if !self.cfg.enabled {
            return PolicyVerdict::Idle;
        }
        self.seen += 1;
        if obs.write() {
            self.writes += 1;
        }
        if self.seen < self.cfg.window.max(1) {
            return PolicyVerdict::Idle;
        }
        let rec = self.recommend(members);
        self.seen = 0;
        self.writes = 0;
        if rec == self.candidate {
            self.streak = self.streak.saturating_add(1);
        } else {
            self.candidate = rec;
            self.streak = 1;
        }
        if rec != self.mode && self.streak >= self.cfg.hysteresis.max(1) {
            self.mode = rec;
            // A mode change re-applies the accelerant base (see
            // `PolicyMode::apply`), so the prefetch latch re-arms with it.
            self.pf_seen = 0;
            self.pf_wasted = 0;
            self.pf_streak = 0;
            self.pf_disabled = false;
            return PolicyVerdict::Switch(rec);
        }
        PolicyVerdict::Observed
    }

    /// Feeds the outcome of one *settled* speculative fill: `wasted` is
    /// true when the prefetched copy was invalidated, evicted, or
    /// overwritten before any demand read consumed it, false when it
    /// scored a hit. Windows
    /// of `cfg.window` outcomes are evaluated against
    /// `cfg.prefetch_wasted_pct` with the shared hysteresis: once
    /// `cfg.hysteresis` consecutive windows waste too much, the verdict
    /// asks the caller to latch the object's data tier off.
    ///
    /// ```
    /// use asvm::policy::{AccelBase, PolicyCfg, PolicyMode, PolicyState, PrefetchVerdict};
    /// use asvm::prefetch::PrefetchCfg;
    ///
    /// let cfg = PolicyCfg { enabled: true, window: 4, hysteresis: 2, ..PolicyCfg::default() };
    /// let base = AccelBase { coalesce: false, prefetch: PrefetchCfg::streaming(4) };
    /// let mut p = PolicyState::new(cfg, PolicyMode::Dynamic, base);
    ///
    /// // Migratory sharing: every speculative copy is invalidated before
    /// // it is read. The first bad window only observes; the second
    /// // crosses the hysteresis and disables the data tier.
    /// let mut disabled_at = None;
    /// for i in 0..8 {
    ///     if p.record_prefetch(true) == PrefetchVerdict::Disable {
    ///         disabled_at = Some(i);
    ///     }
    /// }
    /// assert_eq!(disabled_at, Some(7));
    ///
    /// // Further outcomes no longer re-fire the latch.
    /// for _ in 0..8 {
    ///     assert_ne!(p.record_prefetch(true), PrefetchVerdict::Disable);
    /// }
    /// ```
    pub fn record_prefetch(&mut self, wasted: bool) -> PrefetchVerdict {
        if !self.cfg.enabled {
            return PrefetchVerdict::Idle;
        }
        self.pf_seen += 1;
        if wasted {
            self.pf_wasted += 1;
        }
        if self.pf_seen < self.cfg.window.max(1) {
            return PrefetchVerdict::Idle;
        }
        let bad = self.pf_wasted * 100 >= self.cfg.prefetch_wasted_pct * self.pf_seen;
        self.pf_seen = 0;
        self.pf_wasted = 0;
        if bad {
            self.pf_streak = self.pf_streak.saturating_add(1);
        } else {
            self.pf_streak = 0;
        }
        if bad && !self.pf_disabled && self.pf_streak >= self.cfg.hysteresis.max(1) {
            self.pf_disabled = true;
            return PrefetchVerdict::Disable;
        }
        PrefetchVerdict::Observed
    }

    /// The closed window's recommendation. Pure function of the window
    /// accumulators and membership:
    ///
    /// 1. at most one other member — forwarding cannot matter, drop to
    ///    the zero-hint-state [`PolicyMode::Global`];
    /// 2. write fraction at or above the threshold — migratory-like,
    ///    [`PolicyMode::Static`];
    /// 3. otherwise read-mostly fan-out, [`PolicyMode::Dynamic`].
    fn recommend(&self, members: usize) -> PolicyMode {
        if members <= 2 {
            return PolicyMode::Global;
        }
        let total = self.seen.max(1);
        if self.writes * 100 >= self.cfg.write_threshold_pct * total {
            PolicyMode::Static
        } else {
            PolicyMode::Dynamic
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(window: u32, hysteresis: u8) -> PolicyCfg {
        PolicyCfg {
            enabled: true,
            window,
            hysteresis,
            ..PolicyCfg::default()
        }
    }

    fn base() -> AccelBase {
        AccelBase {
            coalesce: false,
            prefetch: crate::prefetch::PrefetchCfg::off(),
        }
    }

    #[test]
    fn disabled_policy_is_inert() {
        let mut p = PolicyState::new(PolicyCfg::default(), PolicyMode::Dynamic, base());
        for _ in 0..1000 {
            assert_eq!(
                p.record(8, Observation::LocalFault { write: true }),
                PolicyVerdict::Idle
            );
        }
        assert_eq!(p.mode(), PolicyMode::Dynamic);
    }

    #[test]
    fn write_heavy_windows_switch_to_static_after_hysteresis() {
        let mut p = PolicyState::new(on(4, 2), PolicyMode::Dynamic, base());
        let mut verdicts = Vec::new();
        for _ in 0..8 {
            verdicts.push(p.record(4, Observation::RemoteReq { write: true }));
        }
        // First window: recommendation noted, streak 1 — no switch yet.
        assert_eq!(verdicts[3], PolicyVerdict::Observed);
        // Second window repeats it: switch.
        assert_eq!(verdicts[7], PolicyVerdict::Switch(PolicyMode::Static));
        assert_eq!(p.mode(), PolicyMode::Static);
    }

    #[test]
    fn anomalous_window_does_not_flap() {
        let mut p = PolicyState::new(on(2, 2), PolicyMode::Static, base());
        // One read-mostly window (recommends Dynamic), then write-heavy
        // again: the streak resets and the mode never leaves Static.
        p.record(4, Observation::LocalFault { write: false });
        assert_eq!(
            p.record(4, Observation::LocalFault { write: false }),
            PolicyVerdict::Observed
        );
        for _ in 0..10 {
            let v = p.record(4, Observation::LocalFault { write: true });
            assert_ne!(v, PolicyVerdict::Switch(PolicyMode::Dynamic));
        }
        assert_eq!(p.mode(), PolicyMode::Static);
    }

    #[test]
    fn tiny_membership_prefers_global() {
        let mut p = PolicyState::new(on(2, 1), PolicyMode::Dynamic, base());
        p.record(2, Observation::LocalFault { write: false });
        assert_eq!(
            p.record(2, Observation::LocalFault { write: false }),
            PolicyVerdict::Switch(PolicyMode::Global)
        );
    }

    #[test]
    fn apply_strips_and_restores_managed_accelerants() {
        let mut cfg = AsvmConfig::with_readahead(8).coalesced();
        cfg.dynamic_cache_entries = 7;
        let base = AccelBase::of(&cfg);
        PolicyMode::Static.apply(&mut cfg, base);
        assert!(!cfg.dynamic_forwarding && cfg.static_forwarding);
        assert!(!cfg.coalesce.enabled, "Static strips managed coalescing");
        assert!(!cfg.prefetch.enabled, "Static strips managed prefetch");
        assert_eq!(cfg.dynamic_cache_entries, 7, "unrelated knobs survive");
        PolicyMode::Dynamic.apply(&mut cfg, base);
        assert!(cfg.coalesce.enabled, "Dynamic restores the coalescing base");
        assert!(cfg.prefetch.enabled, "Dynamic restores the prefetch base");
        assert_eq!(cfg.prefetch.depth, 8, "restored at the configured depth");
    }

    #[test]
    fn apply_leaves_unmanaged_accelerants_alone() {
        let mut keep = AsvmConfig::with_readahead(3).coalesced();
        keep.policy.manage_coalesce = false;
        keep.policy.manage_prefetch = false;
        let base = AccelBase::of(&keep);
        PolicyMode::Global.apply(&mut keep, base);
        assert!(!keep.dynamic_forwarding && !keep.static_forwarding);
        assert!(keep.coalesce.enabled, "unmanaged coalescing is untouched");
        assert_eq!(keep.prefetch.depth, 3, "unmanaged prefetch is untouched");
        assert!(keep.prefetch.enabled);
    }

    #[test]
    fn hit_heavy_prefetch_windows_never_disable() {
        let mut p = PolicyState::new(on(4, 2), PolicyMode::Dynamic, base());
        for _ in 0..64 {
            assert_ne!(p.record_prefetch(false), PrefetchVerdict::Disable);
        }
        // An isolated bad window resets nothing permanent: the streak
        // needs `hysteresis` consecutive bad windows.
        for _ in 0..4 {
            p.record_prefetch(true);
        }
        for _ in 0..4 {
            assert_ne!(p.record_prefetch(false), PrefetchVerdict::Disable);
        }
        for _ in 0..64 {
            assert_ne!(p.record_prefetch(false), PrefetchVerdict::Disable);
        }
    }

    #[test]
    fn disabled_policy_prefetch_dimension_is_inert() {
        let mut p = PolicyState::new(PolicyCfg::default(), PolicyMode::Dynamic, base());
        for _ in 0..1000 {
            assert_eq!(p.record_prefetch(true), PrefetchVerdict::Idle);
        }
    }

    #[test]
    fn mode_switch_rearms_the_prefetch_latch() {
        let mut p = PolicyState::new(on(2, 1), PolicyMode::Dynamic, base());
        // Latch the data tier off.
        p.record_prefetch(true);
        assert_eq!(p.record_prefetch(true), PrefetchVerdict::Disable);
        assert_ne!(p.record_prefetch(true), PrefetchVerdict::Disable);
        // A mode switch (write-heavy evidence) re-arms the latch: the
        // accelerant base is re-applied, so the tier is on trial again.
        p.record(4, Observation::LocalFault { write: true });
        assert_eq!(
            p.record(4, Observation::LocalFault { write: true }),
            PolicyVerdict::Switch(PolicyMode::Static)
        );
        p.record_prefetch(true);
        assert_eq!(p.record_prefetch(true), PrefetchVerdict::Disable);
    }

    #[test]
    fn mode_of_reads_forwarding_switches() {
        assert_eq!(PolicyMode::of(&AsvmConfig::default()), PolicyMode::Dynamic);
        assert_eq!(
            PolicyMode::of(&AsvmConfig::fixed_distributed()),
            PolicyMode::Static
        );
        assert_eq!(
            PolicyMode::of(&AsvmConfig::global_only()),
            PolicyMode::Global
        );
    }
}
