//! Range locks (§6 future work).
//!
//! The paper: *"Provide and utilize ASVM primitives for locking a range of
//! pages in a shared address space for the exclusive access of a particular
//! task on a particular node. This would allow to guarantee the atomicity
//! of read and write operations ... The current scheme uses NORMA-IPC to
//! acquire an exclusive token from a token server each time a read or
//! write operation takes place."*
//!
//! The lock manager for an object lives on its home node (requests ride
//! the same STS transport as the rest of the ASVM protocol, replacing the
//! NORMA token server). Locks are granted when the requested range
//! overlaps no held range; conflicting requests queue FIFO and are granted
//! on release. The primitive is advisory: it orders *operations* (callers
//! bracket multi-page reads/writes), while per-page coherence continues to
//! come from the sharing state machine.

use std::collections::VecDeque;

use machvm::{MemObjId, PageIdx};
use svmsim::NodeId;

/// A held or requested page range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageRange {
    /// First page.
    pub first: PageIdx,
    /// Length in pages.
    pub count: u32,
}

impl PageRange {
    /// True if the ranges share any page (empty ranges overlap nothing).
    pub fn overlaps(&self, other: &PageRange) -> bool {
        if self.count == 0 || other.count == 0 {
            return false;
        }
        let a0 = self.first.0;
        let a1 = self.first.0 + self.count;
        let b0 = other.first.0;
        let b1 = other.first.0 + other.count;
        a0 < b1 && b0 < a1
    }
}

/// A lock held by a node.
#[derive(Clone, Copy, Debug)]
pub struct HeldLock {
    /// The locked range.
    pub range: PageRange,
    /// The holding node.
    pub holder: NodeId,
}

/// Lock-manager state for one object (home node only).
#[derive(Debug, Default)]
pub struct RangeLockMgr {
    held: Vec<HeldLock>,
    queue: VecDeque<HeldLock>,
}

impl RangeLockMgr {
    /// Requests `range` for `holder`; returns true if granted immediately,
    /// false if queued.
    pub fn acquire(&mut self, range: PageRange, holder: NodeId) -> bool {
        let blocked = self.held.iter().any(|h| h.range.overlaps(&range))
            || self.queue.iter().any(|q| q.range.overlaps(&range));
        if blocked {
            self.queue.push_back(HeldLock { range, holder });
            false
        } else {
            self.held.push(HeldLock { range, holder });
            true
        }
    }

    /// Releases `range` held by `holder`; returns the queued locks that
    /// become grantable (already moved to held).
    ///
    /// # Panics
    ///
    /// Panics if the lock is not held — releasing a lock you do not hold
    /// is a protocol error.
    pub fn release(&mut self, range: PageRange, holder: NodeId) -> Vec<HeldLock> {
        let pos = self
            .held
            .iter()
            .position(|h| h.range == range && h.holder == holder)
            .expect("releasing a range lock that is not held");
        self.held.remove(pos);
        // Grant queued requests in FIFO order while they fit.
        let mut granted = Vec::new();
        let mut remaining = VecDeque::new();
        while let Some(q) = self.queue.pop_front() {
            let blocked = self.held.iter().any(|h| h.range.overlaps(&q.range))
                || granted
                    .iter()
                    .any(|g: &HeldLock| g.range.overlaps(&q.range))
                || remaining
                    .iter()
                    .any(|r: &HeldLock| r.range.overlaps(&q.range));
            if blocked {
                remaining.push_back(q);
            } else {
                self.held.push(q);
                granted.push(q);
            }
        }
        self.queue = remaining;
        granted
    }

    /// Number of locks currently held.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Number of requests waiting.
    pub fn queued_count(&self) -> usize {
        self.queue.len()
    }
}

/// A grant to deliver: `(object, range, holder)`.
pub type LockGrant = (MemObjId, PageRange, NodeId);

#[cfg(test)]
mod tests {
    use super::*;

    fn r(first: u32, count: u32) -> PageRange {
        PageRange {
            first: PageIdx(first),
            count,
        }
    }

    #[test]
    fn overlap_logic() {
        assert!(r(0, 4).overlaps(&r(3, 2)));
        assert!(!r(0, 4).overlaps(&r(4, 2)));
        assert!(r(2, 1).overlaps(&r(0, 8)));
        assert!(!r(5, 0).overlaps(&r(0, 100)));
    }

    #[test]
    fn disjoint_locks_grant_immediately() {
        let mut m = RangeLockMgr::default();
        assert!(m.acquire(r(0, 4), NodeId(0)));
        assert!(m.acquire(r(4, 4), NodeId(1)));
        assert_eq!(m.held_count(), 2);
    }

    #[test]
    fn conflicting_lock_queues_until_release() {
        let mut m = RangeLockMgr::default();
        assert!(m.acquire(r(0, 8), NodeId(0)));
        assert!(!m.acquire(r(4, 2), NodeId(1)));
        assert_eq!(m.queued_count(), 1);
        let granted = m.release(r(0, 8), NodeId(0));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].holder, NodeId(1));
        assert_eq!(m.held_count(), 1);
    }

    #[test]
    fn fifo_fairness_prevents_overtaking() {
        let mut m = RangeLockMgr::default();
        assert!(m.acquire(r(0, 4), NodeId(0)));
        // Node 1 queues for an overlapping range; node 2 then asks for a
        // range overlapping node 1's queued request — it must queue behind
        // it even though nothing *held* conflicts.
        assert!(!m.acquire(r(2, 6), NodeId(1)));
        assert!(!m.acquire(r(6, 2), NodeId(2)));
        let granted = m.release(r(0, 4), NodeId(0));
        // Node 1 is granted; node 2 still conflicts with it.
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].holder, NodeId(1));
        let granted = m.release(r(2, 6), NodeId(1));
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].holder, NodeId(2));
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn releasing_unheld_lock_panics() {
        let mut m = RangeLockMgr::default();
        m.release(r(0, 1), NodeId(0));
    }
}
