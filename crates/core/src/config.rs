//! Per-object ASVM configuration.

use svmsim::Dur;

/// Bounds on the forwarding machinery and the request watchdog.
///
/// Forwarding chases ownership hints that can be stale; these knobs keep a
/// request from orbiting a hint cycle forever and, together with the
/// failure detector, drain requests whose target died (see
/// `docs/RELIABILITY.md`).
#[derive(Clone, Copy, Debug)]
pub struct ForwardCfg {
    /// Maximum number of dynamic-hint hops a request may take before the
    /// hint chain is abandoned in favour of the static manager / global
    /// walk. `None` selects the default bound of `2 * members + 4`: a hint
    /// chain over `n` nodes can legitimately be `n` long, ownership may
    /// move once more while the request is in flight (`2n`), and the slack
    /// absorbs a transfer racing the request. Trips of this bound are
    /// counted under `asvm.forward.loop_trip`.
    pub hop_limit: Option<u16>,
    /// Age after which the watchdog re-issues a pending request. Must stay
    /// comfortably above the ARQ worst case (two chained full-backoff
    /// frame deliveries ≈ 224 ms) so mere link loss never looks like a
    /// dead peer.
    pub watchdog_deadline: Dur,
    /// Watchdog re-issues before a pending request gives up on its peers
    /// and falls back to a terminal pager re-fetch.
    pub retry_budget: u8,
}

impl Default for ForwardCfg {
    fn default() -> ForwardCfg {
        ForwardCfg {
            hop_limit: None,
            watchdog_deadline: Dur::from_millis(250),
            retry_budget: 5,
        }
    }
}

/// Message coalescing on the ASVM/STS protocol path (off by default).
///
/// STS receives into preallocated fixed-size buffers, so several small
/// protocol messages headed for the same node can share one wire frame:
/// one fixed header is charged for the frame, and each additional
/// subframe only pays a small demultiplex overhead instead of a full
/// per-message send/receive. Acks ride on data frames going the same way,
/// and data/ack frames piggyback the sender's current owner hint for the
/// page so dynamic hint caches stay warm without dedicated traffic.
///
/// The combiner's window is one scheduling step (one delivered event):
/// every protocol send an engine produces while handling a single event
/// is buffered per destination and flushed as one frame per peer at the
/// end of the step, so enabling coalescing never delays traffic across
/// events and determinism is preserved. The ARQ layer treats a coalesced
/// frame as one sequenced unit (see `docs/RELIABILITY.md`).
#[derive(Clone, Copy, Debug)]
pub struct CoalesceCfg {
    /// Master switch. Off keeps the classic one-frame-per-message path,
    /// byte-identical to builds without the coalescing layer.
    pub enabled: bool,
    /// Maximum subframes per wire frame: the model of STS's preallocated
    /// receive buffer capacity. A full frame is flushed immediately and a
    /// fresh one started.
    pub max_subframes: usize,
    /// Piggyback the sender's owner hint for every page addressed by a
    /// data/ack subframe.
    pub piggyback_hints: bool,
}

impl Default for CoalesceCfg {
    fn default() -> CoalesceCfg {
        CoalesceCfg {
            enabled: false,
            max_subframes: 16,
            piggyback_hints: true,
        }
    }
}

impl CoalesceCfg {
    /// Coalescing on, with the default frame capacity and hint
    /// piggybacking.
    pub fn on() -> CoalesceCfg {
        CoalesceCfg {
            enabled: true,
            ..CoalesceCfg::default()
        }
    }
}

/// Forwarding and cache configuration, settable per memory object.
///
/// The paper: *"The ASVM system allows to disable either dynamic or static
/// forwarding (or both) on a memory-object basis. This provides great
/// flexibility. If only static and global forwarding are enabled, the
/// behavior of the ASVM system is identical to Kai Li's fixed distributed
/// manager approach. Enabling dynamic forwarding makes the ASVM system
/// resemble the dynamic manager approach."* Global forwarding is always
/// available as the final fallback.
#[derive(Clone, Copy, Debug)]
pub struct AsvmConfig {
    /// Consult and maintain per-node dynamic ownership hint caches.
    pub dynamic_forwarding: bool,
    /// Consult the fixed distributed ownership managers' caches.
    pub static_forwarding: bool,
    /// Capacity of each node's dynamic hint cache, in entries.
    pub dynamic_cache_entries: usize,
    /// Capacity of each static ownership manager's cache, in entries
    /// (effectively multiplied by the node count, since the static cache is
    /// distributed across all static managers).
    pub static_cache_entries: usize,
    /// Access-pattern-driven prefetch (§6 future work, "read
    /// clustering"): stream detection plus hint/data prefetch tiers. Off
    /// by default (the paper's measured system); see [`crate::prefetch`].
    pub prefetch: crate::prefetch::PrefetchCfg,
    /// Forwarding hop bound and request-watchdog parameters.
    pub forward: ForwardCfg,
    /// Protocol message coalescing over STS (default off).
    pub coalesce: CoalesceCfg,
    /// Online per-object strategy selection (default off); see
    /// [`crate::policy`].
    pub policy: crate::policy::PolicyCfg,
}

impl Default for AsvmConfig {
    fn default() -> AsvmConfig {
        AsvmConfig {
            dynamic_forwarding: true,
            static_forwarding: true,
            dynamic_cache_entries: 4096,
            static_cache_entries: 4096,
            prefetch: crate::prefetch::PrefetchCfg::default(),
            forward: ForwardCfg::default(),
            coalesce: CoalesceCfg::default(),
            policy: crate::policy::PolicyCfg::default(),
        }
    }
}

impl AsvmConfig {
    /// Kai Li's fixed distributed manager: static + global only.
    pub fn fixed_distributed() -> AsvmConfig {
        AsvmConfig {
            dynamic_forwarding: false,
            ..AsvmConfig::default()
        }
    }

    /// Dynamic-manager-like behaviour: dynamic hints backed by global only.
    pub fn dynamic_only() -> AsvmConfig {
        AsvmConfig {
            static_forwarding: false,
            ..AsvmConfig::default()
        }
    }

    /// Global forwarding only (minimum memory, maximum forwarding cost).
    pub fn global_only() -> AsvmConfig {
        AsvmConfig {
            dynamic_forwarding: false,
            static_forwarding: false,
            ..AsvmConfig::default()
        }
    }

    /// With the legacy §6 read-clustering preset: every read fault
    /// unconditionally requests the next `pages` pages
    /// ([`crate::prefetch::PrefetchCfg::readahead`]).
    pub fn with_readahead(pages: u32) -> AsvmConfig {
        AsvmConfig {
            prefetch: crate::prefetch::PrefetchCfg::readahead(pages),
            ..AsvmConfig::default()
        }
    }

    /// With the detector-gated streaming prefetch preset: hint and data
    /// tiers on once a stride is confirmed
    /// ([`crate::prefetch::PrefetchCfg::streaming`]).
    pub fn with_prefetch(depth: u32) -> AsvmConfig {
        AsvmConfig {
            prefetch: crate::prefetch::PrefetchCfg::streaming(depth),
            ..AsvmConfig::default()
        }
    }

    /// Returns this configuration with message coalescing switched on.
    pub fn coalesced(mut self) -> AsvmConfig {
        self.coalesce = CoalesceCfg::on();
        self
    }

    /// Returns this configuration with the online per-object policy
    /// switched on (default window and hysteresis): each node then picks
    /// dynamic/static/global forwarding — and, where the transport
    /// supports it, coalescing — per memory object from the object's own
    /// observed traffic. See [`crate::policy`].
    pub fn adaptive(mut self) -> AsvmConfig {
        self.policy = crate::policy::PolicyCfg::on();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_toggle_strategies() {
        let d = AsvmConfig::default();
        assert!(d.dynamic_forwarding && d.static_forwarding);
        let f = AsvmConfig::fixed_distributed();
        assert!(!f.dynamic_forwarding && f.static_forwarding);
        let g = AsvmConfig::global_only();
        assert!(!g.dynamic_forwarding && !g.static_forwarding);
    }

    #[test]
    fn coalescing_defaults_off() {
        let c = AsvmConfig::default().coalesce;
        assert!(!c.enabled, "coalescing must be opt-in");
        assert_eq!(c.max_subframes, 16);
        let on = AsvmConfig::default().coalesced().coalesce;
        assert!(on.enabled && on.piggyback_hints);
    }

    #[test]
    fn policy_defaults_off_and_adaptive_enables_it() {
        let d = AsvmConfig::default();
        assert!(!d.policy.enabled, "the online policy must be opt-in");
        let a = AsvmConfig::default().adaptive();
        assert!(a.policy.enabled);
        assert_eq!(a.policy.window, 48);
        assert_eq!(a.policy.hysteresis, 2);
        assert!(a.policy.manage_coalesce);
        assert!(a.policy.manage_prefetch);
        // Forwarding switches are untouched until the policy acts.
        assert!(a.dynamic_forwarding && a.static_forwarding);
    }

    #[test]
    fn prefetch_presets_map_to_cfgs() {
        let d = AsvmConfig::default().prefetch;
        assert!(!d.enabled, "prefetch must be opt-in");
        let ra = AsvmConfig::with_readahead(8).prefetch;
        assert!(ra.enabled && ra.data && !ra.hints);
        assert_eq!((ra.min_run, ra.depth, ra.max_inflight), (0, 8, 0));
        let st = AsvmConfig::with_prefetch(4).prefetch;
        assert!(st.enabled && st.data && st.hints);
        assert_eq!((st.min_run, st.depth, st.max_inflight), (2, 4, 4));
    }

    #[test]
    fn forward_defaults_are_documented_values() {
        let f = ForwardCfg::default();
        assert_eq!(f.hop_limit, None, "default bound derives from members");
        assert_eq!(f.watchdog_deadline, Dur::from_millis(250));
        assert_eq!(f.retry_budget, 5);
    }
}
