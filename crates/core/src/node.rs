//! The per-node ASVM instance: request redirector, page state machine and
//! internode paging.
//!
//! One [`AsvmNode`] lives next to each node's [`VmSystem`]. Requests from
//! the local VM enter through [`AsvmNode::handle_emmi`]; protocol messages
//! from peer instances through [`AsvmNode::handle_msg`]; pager replies
//! through [`AsvmNode::on_pager_reply`]; and evictions through
//! [`AsvmNode::evict_external`]. Every transition is asynchronous — no call
//! ever waits; continuation state lives in [`PageInfo::busy`] and the
//! queues, per the paper's "asynchronous state transitions" design rule.
//!
//! The request redirector implements the three forwarding strategies of
//! §3.4 layered as fallbacks: dynamic ownership hints, the fixed
//! distributed (static) ownership manager with `fresh`/`paged` hints, and
//! the global walk over all nodes that map the object. Pager-bound
//! requests always serialize through the page's static manager so that two
//! concurrent first-touch faults cannot mint two owners.

use machvm::{
    Access, EmmiToKernel, EmmiToPager, LockMode, LockOp, MemObjId, PageData, PageIdx, SupplyMode,
    VmObjId, VmSystem,
};
use std::collections::BTreeMap;
use svmsim::{CostModel, Dur, NodeId, Time};

use crate::config::AsvmConfig;
use crate::object::{
    AsvmObject, Busy, EvictStage, PageInfo, PendingLocal, QueuedReq, RecoverState, StaticHint,
};
use crate::protocol::{AsvmMsg, NetSend, PagerSend, ReqKind, ReqPath};

/// Effects produced by ASVM handlers.
#[derive(Debug, Default)]
pub struct Fx {
    /// Message-processor time to charge.
    pub cpu: Dur,
    /// ASVM protocol messages to send over STS.
    pub net: Vec<NetSend>,
    /// EMMI requests to real pagers, to send over NORMA-IPC.
    pub pager: Vec<PagerSend>,
    /// Effects emitted by nested VM calls (fault completions, further EMMI
    /// traffic); the caller must drain these.
    pub vm: machvm::Effects,
    /// Pull requests that must continue in another distributed object on
    /// this node (shadow-chain escalations, §3.7.3).
    pub(crate) pull_escalations: Vec<(VmObjId, PageIdx, crate::object::QueuedReq)>,
    /// Objects whose copy notification has been applied by every sharing
    /// node; a fork waiting on them may complete.
    pub settled: Vec<MemObjId>,
    /// Range locks granted to this node (§6 future work); the cluster
    /// resumes the task waiting on each.
    pub lock_granted: Vec<(MemObjId, crate::locks::PageRange)>,
    /// Statistics counters to bump, by interned key. The core crate has no
    /// stats handle; the cluster-layer interpreter applies these.
    pub bumps: Vec<&'static str>,
}

impl Fx {
    /// Creates an empty effect sink.
    pub fn new() -> Fx {
        Fx::default()
    }

    pub(crate) fn send(&mut self, dst: NodeId, msg: AsvmMsg) {
        self.net.push(NetSend { dst, msg });
    }

    pub(crate) fn bump(&mut self, key: &'static str) {
        self.bumps.push(key);
    }
}

/// The ASVM instance of one node.
pub struct AsvmNode {
    me: NodeId,
    cost: CostModel,
    objects: BTreeMap<MemObjId, AsvmObject>,
    by_vmobj: BTreeMap<VmObjId, MemObjId>,
    /// Any registered object ever enabled prefetch: gates the per-access
    /// bookkeeping hook ([`AsvmNode::prefetch_note_access`]) so
    /// prefetch-off runs pay exactly one boolean test per access.
    prefetch_live: bool,
}

impl AsvmNode {
    /// Creates the instance for node `me`.
    pub fn new(me: NodeId, cost: CostModel) -> AsvmNode {
        AsvmNode {
            me,
            cost,
            objects: BTreeMap::new(),
            by_vmobj: BTreeMap::new(),
            prefetch_live: false,
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Approximate bytes of non-pageable protocol metadata this node
    /// holds: object membership, per-page owner/copyset records, the
    /// fixed-capacity forwarding hint caches, and pending-request tables.
    ///
    /// This is the gauge behind the paper's bounded-memory claim: ASVM
    /// per-node state scales with the pages a node actually uses (plus
    /// LRU hint caches of configured capacity), not with cluster size —
    /// unlike XMM's centralized table, which grows as pages × nodes on
    /// the manager.
    pub fn state_bytes(&self) -> u64 {
        use std::mem::size_of;
        let node_ids = |n: usize| (n * size_of::<NodeId>()) as u64;
        let pages = |n: usize| (n * size_of::<PageIdx>()) as u64;
        let mut total =
            (self.by_vmobj.len() * (size_of::<VmObjId>() + size_of::<MemObjId>())) as u64;
        for o in self.objects.values() {
            total += size_of::<AsvmObject>() as u64;
            total += node_ids(o.nodes.len() + o.stripe.len() + o.suspects.len());
            for info in o.pages.values() {
                total += (size_of::<PageIdx>() + size_of::<PageInfo>()) as u64;
                total += node_ids(info.readers.len());
                total += (info.queued.len() * size_of::<QueuedReq>()) as u64;
            }
            total += (o.pending.len() * (size_of::<PageIdx>() + size_of::<PendingLocal>())) as u64;
            total += (o.stash.len()
                * (size_of::<PageIdx>() + size_of::<crate::object::StashedCopy>()))
                as u64;
            total += (o.dyn_cache.len() * (size_of::<PageIdx>() + size_of::<NodeId>())) as u64;
            total +=
                (o.static_cache.len() * (size_of::<PageIdx>() + size_of::<StaticHint>())) as u64;
            total += pages(o.static_seen.len() + o.incoming_transfer.len());
            total += (o.static_filling.len() * (size_of::<PageIdx>() + size_of::<NodeId>())) as u64;
            for q in o
                .fill_waiters
                .values()
                .chain(o.static_waiting.values())
                .chain(o.pull_in_flight.values())
            {
                total += size_of::<PageIdx>() as u64 + (q.len() * size_of::<QueuedReq>()) as u64;
            }
            for (_, members) in &o.copy_settles {
                total += size_of::<NodeId>() as u64 + node_ids(members.len());
            }
            for r in o.recover.values() {
                total += (size_of::<PageIdx>() + size_of::<RecoverState>()) as u64;
                total += node_ids(r.expect.len() + r.holders.len());
                total += (r.waiting.len() * size_of::<QueuedReq>()) as u64;
            }
            total += (o.peer_streams.len()
                * (size_of::<NodeId>() + size_of::<crate::prefetch::StreamDetector>()))
                as u64;
            total += pages(o.prefetched.len());
        }
        total
    }

    /// Registers the local representation of `mobj` (called when the
    /// object is first mapped on this node). Notifies the home node so
    /// membership propagates.
    #[allow(clippy::too_many_arguments)]
    pub fn register_object(
        &mut self,
        mobj: MemObjId,
        vm_obj: VmObjId,
        size_pages: u32,
        home: NodeId,
        pager_node: NodeId,
        cfg: AsvmConfig,
        fx: &mut Fx,
    ) {
        // The *configured* setting, before any policy-start strip: a
        // Static-start object can still have its prefetch restored later.
        self.prefetch_live |= cfg.prefetch.enabled;
        let o = AsvmObject::new(mobj, vm_obj, size_pages, home, pager_node, self.me, cfg);
        let prev = self.objects.insert(mobj, o);
        assert!(prev.is_none(), "object {mobj:?} registered twice");
        self.by_vmobj.insert(vm_obj, mobj);
        if self.me != home {
            fx.send(
                home,
                AsvmMsg::MapNotify {
                    mobj,
                    node: self.me,
                },
            );
        }
    }

    /// True if `mobj` is registered here.
    pub fn has_object(&self, mobj: MemObjId) -> bool {
        self.objects.contains_key(&mobj)
    }

    /// The object state (for tests and harnesses).
    pub fn object(&self, mobj: MemObjId) -> &AsvmObject {
        self.objects.get(&mobj).expect("object not registered")
    }

    /// Mutable object state (test setup only).
    pub fn object_mut(&mut self, mobj: MemObjId) -> &mut AsvmObject {
        self.objects.get_mut(&mobj).expect("object not registered")
    }

    /// Iterates over all registered objects.
    pub fn objects(&self) -> impl Iterator<Item = &AsvmObject> {
        self.objects.values()
    }

    /// The memory object behind a VM object, if ASVM manages it.
    pub fn mobj_of(&self, vm_obj: VmObjId) -> Option<MemObjId> {
        self.by_vmobj.get(&vm_obj).copied()
    }

    /// The configuration currently governing `mobj` on this node, if the
    /// object is registered here — the non-panicking lookup the cluster
    /// layer uses to consult per-object transport choices (coalescing) on
    /// the protocol send path. Reflects any runtime changes the online
    /// policy has applied.
    pub fn object_cfg(&self, mobj: MemObjId) -> Option<&AsvmConfig> {
        self.objects.get(&mobj).map(|o| &o.cfg)
    }

    /// Feeds one traffic observation to the object's online policy and
    /// applies the verdict: a closed window bumps `asvm.policy.observe`,
    /// an applied mode change additionally bumps `asvm.policy.switch` and
    /// rewrites the object's forwarding/coalescing switches (see
    /// [`crate::policy`]). Inert when the policy is disabled.
    fn policy_observe(o: &mut AsvmObject, obs: crate::policy::Observation, fx: &mut Fx) {
        use crate::policy::PolicyVerdict;
        match o.policy.record(o.nodes.len(), obs) {
            PolicyVerdict::Idle => {}
            PolicyVerdict::Observed => fx.bump("asvm.policy.observe"),
            PolicyVerdict::Switch(mode) => {
                fx.bump("asvm.policy.observe");
                fx.bump("asvm.policy.switch");
                mode.apply(&mut o.cfg, o.policy.base());
            }
        }
    }

    /// Page state for `(mobj, page)` on this node.
    pub fn page_info(&self, mobj: MemObjId, page: PageIdx) -> Option<&PageInfo> {
        self.objects.get(&mobj)?.pages.get(&page)
    }

    /// This node's current ownership view of `(mobj, page)`, for
    /// piggybacking on outgoing coalesced frames: itself if it owns the
    /// page, else the dynamic hint cache's entry. `None` when the view is
    /// cold — no hint is attached rather than a guess.
    pub fn owner_view(&self, mobj: MemObjId, page: PageIdx) -> Option<NodeId> {
        let o = self.objects.get(&mobj)?;
        if o.pages.get(&page).is_some_and(|pi| pi.owner) {
            return Some(self.me);
        }
        o.dyn_cache.peek(&page).copied()
    }

    /// Applies a piggybacked owner hint from an arriving coalesced frame
    /// to the dynamic hint cache. Returns whether the hint was taken;
    /// hints for unknown objects, hint-disabled objects, self-ownership
    /// or pages this node *knows* it owns are ignored (local truth beats
    /// a peer's view). Pure cache warming: wrong hints are only ever a
    /// forwarding detour, exactly like any stale dynamic hint.
    pub fn apply_owner_hint(&mut self, mobj: MemObjId, page: PageIdx, owner: NodeId) -> bool {
        let me = self.me;
        let Some(o) = self.objects.get_mut(&mobj) else {
            return false;
        };
        if !o.cfg.dynamic_forwarding || owner == me {
            return false;
        }
        if o.pages.get(&page).is_some_and(|pi| pi.owner) {
            return false;
        }
        o.dyn_cache.insert(page, owner);
        true
    }

    // --- Prefetch (access-pattern-driven, §6 "read clustering") ------------

    /// Whether any object on this node was *configured* with prefetch
    /// enabled. The cluster layer tests this one boolean on the hot
    /// no-fault access path, so prefetch-off runs pay nothing for the
    /// bookkeeping hook. Sticky across policy strips: a Dynamic-mode
    /// object whose prefetch is currently latched off still needs its
    /// hits noted.
    pub fn wants_access_notes(&self) -> bool {
        self.prefetch_live
    }

    /// Notes a demand access that was satisfied from local memory (no
    /// fault). Settles a speculative fill covering `page` — as a prefetch
    /// hit when the access *read* the prefetched data, as wasted when a
    /// write clobbered it unread (the speculative transfer bought
    /// nothing) — advances the stream detector (hits are part of the
    /// stream), and — for detector-gated presets — tops the predicted
    /// window back up on read hits so a steady stream keeps riding ahead
    /// of its faults. Writes never top up: speculative pulls fetch *read*
    /// copies, so only read activity is evidence they help. Returns
    /// whether a speculative fill was settled.
    pub fn prefetch_note_access(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        vm_obj: VmObjId,
        page: PageIdx,
        write: bool,
        fx: &mut Fx,
    ) -> bool {
        let Some(mobj) = self.by_vmobj.get(&vm_obj).copied() else {
            return false;
        };
        let Some(o) = self.objects.get_mut(&mobj) else {
            return false;
        };
        if o.cfg.prefetch.enabled {
            o.local_stream.observe(page);
        }
        let settled = if o.prefetched.is_empty() {
            false
        } else {
            Self::spec_settle(o, page, write, fx)
        };
        // Top-up is detector-gated only: the legacy readahead preset
        // (`min_run == 0`) issues exclusively from fault time, exactly
        // like the original loop, so its traffic stays byte-identical.
        if settled && !write && o.cfg.prefetch.min_run > 0 {
            Self::issue_prefetch(o, self.me, &self.cost, now, vm, page, fx);
        }
        self.drain_escalations(now, vm, fx);
        settled
    }

    /// Fills `out` with owner hints for the pages the serving side
    /// predicts `dst` will fault on next, based on the per-peer demand
    /// stream detector. The cluster layer piggybacks these on frames
    /// already flowing to `dst` (zero extra frames, a few extra subframe
    /// bytes), warming the peer's dynamic hint cache *before* the fault.
    pub fn prefetch_hint_window(
        &self,
        mobj: MemObjId,
        dst: NodeId,
        out: &mut Vec<crate::coalesce::OwnerHintEntry>,
    ) {
        let Some(o) = self.objects.get(&mobj) else {
            return;
        };
        if !(o.cfg.prefetch.enabled && o.cfg.prefetch.hints) {
            return;
        }
        let Some(det) = o.peer_streams.get(&dst) else {
            return;
        };
        let (Some(anchor), Some((stride, depth))) = (det.anchor(), det.prediction(&o.cfg.prefetch))
        else {
            return;
        };
        for k in 1..=depth {
            let idx = anchor.0 as i64 + stride * k as i64;
            if idx < 0 || idx >= o.size_pages as i64 {
                continue;
            }
            let p = PageIdx(idx as u32);
            // Same view `owner_view` serves the per-subframe piggyback:
            // local ownership is ground truth, the dynamic cache is the
            // best available guess, no hint otherwise.
            let owner = if o.pages.get(&p).is_some_and(|pi| pi.owner) {
                self.me
            } else {
                match o.dyn_cache.peek(&p) {
                    Some(n) => *n,
                    None => continue,
                }
            };
            if owner == dst {
                continue;
            }
            out.push((mobj, p, owner));
        }
    }

    // --- Local VM ingress --------------------------------------------------

    /// Continues pull lookups that must proceed in another distributed
    /// object on this node (shadow-chain escalations, §3.7.3).
    fn drain_escalations(&mut self, now: Time, vm: &mut VmSystem, fx: &mut Fx) {
        while let Some((vm_obj, page, req)) = fx.pull_escalations.pop() {
            let mobj = *self
                .by_vmobj
                .get(&vm_obj)
                .expect("pull escalation into unmanaged object");
            let o = self.objects.get_mut(&mobj).unwrap();
            Self::route(
                o,
                self.me,
                &self.cost,
                now,
                vm,
                page,
                req,
                ReqPath::default(),
                fx,
            );
        }
    }

    /// Handles an EMMI call from the local VM system on `vm_obj`.
    pub fn handle_emmi(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        vm_obj: VmObjId,
        call: EmmiToPager,
        fx: &mut Fx,
    ) {
        fx.cpu += self.cost.asvm_handle;
        let mobj = *self
            .by_vmobj
            .get(&vm_obj)
            .expect("EMMI for unmanaged object");
        let o = self.objects.get_mut(&mobj).unwrap();
        match call {
            EmmiToPager::DataRequest { page, access } => {
                Self::policy_observe(
                    o,
                    crate::policy::Observation::LocalFault {
                        write: access == Access::Write,
                    },
                    fx,
                );
                // The stream detector watches every local demand fault;
                // a stride change cancels outstanding speculation (no
                // further issues on the stale prediction — in-flight
                // requests complete through the normal protocol and are
                // charged as wasted if nothing ever reads them).
                if o.cfg.prefetch.enabled && o.local_stream.observe(page) {
                    let inflight = o.pending.values().filter(|p| p.speculative).count();
                    for _ in 0..inflight {
                        fx.bump("asvm.prefetch.cancelled");
                    }
                }
                // A demand fault on a prefetched page still consumes the
                // speculative fill — even if the policy has since
                // stripped the object's prefetch, leftovers settle
                // honestly. A read fault scores a hit; a write fault
                // clobbers the read copy unread, so the speculative
                // transfer was wasted.
                if !o.prefetched.is_empty() {
                    Self::spec_settle(o, page, access == Access::Write, fx);
                }
                Self::local_request(o, self.me, &self.cost, now, vm, page, access, fx);
                // Read clustering (§6 future work), generalized: pull the
                // detector's predicted window in the same breath so
                // sequential and strided scans stream.
                if access == Access::Read {
                    Self::issue_prefetch(o, self.me, &self.cost, now, vm, page, fx);
                }
            }
            EmmiToPager::DataUnlock { page, .. } => {
                Self::policy_observe(
                    o,
                    crate::policy::Observation::LocalFault { write: true },
                    fx,
                );
                // A write upgrade whose *first* touch of a prefetched
                // read copy is this unlock wastes the speculative
                // transfer: the data was never read, only overwritten.
                // (A page read before being written settled as a hit
                // already and is no longer in the prefetched set.)
                if !o.prefetched.is_empty() {
                    Self::spec_settle(o, page, true, fx);
                }
                Self::local_request(o, self.me, &self.cost, now, vm, page, Access::Write, fx);
            }
            EmmiToPager::DataReturn { page, data, dirty } => {
                // Not produced by ASVM's own flows, but a correct sink: the
                // contents go back to the real pager.
                if dirty {
                    fx.pager.push(PagerSend {
                        pager_node: o.pager_node,
                        reply_to: self.me,
                        mobj,
                        obj: vm_obj,
                        call: EmmiToPager::DataReturn { page, data, dirty },
                    });
                }
            }
            EmmiToPager::LockCompleted { page, result } => {
                crate::copymgmt::on_lock_completed(
                    o, self.me, &self.cost, now, vm, page, result, fx,
                );
            }
            EmmiToPager::PullCompleted { page, result } => {
                crate::copymgmt::on_pull_completed(
                    o, self.me, &self.cost, now, vm, page, result, fx,
                );
            }
        }
        self.drain_escalations(now, vm, fx);
    }

    /// A local fault needs `access` to `page`.
    fn local_request(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        access: Access,
        fx: &mut Fx,
    ) {
        Self::request(o, me, cost, now, vm, page, access, false, fx);
    }

    /// [`AsvmNode::local_request`] with the speculative marker: a
    /// prefetch-issued request travels, routes and is served exactly like
    /// a demand request — the flag only drives accounting.
    fn request(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        access: Access,
        speculative: bool,
        fx: &mut Fx,
    ) {
        if let Some(p) = o.pending.get_mut(&page) {
            // A demand fault catching an in-flight speculative request:
            // the prefetch was issued but did not land in time.
            if !speculative && p.speculative {
                p.speculative = false;
                fx.bump("asvm.prefetch.late");
            }
            if p.access.allows(access) {
                return; // Already in flight.
            }
        }
        let has_copy = o.pages.contains_key(&page);
        o.pending.insert(
            page,
            PendingLocal {
                access,
                has_copy,
                issued: now,
                retries: 0,
                speculative,
            },
        );
        let req = QueuedReq {
            access,
            origin: me,
            origin_obj: o.vm_obj,
            has_copy,
            kind: ReqKind::Access,
            deliver: None,
        };
        // If the page is busy here (transfer/eviction in flight), park the
        // request; completion re-dispatches it.
        if let Some(pi) = o.pages.get_mut(&page) {
            if pi.busy.is_some() {
                pi.queued.push_back(req);
                return;
            }
            if pi.owner {
                // Owner with a local upgrade request: run transition 7.
                Self::serve(o, me, cost, now, vm, page, req, fx);
                return;
            }
        }
        let path = ReqPath {
            speculative,
            ..ReqPath::default()
        };
        Self::route(o, me, cost, now, vm, page, req, path, fx);
    }

    /// Issues the data-prefetch window predicted by the local stream
    /// detector after a read fault on `page`: for each predicted page not
    /// already resident or requested, a speculative read request enters
    /// the normal protocol, bounded by the in-flight budget. With the
    /// legacy preset (`min_run == 0`) this is exactly the original
    /// readahead loop: unconditional `+1` window, no budget.
    fn issue_prefetch(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        fx: &mut Fx,
    ) {
        if !o.cfg.prefetch.data {
            return;
        }
        let Some((stride, depth)) = o.local_stream.prediction(&o.cfg.prefetch) else {
            return;
        };
        let budget = o.cfg.prefetch.max_inflight;
        let mut inflight = if budget > 0 {
            o.pending.values().filter(|p| p.speculative).count() as u32
        } else {
            0
        };
        for k in 1..=depth {
            if budget > 0 && inflight >= budget {
                break;
            }
            let idx = page.0 as i64 + stride * k as i64;
            if idx < 0 || idx >= o.size_pages as i64 {
                continue;
            }
            let p = PageIdx(idx as u32);
            if o.pages.contains_key(&p) || o.pending.contains_key(&p) {
                continue;
            }
            fx.bump("asvm.prefetch.issued");
            inflight += 1;
            Self::request(o, me, cost, now, vm, p, Access::Read, true, fx);
        }
    }

    /// Settles the speculative fill for `page`, if one is still waiting
    /// for a demand access: removes it from the prefetched set, bumps
    /// `asvm.prefetch.hit`/`wasted`, and feeds the outcome to the online
    /// policy, which may latch the object's data tier off. Returns
    /// whether a fill was settled.
    fn spec_settle(o: &mut AsvmObject, page: PageIdx, wasted: bool, fx: &mut Fx) -> bool {
        if !o.prefetched.remove(&page) {
            return false;
        }
        fx.bump(if wasted {
            "asvm.prefetch.wasted"
        } else {
            "asvm.prefetch.hit"
        });
        if o.cfg.prefetch.min_run == 0 {
            // The legacy readahead preset predates the policy's wasted
            // latch; keeping it out preserves the original preset's
            // traffic bit-for-bit (the latch guards detector-driven
            // speculation only).
            return true;
        }
        use crate::policy::PrefetchVerdict;
        match o.policy.record_prefetch(wasted) {
            PrefetchVerdict::Idle => {}
            PrefetchVerdict::Observed => fx.bump("asvm.policy.observe"),
            PrefetchVerdict::Disable => {
                fx.bump("asvm.policy.observe");
                fx.bump("asvm.policy.prefetch_off");
                o.cfg.prefetch.data = false;
            }
        }
        true
    }

    // --- Peer message ingress ------------------------------------------------

    /// Handles one ASVM protocol message from node `from`.
    pub fn handle_msg(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        from: NodeId,
        msg: AsvmMsg,
        fx: &mut Fx,
    ) {
        // Acknowledgements are cheap bookkeeping; state-machine work pays
        // the full handling cost.
        fx.cpu += match &msg {
            AsvmMsg::InvalidateAck { .. }
            | AsvmMsg::ReadCheckReply { .. }
            | AsvmMsg::AcceptReply { .. }
            | AsvmMsg::PushAck { .. }
            | AsvmMsg::PushDone { .. }
            | AsvmMsg::OwnerHint { .. }
            | AsvmMsg::PagedHint { .. } => self.cost.asvm_ack_handle,
            _ => self.cost.asvm_handle,
        };
        let me = self.me;
        let mobj = msg.mobj();
        let Some(o) = self.objects.get_mut(&mobj) else {
            panic!("{me}: message for unregistered object {mobj:?}: {msg:?}");
        };
        // The policy learns from arriving access requests — the traffic a
        // forwarding-strategy change would actually redirect. Push scans,
        // pull lookups and bookkeeping replies carry no signal about the
        // object's read/write mix.
        if let AsvmMsg::PageReq {
            access,
            page,
            origin,
            path,
            kind: ReqKind::Access,
            deliver: None,
            ..
        } = &msg
        {
            Self::policy_observe(
                o,
                crate::policy::Observation::RemoteReq {
                    write: *access == Access::Write,
                },
                fx,
            );
            // Hint prefetch learns the *demand* stream of the faulting
            // node: frames flowing back to it will carry owner hints for
            // its predicted next pages. Speculative requests are its
            // prefetcher echoing the same stride — not new evidence.
            if o.cfg.prefetch.enabled && o.cfg.prefetch.hints && !path.speculative {
                o.peer_streams.entry(*origin).or_default().observe(*page);
            }
        }
        let cost = &self.cost;
        match msg {
            AsvmMsg::MapNotify { node, .. } => {
                assert_eq!(o.home, me, "MapNotify must go to the home node");
                if !o.nodes.contains(&node) {
                    o.nodes.push(node);
                    o.nodes.sort();
                    let nodes = o.nodes.clone();
                    for n in &nodes {
                        if *n != me {
                            fx.send(
                                *n,
                                AsvmMsg::Membership {
                                    mobj,
                                    nodes: nodes.clone(),
                                },
                            );
                        }
                    }
                    // The home applies the same membership-change rules as
                    // everyone else: the fresh shortcut is no longer sound,
                    // and ownership must be re-announced to the (moved)
                    // static managers before the new member's first fault
                    // (the synchronous fork guarantees the ordering).
                    o.fresh_valid = false;
                    let owned: Vec<PageIdx> = o
                        .pages
                        .iter()
                        .filter(|(_, pi)| pi.owner)
                        .map(|(p, _)| *p)
                        .collect();
                    for page in owned {
                        Self::notify_owner_hint(o, me, cost, now, vm, page, fx);
                    }
                }
            }
            AsvmMsg::Membership { nodes, .. } => {
                o.nodes = nodes;
                o.fresh_valid = false;
                // Static-manager hashing moved: re-announce ownership of
                // our pages to the (possibly new) static managers so
                // requests keep finding owners without a global walk, and
                // so the fresh/pull shortcut cannot mint a second owner.
                let owned: Vec<PageIdx> = o
                    .pages
                    .iter()
                    .filter(|(_, pi)| pi.owner)
                    .map(|(p, _)| *p)
                    .collect();
                for page in owned {
                    Self::notify_owner_hint(o, me, cost, now, vm, page, fx);
                }
                // Static-manager hashing may have moved: re-dispatch
                // anything parked on static routing so nothing is stranded.
                let parked: Vec<(PageIdx, Vec<QueuedReq>)> =
                    std::mem::take(&mut o.static_waiting).into_iter().collect();
                for (page, reqs) in parked {
                    for q in reqs {
                        Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
                    }
                }
            }
            AsvmMsg::PageReq {
                page,
                access,
                origin,
                origin_obj,
                has_copy,
                path,
                kind,
                deliver,
                ..
            } => {
                let req = QueuedReq {
                    access,
                    origin,
                    origin_obj,
                    has_copy,
                    kind,
                    deliver,
                };
                Self::route(o, me, cost, now, vm, page, req, path, fx);
            }
            AsvmMsg::Grant {
                page,
                access,
                data,
                dirty,
                ownership,
                readers,
                version,
                pull_snapshot,
                ..
            } => {
                // A pulled snapshot has never been pushed: version 0, so a
                // later write still delivers it to existing copies.
                let version = if pull_snapshot { 0 } else { version };
                Self::grant_arrived(
                    o, me, cost, now, vm, from, page, access, data, dirty, ownership, readers,
                    version, fx,
                );
            }
            AsvmMsg::Invalidate {
                page, from: owner, ..
            } => {
                if let Some(pi) = o.pages.get(&page) {
                    assert!(
                        pi.busy.is_none() || matches!(pi.busy, Some(Busy::AwaitingOwnership)),
                        "invalidate raced a busy page"
                    );
                    if !pi.owner {
                        vm.set_busy(o.vm_obj, page, false);
                        vm.kernel_call(
                            now,
                            o.vm_obj,
                            EmmiToKernel::LockRequest {
                                page,
                                op: LockOp::Flush {
                                    return_dirty: false,
                                },
                                mode: LockMode::Normal,
                            },
                            &mut fx.vm,
                        );
                        o.pages.remove(&page);
                        // A speculative fill invalidated before any demand
                        // access consumed it: the transfer was wasted.
                        Self::spec_settle(o, page, true, fx);
                    }
                }
                o.dyn_cache.insert(page, owner);
                fx.send(
                    owner,
                    AsvmMsg::InvalidateAck {
                        mobj,
                        page,
                        from: me,
                    },
                );
            }
            AsvmMsg::InvalidateAck {
                page, from: acker, ..
            } => {
                Self::invalidate_ack(o, me, cost, now, vm, page, acker, fx);
            }
            AsvmMsg::ReadCheck {
                page, from: owner, ..
            } => {
                let has = match o.pages.get_mut(&page) {
                    Some(pi) if !pi.owner && pi.busy.is_none() => {
                        pi.busy = Some(Busy::AwaitingOwnership);
                        vm.set_busy(o.vm_obj, page, true);
                        true
                    }
                    _ => false,
                };
                fx.send(
                    owner,
                    AsvmMsg::ReadCheckReply {
                        mobj,
                        page,
                        from: me,
                        has_copy: has,
                    },
                );
            }
            AsvmMsg::ReadCheckReply {
                page,
                from: reader,
                has_copy,
                ..
            } => {
                Self::read_check_reply(o, me, cost, now, vm, page, reader, has_copy, fx);
            }
            AsvmMsg::OwnershipTransfer {
                page,
                readers,
                version,
                dirty,
                ..
            } => {
                let pi = o
                    .pages
                    .get_mut(&page)
                    .expect("ownership transfer to node without the page");
                // `busy == None` happens only when the watchdog broke an
                // AwaitingOwnership limbo (suspected-dead transferor) and
                // the transfer then arrived after all; accept it.
                assert!(
                    pi.busy.is_none() || matches!(pi.busy, Some(Busy::AwaitingOwnership)),
                    "ownership transfer raced a busy page"
                );
                pi.busy = None;
                vm.set_busy(o.vm_obj, page, false);
                pi.owner = true;
                pi.readers = readers.into_iter().collect();
                pi.readers.remove(&me);
                pi.version = version;
                pi.dirty |= dirty;
                let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
                Self::notify_owner_hint(o, me, cost, now, vm, page, fx);
                for q in queued {
                    Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
                }
                Self::drain_parked(o, me, cost, now, vm, page, fx);
            }
            AsvmMsg::AcceptAsk {
                page, from: owner, ..
            } => {
                let accept = Self::has_free_memory(vm) && !o.incoming_transfer.contains(&page);
                if accept {
                    o.incoming_transfer.insert(page);
                }
                fx.send(
                    owner,
                    AsvmMsg::AcceptReply {
                        mobj,
                        page,
                        from: me,
                        accept,
                    },
                );
            }
            AsvmMsg::AcceptReply {
                page,
                from: candidate,
                accept,
                ..
            } => {
                Self::accept_reply(o, me, cost, now, vm, page, candidate, accept, fx);
            }
            AsvmMsg::PageTransfer {
                page,
                data,
                dirty,
                version,
                ..
            } => {
                o.incoming_transfer.remove(&page);
                let mut pi = PageInfo::new(Access::Read, true, version);
                pi.dirty = dirty;
                let prev = o.pages.insert(page, pi);
                assert!(prev.is_none(), "page transfer onto existing state");
                vm.kernel_call(
                    now,
                    o.vm_obj,
                    EmmiToKernel::DataSupply {
                        page,
                        data,
                        lock: Access::Read,
                        mode: SupplyMode::Normal,
                    },
                    &mut fx.vm,
                );
                Self::notify_owner_hint(o, me, cost, now, vm, page, fx);
                Self::drain_parked(o, me, cost, now, vm, page, fx);
            }
            AsvmMsg::OwnerHint { page, owner, .. } => {
                Self::owner_hint(o, me, cost, now, vm, page, owner, fx);
            }
            AsvmMsg::PagedHint { page, .. } => {
                o.static_seen.insert(page);
                o.static_cache.insert(page, StaticHint::Paged);
            }
            AsvmMsg::PushReq { page, from, .. } => {
                crate::copymgmt::on_push_req(o, me, cost, now, vm, page, from, fx);
            }
            AsvmMsg::PushAck {
                page,
                from,
                needs_data,
                ..
            } => {
                crate::copymgmt::on_push_ack(o, me, cost, now, vm, page, from, needs_data, fx);
            }
            AsvmMsg::PushData {
                page, from, data, ..
            } => {
                crate::copymgmt::on_push_data(o, me, cost, now, vm, page, from, data, fx);
            }
            AsvmMsg::PushDone { page, from, .. } => {
                crate::copymgmt::on_push_done(o, me, cost, now, vm, page, from, fx);
            }
            AsvmMsg::CopyMade { from: creator, .. } => {
                Self::apply_copy_made(o, now, vm, fx);
                if o.home == me {
                    // Relay to every other member and settle when all ack.
                    let targets: Vec<NodeId> = o
                        .nodes
                        .iter()
                        .copied()
                        .filter(|n| *n != me && *n != creator)
                        .collect();
                    if targets.is_empty() {
                        if creator == me {
                            fx.settled.push(mobj);
                        } else {
                            fx.send(creator, AsvmMsg::CopySettled { mobj });
                        }
                    } else {
                        for n in &targets {
                            fx.send(
                                *n,
                                AsvmMsg::CopyMade {
                                    mobj,
                                    from: creator,
                                },
                            );
                        }
                        o.copy_settles
                            .push((creator, targets.into_iter().collect()));
                    }
                } else {
                    // Relayed notification: acknowledge to the home node.
                    fx.send(o.home, AsvmMsg::CopyMadeAck { mobj, from: me });
                }
            }
            AsvmMsg::CopyMadeAck { from: acker, .. } => {
                assert_eq!(o.home, me, "copy acks aggregate at the home node");
                let mut settled_child = None;
                for (child, pending) in o.copy_settles.iter_mut() {
                    if pending.remove(&acker) {
                        if pending.is_empty() {
                            settled_child = Some(*child);
                        }
                        break;
                    }
                }
                if let Some(child) = settled_child {
                    o.copy_settles.retain(|(_, p)| !p.is_empty());
                    if child == me {
                        fx.settled.push(mobj);
                    } else {
                        fx.send(child, AsvmMsg::CopySettled { mobj });
                    }
                }
            }
            AsvmMsg::CopySettled { .. } => {
                fx.settled.push(mobj);
            }
            AsvmMsg::PullHop {
                page,
                access,
                origin,
                origin_obj,
                deliver,
                ..
            } => {
                let req = QueuedReq {
                    access,
                    origin,
                    origin_obj,
                    has_copy: false,
                    kind: ReqKind::Access,
                    deliver: Some(deliver),
                };
                crate::copymgmt::pull_dispatch(o, me, cost, now, vm, page, req, fx);
            }
            AsvmMsg::RangeLockReq {
                first,
                count,
                from: holder,
                ..
            } => {
                assert_eq!(o.home, me, "range locks are managed at the home node");
                let range = crate::locks::PageRange { first, count };
                if o.range_locks.acquire(range, holder) {
                    if holder == me {
                        fx.lock_granted.push((mobj, range));
                    } else {
                        fx.send(holder, AsvmMsg::RangeLockGrant { mobj, first, count });
                    }
                }
            }
            AsvmMsg::RangeLockGrant { first, count, .. } => {
                fx.lock_granted
                    .push((mobj, crate::locks::PageRange { first, count }));
            }
            AsvmMsg::RangeLockRelease {
                first,
                count,
                from: holder,
                ..
            } => {
                assert_eq!(o.home, me, "range locks are managed at the home node");
                let range = crate::locks::PageRange { first, count };
                for g in o.range_locks.release(range, holder) {
                    if g.holder == me {
                        fx.lock_granted.push((mobj, g.range));
                    } else {
                        fx.send(
                            g.holder,
                            AsvmMsg::RangeLockGrant {
                                mobj,
                                first: g.range.first,
                                count: g.range.count,
                            },
                        );
                    }
                }
            }
            AsvmMsg::Retry { page, access, .. } => {
                // Re-issue our own request after a push/pull race.
                o.pending.remove(&page);
                Self::local_request(o, me, cost, now, vm, page, access, fx);
            }
            AsvmMsg::RecoverQuery {
                page, from: asker, ..
            } => {
                // Report our local view. A page mid-transition is not a
                // usable copy — except AwaitingOwnership, which is exactly
                // the dead-owner limbo reconstruction resolves.
                let (has_copy, version, owner) = match o.pages.get(&page) {
                    Some(pi)
                        if pi.busy.is_none()
                            || matches!(pi.busy, Some(Busy::AwaitingOwnership)) =>
                    {
                        (true, pi.version, pi.owner)
                    }
                    _ => (false, 0, false),
                };
                fx.send(
                    asker,
                    AsvmMsg::RecoverReply {
                        mobj,
                        page,
                        from: me,
                        has_copy,
                        version,
                        owner,
                    },
                );
            }
            AsvmMsg::RecoverReply {
                page,
                from: peer,
                has_copy,
                version,
                owner,
                ..
            } => {
                Self::recover_reply(
                    o, me, cost, now, vm, page, peer, has_copy, version, owner, fx,
                );
            }
            AsvmMsg::RecoverElect { page, readers, .. } => {
                Self::recover_elect(o, me, cost, now, vm, page, readers, fx);
            }
        }
        self.drain_escalations(now, vm, fx);
    }

    // --- Pager ingress ----------------------------------------------------------

    /// A reply from the real pager arrived for `vm_obj` (over NORMA-IPC).
    pub fn on_pager_reply(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        vm_obj: VmObjId,
        reply: EmmiToKernel,
        fx: &mut Fx,
    ) {
        fx.cpu += self.cost.asvm_handle;
        let me = self.me;
        let mobj = *self
            .by_vmobj
            .get(&vm_obj)
            .expect("pager reply for unmanaged object");
        let o = self.objects.get_mut(&mobj).unwrap();
        match reply {
            EmmiToKernel::DataSupply { page, data, .. } => {
                // A recovery re-fetch can race the regular protocol: a
                // late grant may rebuild local page state (completing the
                // pending request, possibly followed by a newer pending)
                // after the fetch went out. A reply arriving into that
                // state is stale — drop it rather than double-supplying
                // the kernel. Healthy runs never take this branch
                // (`docs/RELIABILITY.md`).
                if o.pages.contains_key(&page) || !o.pending.contains_key(&page) {
                    fx.bump("asvm.recover.stale_fill");
                    self.drain_escalations(now, vm, fx);
                    return;
                }
                let pend = o
                    .pending
                    .remove(&page)
                    .expect("pager supply without pending request");
                // Version 0 = "never pushed": if copies were made before
                // this page ever materialized, the first write must still
                // push the (zero/pager) snapshot into them.
                let needs_push = pend.access == Access::Write && o.version > 0;
                let lock = if needs_push {
                    Access::Read
                } else {
                    pend.access
                };
                let mut pi = PageInfo::new(lock, true, 0);
                pi.dirty = false;
                let prev = o.pages.insert(page, pi);
                assert!(prev.is_none(), "pager supply onto existing page state");
                if pend.speculative {
                    o.prefetched.insert(page);
                }
                vm.kernel_call(
                    now,
                    vm_obj,
                    EmmiToKernel::DataSupply {
                        page,
                        data,
                        lock,
                        mode: SupplyMode::Normal,
                    },
                    &mut fx.vm,
                );
                Self::notify_owner_hint(o, me, &self.cost, now, vm, page, fx);
                if needs_push {
                    // Run the write through the owner state machine so the
                    // snapshot reaches every copy before the grant.
                    o.pending.insert(page, pend);
                    let req = crate::object::QueuedReq {
                        access: Access::Write,
                        origin: me,
                        origin_obj: vm_obj,
                        has_copy: true,
                        kind: crate::protocol::ReqKind::Access,
                        deliver: None,
                    };
                    crate::copymgmt::start_push(o, me, &self.cost, now, vm, page, req, fx);
                }
                Self::drain_parked(o, me, &self.cost, now, vm, page, fx);
            }
            other => panic!("unexpected pager reply {other:?}"),
        }
        self.drain_escalations(now, vm, fx);
    }

    // --- Eviction ingress ----------------------------------------------------------

    /// The VM evicted `page` of `vm_obj`; run the four-step internode
    /// pageout algorithm (§3.6).
    pub fn evict_external(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        vm_obj: VmObjId,
        page: PageIdx,
        data: PageData,
        dirty: bool,
        fx: &mut Fx,
    ) {
        fx.cpu += self.cost.asvm_handle;
        let me = self.me;
        let mobj = *self
            .by_vmobj
            .get(&vm_obj)
            .expect("eviction for unmanaged object");
        let o = self.objects.get_mut(&mobj).unwrap();
        let Some(pi) = o.pages.get_mut(&page) else {
            // No state: nothing to do (e.g. a pushed page the manager never
            // tracked).
            return;
        };
        assert!(pi.busy.is_none(), "VM evicted a busy page");
        if !pi.owner {
            // Step 1: not the owner — discard; the owner can supply it
            // again at any time. Exception: if our own upgrade request for
            // this page is in flight and claimed this copy, the owner may
            // elide the contents from the grant — keep them until it
            // arrives (see [`crate::object::StashedCopy`]).
            if matches!(o.pending.get(&page), Some(p) if p.has_copy) {
                fx.bump("asvm.evict.stash");
                o.stash.insert(
                    page,
                    crate::object::StashedCopy {
                        data,
                        version: pi.version,
                    },
                );
            }
            o.pages.remove(&page);
            // A speculative fill evicted before any demand access: wasted.
            Self::spec_settle(o, page, true, fx);
            return;
        }
        pi.dirty |= dirty;
        let readers: Vec<NodeId> = pi.readers.iter().copied().collect();
        if let Some((first, rest)) = readers.split_first() {
            // Step 2: ask readers, one after another.
            pi.busy = Some(Busy::Evict {
                data,
                dirty: pi.dirty,
                stage: EvictStage::CheckingReaders {
                    current: *first,
                    remaining: rest.to_vec(),
                },
            });
            fx.send(
                *first,
                AsvmMsg::ReadCheck {
                    mobj,
                    page,
                    from: me,
                },
            );
        } else {
            let d = pi.dirty;
            Self::evict_step3(o, me, &self.cost, now, vm, page, data, d, fx);
        }
    }

    // --- Redirector --------------------------------------------------------------------

    /// Routes a request currently held by this node toward the page owner.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn route(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        req: QueuedReq,
        mut path: ReqPath,
        fx: &mut Fx,
    ) {
        // 1. Can we serve or must the request wait here?
        if let Some(pi) = o.pages.get_mut(&page) {
            if pi.busy.is_some() {
                pi.queued.push_back(req);
                return;
            }
            if pi.owner {
                Self::serve(o, me, cost, now, vm, page, req, fx);
                return;
            }
        }
        // 2. An accepted page transfer is guaranteed to arrive: park the
        // request until it lands. (Requests are deliberately NOT parked at
        // nodes with their own grants pending — two pending nodes could
        // park each other's requests in a cycle; in-flight ownership is
        // instead tracked at the static manager, whose hint the granter
        // updates eagerly.) Watchdog re-issues skip the park: the transfer
        // they are recovering from may never land.
        if o.incoming_transfer.contains(&page) && !path.recovering {
            o.fill_waiters.entry(page).or_default().push(req);
            return;
        }
        // 3. Global walk in progress: try the next (live) member.
        if let Some(pos) = path.global_pos {
            let mut next = pos as usize + 1;
            while next < o.nodes.len()
                && (o.nodes[next] == me || o.suspects.contains(&o.nodes[next]))
            {
                next += 1;
            }
            if next < o.nodes.len() {
                path.global_pos = Some(next as u16);
                path.hops += 1;
                Self::send_req(o, fx, o.nodes[next], page, &req, path);
            } else {
                // Walk exhausted: no owner exists; the static manager
                // dispatches to the pager.
                path.walk_done = true;
                path.global_pos = None;
                let sm = o.static_node_live(page);
                if sm == me {
                    Self::static_route(o, me, cost, now, vm, page, req, path, fx);
                } else {
                    path.hops += 1;
                    Self::send_req(o, fx, sm, page, &req, path);
                }
            }
            return;
        }
        // 4. Dynamic hint.
        let loop_limit = o
            .cfg
            .forward
            .hop_limit
            .unwrap_or((o.nodes.len() as u16) * 2 + 4);
        if o.cfg.dynamic_forwarding && !path.walk_done {
            if path.hops < loop_limit {
                // A hint pointing at a suspected-dead node is useless; skip
                // it (peek, not get — a dead-end consult must not refresh
                // recency).
                let live_hint = o
                    .dyn_cache
                    .peek(&page)
                    .copied()
                    .filter(|h| !o.suspects.contains(h));
                if live_hint.is_some() {
                    let hint = *o.dyn_cache.get(&page).expect("peeked above");
                    if hint != me {
                        if req.access == Access::Write && req.kind == ReqKind::Access {
                            // Collapse the hint chain: the originator becomes
                            // the next owner (Kai Li's optimization).
                            o.dyn_cache.insert(page, req.origin);
                        }
                        path.hops += 1;
                        Self::send_req(o, fx, hint, page, &req, path);
                        return;
                    }
                }
            } else if o.dyn_cache.peek(&page).is_some() {
                // The hop bound tripped with a hint still on offer: a hint
                // cycle (or churn faster than forwarding) — abandon the
                // chain for the static manager.
                fx.bump("asvm.forward.loop_trip");
            }
        }
        // 5. The static ownership manager.
        let sm = o.static_node_live(page);
        if sm != me {
            path.hops += 1;
            Self::send_req(o, fx, sm, page, &req, path);
            return;
        }
        Self::static_route(o, me, cost, now, vm, page, req, path, fx);
    }

    /// Routing at the static ownership manager.
    #[allow(clippy::too_many_arguments)]
    fn static_route(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        req: QueuedReq,
        mut path: ReqPath,
        fx: &mut Fx,
    ) {
        if o.static_filling.contains_key(&page) {
            // A pager fill is in flight; serialize behind it.
            o.static_waiting.entry(page).or_default().push(req);
            return;
        }
        // We are the static manager AND our own write grant is in flight:
        // the page is about to be ours. Parking here is cycle-free (one
        // static manager per page).
        if req.origin != me
            && req.deliver.is_none()
            && o.pending
                .get(&page)
                .is_some_and(|p| p.access == Access::Write)
        {
            o.fill_waiters.entry(page).or_default().push(req);
            return;
        }
        // A watchdog re-issue after a suspected failure: every cached
        // shortcut (hints, fresh) may name the dead node, so resolve the
        // page through ownership reconstruction instead.
        if path.recovering
            && !o.suspects.is_empty()
            && req.kind == ReqKind::Access
            && req.deliver.is_none()
        {
            Self::start_recovery(o, me, cost, now, vm, page, req, fx);
            return;
        }
        if path.walk_done {
            // The walk found no owner — but an ownership transfer may be
            // in flight. The granter updates our hint eagerly, so consult
            // it (in every configuration: this is the safety record, not
            // the forwarding optimization) before going to the pager.
            match o.static_cache.get(&page).copied() {
                Some(StaticHint::Owner(n)) if n != me && !o.suspects.contains(&n) => {
                    path.walk_done = false;
                    path.global_pos = None;
                    path.hops += 1;
                    Self::send_req(o, fx, n, page, &req, path);
                    return;
                }
                // The recorded owner died: reconstruct instead of minting
                // a second owner from the pager.
                Some(StaticHint::Owner(n))
                    if o.suspects.contains(&n)
                        && req.kind == ReqKind::Access
                        && req.deliver.is_none() =>
                {
                    Self::start_recovery(o, me, cost, now, vm, page, req, fx);
                    return;
                }
                _ => {}
            }
            // With suspects around, "the walk found no live owner" does not
            // mean "no owner": the owner may be the dead node, with
            // surviving read copies that a pager re-fetch would silently
            // fork from. Reconstruct first; it falls back to the pager
            // itself when no copy survives.
            if !o.suspects.is_empty() && req.kind == ReqKind::Access && req.deliver.is_none() {
                Self::start_recovery(o, me, cost, now, vm, page, req, fx);
                return;
            }
            Self::pager_dispatch(o, me, cost, now, vm, page, req, fx);
            return;
        }
        if !path.tried_static {
            path.tried_static = true;
            if o.cfg.static_forwarding {
                match o.static_cache.get(&page).copied() {
                    Some(StaticHint::Owner(n))
                        if n != me
                            && o.suspects.contains(&n)
                            && req.kind == ReqKind::Access
                            && req.deliver.is_none() =>
                    {
                        // Our own hint names a dead owner: reconstruct.
                        Self::start_recovery(o, me, cost, now, vm, page, req, fx);
                        return;
                    }
                    Some(StaticHint::Owner(n)) if n != me => {
                        path.hops += 1;
                        Self::send_req(o, fx, n, page, &req, path);
                        return;
                    }
                    Some(StaticHint::Owner(_)) => {
                        // Stale self-hint (we no longer own it); fall through.
                        o.static_cache.remove(&page);
                    }
                    Some(StaticHint::Paged) => {
                        Self::pager_dispatch(o, me, cost, now, vm, page, req, fx);
                        return;
                    }
                    None => {}
                }
            }
            // Fresh: the page has never had an owner; the pager (or the
            // pull path, for copy objects) is authoritative. For
            // distributed *copy* objects this shortcut is always sound even
            // after membership changes: their pages are immutable snapshots
            // (writes COW into local shadow objects), so a duplicate pull
            // returns identical data.
            if (o.fresh_valid || o.source.is_some()) && !o.static_seen.contains(&page) {
                Self::pager_dispatch(o, me, cost, now, vm, page, req, fx);
                return;
            }
        }
        // Hint missing or already tried: fall back to the global walk
        // (over live members only).
        let mut start = 0usize;
        while start < o.nodes.len()
            && (o.nodes[start] == me || o.suspects.contains(&o.nodes[start]))
        {
            start += 1;
        }
        if start >= o.nodes.len() {
            // Single-member object with no owner: dispatch to pager.
            Self::pager_dispatch(o, me, cost, now, vm, page, req, fx);
            return;
        }
        path.global_pos = Some(start as u16);
        path.hops += 1;
        Self::send_req(o, fx, o.nodes[start], page, &req, path);
    }

    /// Sends the request to the real pager on behalf of `req.origin` and
    /// records the fill so concurrent requests serialize.
    #[allow(clippy::too_many_arguments)]
    fn pager_dispatch(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        req: QueuedReq,
        fx: &mut Fx,
    ) {
        if req.kind == ReqKind::PushScan {
            crate::copymgmt::push_scan_no_owner(o, me, cost, now, vm, page, req, fx);
            return;
        }
        if req.deliver.is_none() {
            // Serialize concurrent first-touch faults behind this fill —
            // for pager fills AND pulls: two racing pulls would otherwise
            // both become owners of the page.
            o.static_seen.insert(page);
            o.static_filling.insert(page, req.origin);
        }
        if o.source.is_some() {
            // A distributed copy object with no owner anywhere: the page
            // must be pulled through the shadow chain on the peer node
            // (§3.7.3), not fetched from a pager.
            crate::copymgmt::pull_dispatch(o, me, cost, now, vm, page, req, fx);
            return;
        }
        // PagerSend.obj routes the pager's reply to the origin node's VM
        // object; the glue marks the request as coming from the origin.
        fx.pager.push(PagerSend {
            pager_node: o.pager_for(page),
            reply_to: req.origin,
            mobj: o.mobj,
            obj: req.origin_obj,
            call: EmmiToPager::DataRequest {
                page,
                access: req.access,
            },
        });
        let _ = (me, now, vm);
    }

    /// Grants the request at the owner (Figure 7 transitions 4–7).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn serve(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        req: QueuedReq,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        if req.kind == ReqKind::PushScan {
            crate::copymgmt::push_scan_found(o, me, cost, now, vm, page, req, fx);
            return;
        }
        // Delayed-copy rule (§3.7.2): a write on a page whose version lags
        // the object version needs a push operation first.
        if req.access == Access::Write {
            let needs_push = {
                let pi = o.pages.get(&page).unwrap();
                pi.version != o.version
            };
            if needs_push {
                crate::copymgmt::start_push(o, me, cost, now, vm, page, req, fx);
                return;
            }
        }
        if let Some(deliver) = req.deliver {
            // Pull lookup (§3.7.3): hand a snapshot of the page to the
            // origin in terms of the copy object; the origin does not join
            // this object's reader list.
            let (data, _) = vm
                .peek_page(o.vm_obj, page)
                .expect("owner must hold the page");
            let data = data.clone();
            fx.send(
                req.origin,
                AsvmMsg::Grant {
                    mobj: deliver,
                    page,
                    access: req.access,
                    data: Some(data),
                    dirty: true,
                    ownership: true,
                    readers: vec![],
                    version: 0,
                    pull_snapshot: true,
                },
            );
            return;
        }
        if req.origin == me {
            // Our own request came back to us as owner.
            o.pending.remove(&page);
            match req.access {
                Access::Read => {
                    vm.kernel_call(
                        now,
                        o.vm_obj,
                        EmmiToKernel::LockRequest {
                            page,
                            op: LockOp::Grant(Access::Read),
                            mode: LockMode::Normal,
                        },
                        &mut fx.vm,
                    );
                }
                Access::Write => Self::local_upgrade(o, me, cost, now, vm, page, fx),
            }
            return;
        }
        match req.access {
            Access::Read => {
                // Transition 5: grant read, join the reader list.
                let pi = o.pages.get_mut(&page).unwrap();
                if pi.access == Access::Write {
                    // Single writer XOR multiple readers: downgrade first.
                    if let Some((_, d)) = vm.peek_page(o.vm_obj, page) {
                        pi.dirty |= d;
                    }
                    vm.kernel_call(
                        now,
                        o.vm_obj,
                        EmmiToKernel::LockRequest {
                            page,
                            op: LockOp::Downgrade {
                                return_dirty: false,
                            },
                            mode: LockMode::Normal,
                        },
                        &mut fx.vm,
                    );
                    pi.access = Access::Read;
                }
                pi.readers.insert(req.origin);
                let (data, vm_dirty) = {
                    let (d, dirty) = vm
                        .peek_page(o.vm_obj, page)
                        .expect("owner must hold the page");
                    (d.clone(), dirty)
                };
                let pi = o.pages.get_mut(&page).unwrap();
                pi.dirty |= vm_dirty;
                fx.send(
                    req.origin,
                    AsvmMsg::Grant {
                        mobj,
                        page,
                        access: Access::Read,
                        data: Some(data),
                        dirty: pi.dirty,
                        ownership: false,
                        readers: vec![],
                        version: pi.version,
                        pull_snapshot: false,
                    },
                );
            }
            Access::Write => {
                // Transition 4/6: transfer ownership; invalidate readers
                // first if any exist.
                let pi = o.pages.get_mut(&page).unwrap();
                let acks: std::collections::BTreeSet<NodeId> = pi
                    .readers
                    .iter()
                    .copied()
                    .filter(|r| *r != req.origin)
                    .collect();
                if acks.is_empty() {
                    Self::finish_write_transfer(
                        o,
                        me,
                        cost,
                        now,
                        vm,
                        page,
                        req.origin,
                        req.has_copy,
                        fx,
                    );
                } else {
                    for r in &acks {
                        fx.send(
                            *r,
                            AsvmMsg::Invalidate {
                                mobj,
                                page,
                                from: me,
                            },
                        );
                    }
                    pi.busy = Some(Busy::WriteTransfer {
                        to: req.origin,
                        to_has_copy: req.has_copy,
                        pending_acks: acks,
                    });
                    vm.set_busy(o.vm_obj, page, true);
                }
            }
        }
    }

    /// Transition 7: the owner upgrades its own access.
    pub(crate) fn local_upgrade(
        o: &mut AsvmObject,
        me: NodeId,
        _cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        let pi = o.pages.get_mut(&page).unwrap();
        debug_assert!(pi.owner);
        let acks: std::collections::BTreeSet<NodeId> = pi.readers.iter().copied().collect();
        if acks.is_empty() {
            pi.access = Access::Write;
            pi.dirty = true;
            vm.kernel_call(
                now,
                o.vm_obj,
                EmmiToKernel::LockRequest {
                    page,
                    op: LockOp::Grant(Access::Write),
                    mode: LockMode::Normal,
                },
                &mut fx.vm,
            );
        } else {
            for r in &acks {
                fx.send(
                    *r,
                    AsvmMsg::Invalidate {
                        mobj,
                        page,
                        from: me,
                    },
                );
            }
            pi.busy = Some(Busy::LocalUpgrade { pending_acks: acks });
            vm.set_busy(o.vm_obj, page, true);
        }
    }

    /// Completes transition 4/6 once all invalidations are acknowledged.
    ///
    /// The page contents ride along unless the requester both claimed a
    /// read copy in its request (`to_has_copy`) *and* is still in our
    /// reader list — the claim alone is not enough, because the VM may
    /// have silently discarded the copy before the request left (§3.6
    /// step 1 does not notify the owner), and the reader list alone is
    /// not enough, because such a discard leaves it stale.
    #[allow(clippy::too_many_arguments)]
    fn finish_write_transfer(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        to: NodeId,
        to_has_copy: bool,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        let pi = o.pages.get_mut(&page).unwrap();
        let elide = to_has_copy && pi.readers.contains(&to);
        let (data, vm_dirty) = {
            let (d, dirty) = vm
                .peek_page(o.vm_obj, page)
                .expect("owner must hold the page during transfer");
            (d.clone(), dirty)
        };
        let pi = o.pages.get_mut(&page).unwrap();
        pi.dirty |= vm_dirty;
        fx.send(
            to,
            AsvmMsg::Grant {
                mobj,
                page,
                access: Access::Write,
                data: (!elide).then_some(data),
                dirty: pi.dirty,
                ownership: true,
                readers: vec![],
                version: pi.version,
                pull_snapshot: false,
            },
        );
        // Flush our own copy: the new writer is the single writer.
        vm.set_busy(o.vm_obj, page, false);
        vm.kernel_call(
            now,
            o.vm_obj,
            EmmiToKernel::LockRequest {
                page,
                op: LockOp::Flush {
                    return_dirty: false,
                },
                mode: LockMode::Normal,
            },
            &mut fx.vm,
        );
        let queued: Vec<QueuedReq> = o.pages.get_mut(&page).unwrap().queued.drain(..).collect();
        o.pages.remove(&page);
        Self::spec_settle(o, page, true, fx);
        o.dyn_cache.insert(page, to);
        // Tell the static manager about the transfer NOW (the new owner
        // repeats this on receipt): a concurrent global walk that finds no
        // owner must see the in-flight transfer at the static manager
        // instead of minting a second owner at the pager.
        let sm = o.static_node_live(page);
        if sm == me {
            o.static_seen.insert(page);
            o.static_cache.insert(page, StaticHint::Owner(to));
        } else {
            fx.send(
                sm,
                AsvmMsg::OwnerHint {
                    mobj: o.mobj,
                    page,
                    owner: to,
                },
            );
        }
        for q in queued {
            Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
        }
    }

    /// An invalidation ack arrived; advance whatever was waiting on it.
    #[allow(clippy::too_many_arguments)]
    fn invalidate_ack(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        acker: NodeId,
        fx: &mut Fx,
    ) {
        let Some(pi) = o.pages.get_mut(&page) else {
            return; // Stale ack after the page moved on.
        };
        pi.readers.remove(&acker);
        match &mut pi.busy {
            Some(Busy::WriteTransfer {
                to,
                to_has_copy,
                pending_acks,
            }) => {
                pending_acks.remove(&acker);
                if pending_acks.is_empty() {
                    let to = *to;
                    let to_has_copy = *to_has_copy;
                    pi.busy = None;
                    Self::finish_write_transfer(o, me, cost, now, vm, page, to, to_has_copy, fx);
                }
            }
            Some(Busy::LocalUpgrade { pending_acks }) => {
                pending_acks.remove(&acker);
                if pending_acks.is_empty() {
                    pi.busy = None;
                    vm.set_busy(o.vm_obj, page, false);
                    pi.access = Access::Write;
                    pi.dirty = true;
                    pi.readers.clear();
                    let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
                    vm.kernel_call(
                        now,
                        o.vm_obj,
                        EmmiToKernel::LockRequest {
                            page,
                            op: LockOp::Grant(Access::Write),
                            mode: LockMode::Normal,
                        },
                        &mut fx.vm,
                    );
                    for q in queued {
                        Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
                    }
                    Self::drain_parked(o, me, cost, now, vm, page, fx);
                }
            }
            _ => {}
        }
    }

    /// A grant (read copy, write+ownership, or upgrade) arrived.
    #[allow(clippy::too_many_arguments)]
    fn grant_arrived(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        from: NodeId,
        page: PageIdx,
        access: Access,
        data: Option<PageData>,
        dirty: bool,
        ownership: bool,
        readers: Vec<NodeId>,
        version: u64,
        fx: &mut Fx,
    ) {
        // An owner-making write grant for a page whose version lags the
        // object version must run a push before the write proceeds (the
        // snapshot in the grant has not reached existing copies yet). This
        // covers pulled snapshots; owner-to-owner transfers arrive already
        // pushed by the granting owner.
        let needs_push = ownership && access == Access::Write && version != o.version;
        let lock = if needs_push { Access::Read } else { access };
        let pend = o.pending.get(&page).copied();
        // A non-ownership grant with no pending request and the page
        // already resident is a duplicate: the original and a watchdog
        // re-issue both got answered, or a same-node write fault
        // superseded an in-flight read (the write's ownership grant
        // landed first and this is the late read grant). Applying it
        // again is harmless for the data (same owner, same contents) but
        // would clobber local bookkeeping; drop it.
        if pend.is_none() && !ownership && o.pages.contains_key(&page) {
            fx.bump("asvm.recover.stale_grant");
            return;
        }
        if !needs_push {
            if let Some(p) = pend {
                if access.allows(p.access) {
                    o.pending.remove(&page);
                    if p.speculative {
                        // The fill landed before any demand access touched
                        // it: remember it so the eventual demand hit (or
                        // eviction) settles the speculation honestly.
                        o.prefetched.insert(page);
                    }
                }
            }
        }
        let pi = o
            .pages
            .entry(page)
            .or_insert_with(|| PageInfo::new(lock, false, version));
        pi.access = pi.access.max(lock);
        pi.owner |= ownership;
        pi.version = version;
        pi.dirty |= dirty;
        pi.readers.extend(readers);
        pi.readers.remove(&me);
        if !ownership {
            // The sender is the owner; remember it.
            o.dyn_cache.insert(page, from);
        }
        // Any grant supersedes a stashed discarded copy: either it carries
        // fresh contents, or (elided) the stash *is* the contents.
        let stashed = o.stash.remove(&page);
        match data {
            Some(d) => vm.kernel_call(
                now,
                o.vm_obj,
                EmmiToKernel::DataSupply {
                    page,
                    data: d,
                    lock,
                    mode: SupplyMode::Normal,
                },
                &mut fx.vm,
            ),
            None if vm.peek_page(o.vm_obj, page).is_none() => {
                // The owner elided the contents against our claimed read
                // copy, but the VM silently discarded that copy while the
                // request was in flight; restore the stashed contents. The
                // stash is current: an elided grant means we stayed in the
                // owner's reader list, so no write intervened.
                let s = stashed.expect("elided grant for a page with no local copy");
                debug_assert_eq!(s.version, version, "stashed copy version mismatch");
                fx.bump("asvm.evict.stash_fill");
                vm.kernel_call(
                    now,
                    o.vm_obj,
                    EmmiToKernel::DataSupply {
                        page,
                        data: s.data,
                        lock,
                        mode: SupplyMode::Normal,
                    },
                    &mut fx.vm,
                );
            }
            None => vm.kernel_call(
                now,
                o.vm_obj,
                EmmiToKernel::LockRequest {
                    page,
                    op: LockOp::Grant(lock),
                    mode: LockMode::Normal,
                },
                &mut fx.vm,
            ),
        }
        if ownership {
            Self::notify_owner_hint(o, me, cost, now, vm, page, fx);
        }
        if needs_push {
            let req = QueuedReq {
                access: Access::Write,
                origin: me,
                origin_obj: o.vm_obj,
                has_copy: true,
                kind: ReqKind::Access,
                deliver: None,
            };
            crate::copymgmt::start_push(o, me, cost, now, vm, page, req, fx);
        }
        Self::drain_parked(o, me, cost, now, vm, page, fx);
    }

    /// Internode pageout step 2 reply.
    #[allow(clippy::too_many_arguments)]
    fn read_check_reply(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        reader: NodeId,
        has_copy: bool,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        let pi = o
            .pages
            .get_mut(&page)
            .expect("read-check reply without state");
        let Some(Busy::Evict { data, dirty, stage }) = &mut pi.busy else {
            panic!("read-check reply while not evicting");
        };
        let EvictStage::CheckingReaders { current, remaining } = stage else {
            panic!("read-check reply in wrong eviction stage");
        };
        assert_eq!(*current, reader);
        if has_copy {
            // Ownership moves to the reader; no page contents needed.
            let d = *dirty;
            pi.readers.remove(&reader);
            let readers: Vec<NodeId> = pi.readers.iter().copied().collect();
            let version = pi.version;
            fx.send(
                reader,
                AsvmMsg::OwnershipTransfer {
                    mobj,
                    page,
                    readers,
                    version,
                    dirty: d,
                },
            );
            let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
            o.pages.remove(&page);
            Self::spec_settle(o, page, true, fx);
            o.dyn_cache.insert(page, reader);
            for q in queued {
                Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
            }
        } else {
            pi.readers.remove(&reader);
            if let Some((next, rest)) = remaining.split_first() {
                let next = *next;
                *stage = EvictStage::CheckingReaders {
                    current: next,
                    remaining: rest.to_vec(),
                };
                fx.send(
                    next,
                    AsvmMsg::ReadCheck {
                        mobj,
                        page,
                        from: me,
                    },
                );
            } else {
                let (data, d) = (data.clone(), *dirty);
                pi.busy = None;
                Self::evict_step3(o, me, cost, now, vm, page, data, d, fx);
            }
        }
    }

    /// Internode pageout step 3: pick a candidate via the cycling counter.
    #[allow(clippy::too_many_arguments)]
    fn evict_step3(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        data: PageData,
        dirty: bool,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        let candidates: Vec<NodeId> = o.nodes.iter().copied().filter(|n| *n != me).collect();
        if candidates.is_empty() {
            Self::evict_step4(o, me, cost, now, vm, page, data, dirty, fx);
            return;
        }
        let candidate = candidates[o.pageout_counter % candidates.len()];
        o.pageout_counter += 1;
        let pi = o.pages.get_mut(&page).unwrap();
        pi.busy = Some(Busy::Evict {
            data,
            dirty,
            stage: EvictStage::Asking {
                candidate,
                tried_last_accept: false,
            },
        });
        fx.send(
            candidate,
            AsvmMsg::AcceptAsk {
                mobj,
                page,
                from: me,
            },
        );
    }

    /// Internode pageout step 3 reply.
    #[allow(clippy::too_many_arguments)]
    fn accept_reply(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        candidate: NodeId,
        accept: bool,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        let pi = o.pages.get_mut(&page).expect("accept reply without state");
        let Some(Busy::Evict { data, dirty, stage }) = &mut pi.busy else {
            panic!("accept reply while not evicting");
        };
        let EvictStage::Asking {
            candidate: asked,
            tried_last_accept,
        } = stage
        else {
            panic!("accept reply in wrong eviction stage");
        };
        assert_eq!(*asked, candidate);
        if accept {
            let (data, d, version) = (data.clone(), *dirty, pi.version);
            fx.send(
                candidate,
                AsvmMsg::PageTransfer {
                    mobj,
                    page,
                    data,
                    dirty: d,
                    version,
                },
            );
            o.last_accept = Some(candidate);
            let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
            o.pages.remove(&page);
            Self::spec_settle(o, page, true, fx);
            o.dyn_cache.insert(page, candidate);
            for q in queued {
                Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
            }
        } else {
            // Fall back to the node that most recently accepted a transfer.
            let fallback = o
                .last_accept
                .filter(|n| *n != candidate && *n != me && !*tried_last_accept);
            match fallback {
                Some(n) => {
                    *stage = EvictStage::Asking {
                        candidate: n,
                        tried_last_accept: true,
                    };
                    fx.send(
                        n,
                        AsvmMsg::AcceptAsk {
                            mobj,
                            page,
                            from: me,
                        },
                    );
                }
                None => {
                    let (data, d) = (data.clone(), *dirty);
                    pi.busy = None;
                    Self::evict_step4(o, me, cost, now, vm, page, data, d, fx);
                }
            }
        }
    }

    /// Internode pageout step 4: return the page to the real pager.
    #[allow(clippy::too_many_arguments)]
    fn evict_step4(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        data: PageData,
        dirty: bool,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        if dirty {
            fx.pager.push(PagerSend {
                pager_node: o.pager_node,
                reply_to: me,
                mobj: o.mobj,
                obj: o.vm_obj,
                call: EmmiToPager::DataReturn {
                    page,
                    data,
                    dirty: true,
                },
            });
        }
        let sm = o.static_node_live(page);
        if sm == me {
            o.static_seen.insert(page);
            o.static_cache.insert(page, StaticHint::Paged);
        } else {
            fx.send(sm, AsvmMsg::PagedHint { mobj, page });
        }
        let queued: Vec<QueuedReq> = o
            .pages
            .get_mut(&page)
            .map(|pi| pi.queued.drain(..).collect())
            .unwrap_or_default();
        o.pages.remove(&page);
        Self::spec_settle(o, page, true, fx);
        for q in queued {
            Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
        }
    }

    // --- Hint maintenance -------------------------------------------------------------

    /// Reports fresh ownership of `page` to its static manager (or applies
    /// it locally when we are the static manager).
    pub(crate) fn notify_owner_hint(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        fx: &mut Fx,
    ) {
        let mobj = o.mobj;
        let sm = o.static_node_live(page);
        if sm == me {
            Self::owner_hint(o, me, cost, now, vm, page, me, fx);
        } else {
            fx.send(
                sm,
                AsvmMsg::OwnerHint {
                    mobj,
                    page,
                    owner: me,
                },
            );
        }
    }

    /// Applies an ownership hint at the static manager and releases any
    /// requests serialized behind a pager fill.
    #[allow(clippy::too_many_arguments)]
    fn owner_hint(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        owner: NodeId,
        fx: &mut Fx,
    ) {
        o.static_seen.insert(page);
        o.static_cache.insert(page, StaticHint::Owner(owner));
        o.static_filling.remove(&page);
        let waiting = o.static_waiting.remove(&page).unwrap_or_default();
        for q in waiting {
            let path = ReqPath {
                tried_static: true,
                hops: 1,
                ..ReqPath::default()
            };
            if owner == me {
                Self::route(o, me, cost, now, vm, page, q, path, fx);
            } else {
                Self::send_req(o, fx, owner, page, &q, path);
            }
        }
    }

    /// Re-dispatches requests parked while this node awaited a fill.
    pub(crate) fn drain_parked(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        fx: &mut Fx,
    ) {
        let parked = o.fill_waiters.remove(&page).unwrap_or_default();
        for q in parked {
            Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
        }
    }

    // --- Failure recovery (docs/RELIABILITY.md) ---------------------------------------
    //
    // Everything in this section is reachable only when the failure
    // detector has produced suspects or the watchdog found a stalled
    // request — i.e. only under an active fault plan. Fault-free runs
    // never enter it, which is what keeps baseline traces byte-identical.

    /// Begins ownership reconstruction for `page` at this node (the static
    /// manager, or the live successor that inherited the role): query every
    /// live member for its surviving copy, then elect a new owner.
    #[allow(clippy::too_many_arguments)]
    fn start_recovery(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        req: QueuedReq,
        fx: &mut Fx,
    ) {
        if let Some(rs) = o.recover.get_mut(&page) {
            // Reconstruction already in flight: serialize behind it.
            rs.waiting.push(req);
            fx.bump("asvm.recover.dup_req");
            return;
        }
        fx.bump("asvm.recover.query");
        let mobj = o.mobj;
        let expect: std::collections::BTreeSet<NodeId> = o
            .nodes
            .iter()
            .copied()
            .filter(|n| *n != me && !o.suspects.contains(n))
            .collect();
        // Seed with our own view so the election sees the manager's copy
        // without a message round.
        let mut holders = std::collections::BTreeSet::new();
        let mut best = None;
        let mut owner = None;
        if let Some(pi) = o.pages.get(&page) {
            if pi.busy.is_none() || matches!(pi.busy, Some(Busy::AwaitingOwnership)) {
                holders.insert(me);
                best = Some((pi.version, me));
                if pi.owner {
                    owner = Some(me);
                }
            }
        }
        for n in &expect {
            fx.send(
                *n,
                AsvmMsg::RecoverQuery {
                    mobj,
                    page,
                    from: me,
                },
            );
        }
        let done = expect.is_empty();
        o.recover.insert(
            page,
            RecoverState {
                expect,
                best,
                holders,
                owner,
                waiting: vec![req],
            },
        );
        if done {
            Self::finish_recovery(o, me, cost, now, vm, page, fx);
        }
    }

    /// A member's answer to a [`AsvmMsg::RecoverQuery`] arrived.
    #[allow(clippy::too_many_arguments)]
    fn recover_reply(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        peer: NodeId,
        has_copy: bool,
        version: u64,
        owner: bool,
        fx: &mut Fx,
    ) {
        let Some(rs) = o.recover.get_mut(&page) else {
            return; // Duplicate reply after reconstruction resolved.
        };
        if !rs.expect.remove(&peer) {
            return;
        }
        if owner {
            rs.owner = Some(peer);
        }
        if has_copy {
            rs.holders.insert(peer);
            let better = match rs.best {
                None => true,
                // Deterministic election: max version, ties to lowest id.
                Some((v, b)) => version > v || (version == v && peer.0 < b.0),
            };
            if better {
                rs.best = Some((version, peer));
            }
        }
        if rs.expect.is_empty() {
            Self::finish_recovery(o, me, cost, now, vm, page, fx);
        }
    }

    /// All live members have answered: install the surviving owner, elect
    /// one from the copyset, or fall back to a pager re-fetch.
    fn finish_recovery(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        fx: &mut Fx,
    ) {
        let rs = o
            .recover
            .remove(&page)
            .expect("finish_recovery without state");
        let mobj = o.mobj;
        let new_owner = if let Some(owner) = rs.owner {
            // An owner survived after all (the suspicion was about a stale
            // hint, not the owner itself); just repair the hint.
            fx.bump("asvm.recover.owner_found");
            owner
        } else if let Some((_, winner)) = rs.best {
            fx.bump("asvm.recover.elected");
            let readers: Vec<NodeId> = rs
                .holders
                .iter()
                .copied()
                .filter(|h| *h != winner)
                .collect();
            if winner == me {
                Self::recover_elect(o, me, cost, now, vm, page, readers, fx);
            } else {
                fx.send(
                    winner,
                    AsvmMsg::RecoverElect {
                        mobj,
                        page,
                        readers,
                    },
                );
            }
            winner
        } else {
            // No copy survives anywhere: the pager's version is the best
            // remaining one. Serialize the waiters behind a fresh fill
            // (we are the acting manager, so recording the fill here is
            // exactly the normal first-touch discipline).
            fx.bump("asvm.recover.refetch");
            let mut waiting = rs.waiting.into_iter();
            if let Some(first) = waiting.next() {
                for q in waiting {
                    o.static_waiting.entry(page).or_default().push(q);
                }
                Self::pager_dispatch(o, me, cost, now, vm, page, first, fx);
            }
            return;
        };
        o.static_seen.insert(page);
        o.static_cache.insert(page, StaticHint::Owner(new_owner));
        o.static_filling.remove(&page);
        for q in rs.waiting {
            let path = ReqPath {
                tried_static: true,
                hops: 1,
                ..ReqPath::default()
            };
            if new_owner == me {
                Self::route(o, me, cost, now, vm, page, q, path, fx);
            } else {
                Self::send_req(o, fx, new_owner, page, &q, path);
            }
        }
    }

    /// This node won the election: promote the local copy to owner, adopt
    /// the surviving copyset as readers, and drain everything parked.
    #[allow(clippy::too_many_arguments)]
    fn recover_elect(
        o: &mut AsvmObject,
        me: NodeId,
        cost: &CostModel,
        now: Time,
        vm: &mut VmSystem,
        page: PageIdx,
        readers: Vec<NodeId>,
        fx: &mut Fx,
    ) {
        let suspects = o.suspects.clone();
        let Some(pi) = o.pages.get_mut(&page) else {
            // Our copy was evicted between the reply and the election; the
            // stale Owner(me) hint self-heals through the manager's
            // stale-self-hint path and the next watchdog pass.
            fx.bump("asvm.recover.elect_lost");
            return;
        };
        if matches!(pi.busy, Some(Busy::AwaitingOwnership)) {
            // The transfer we were waiting for came from the dead owner;
            // the election supersedes it.
            pi.busy = None;
            vm.set_busy(o.vm_obj, page, false);
        }
        if pi.busy.is_some() {
            // Mid-transition (only reachable if we were already owner):
            // the running operation completes on its own.
            return;
        }
        pi.owner = true;
        pi.readers.extend(
            readers
                .iter()
                .copied()
                .filter(|r| *r != me && !suspects.contains(r)),
        );
        let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
        Self::notify_owner_hint(o, me, cost, now, vm, page, fx);
        if let Some(p) = o.pending.get(&page).copied() {
            // Our own stalled request resolves locally now that we own the
            // page (serve handles read grants, upgrades and pushes).
            let req = QueuedReq {
                access: p.access,
                origin: me,
                origin_obj: o.vm_obj,
                has_copy: true,
                kind: ReqKind::Access,
                deliver: None,
            };
            Self::serve(o, me, cost, now, vm, page, req, fx);
        }
        for q in queued {
            Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
        }
        Self::drain_parked(o, me, cost, now, vm, page, fx);
    }

    /// Re-issues pending requests stalled past the configured deadline
    /// (down the fallback chain: invalidate the dynamic hint, retry via
    /// the live static manager, finally re-fetch from the pager). Driven
    /// by the cluster layer's heartbeat tick, only under active fault
    /// plans.
    pub fn watchdog(&mut self, now: Time, vm: &mut VmSystem, fx: &mut Fx) {
        fx.cpu += self.cost.asvm_handle;
        let me = self.me;
        let cost = &self.cost;
        for o in self.objects.values_mut() {
            if o.peer.is_some() || o.source.is_some() {
                // Distributed copy objects pull through their peer's shadow
                // chain; recovery of those is out of scope (documented).
                continue;
            }
            let deadline = o.cfg.forward.watchdog_deadline;
            let budget = o.cfg.forward.retry_budget;
            let stalled: Vec<(PageIdx, PendingLocal)> = o
                .pending
                .iter()
                .filter(|(page, pl)| {
                    // Not `now.since(issued)`: `issued` carries the node's
                    // local clock, which can run ahead of this tick's
                    // delivery time through same-instant CPU charges.
                    if now < pl.issued + deadline {
                        return false;
                    }
                    match o.pages.get(page) {
                        // Busy pages resolve through their own transition —
                        // except AwaitingOwnership from a possibly-dead
                        // transferor, which only recovery can break.
                        Some(pi) if pi.owner => false,
                        Some(pi) => {
                            pi.busy.is_none()
                                || (matches!(pi.busy, Some(Busy::AwaitingOwnership))
                                    && !o.suspects.is_empty())
                        }
                        None => true,
                    }
                })
                .map(|(p, pl)| (*p, *pl))
                .collect();
            for (page, pl) in stalled {
                // The hint that routed the stalled request is the prime
                // suspect; drop it so the re-issue takes the next rung.
                o.dyn_cache.remove(&page);
                if let Some(pi) = o.pages.get_mut(&page) {
                    if matches!(pi.busy, Some(Busy::AwaitingOwnership)) {
                        pi.busy = None;
                        vm.set_busy(o.vm_obj, page, false);
                    }
                }
                let live_peers = o.nodes.iter().any(|n| *n != me && !o.suspects.contains(n));
                if pl.retries >= budget || !live_peers {
                    // Terminal rung: give up on peers, flush whatever copy
                    // we hold and re-fetch from the pager (always
                    // reachable; NORMA traffic is reliable).
                    fx.bump("asvm.recover.refetch");
                    let queued: Vec<QueuedReq> = if let Some(pi) = o.pages.get_mut(&page) {
                        let queued = pi.queued.drain(..).collect();
                        vm.set_busy(o.vm_obj, page, false);
                        vm.kernel_call(
                            now,
                            o.vm_obj,
                            EmmiToKernel::LockRequest {
                                page,
                                op: LockOp::Flush {
                                    return_dirty: false,
                                },
                                mode: LockMode::Normal,
                            },
                            &mut fx.vm,
                        );
                        o.pages.remove(&page);
                        Self::spec_settle(o, page, true, fx);
                        queued
                    } else {
                        Vec::new()
                    };
                    o.pending.insert(
                        page,
                        PendingLocal {
                            access: pl.access,
                            has_copy: false,
                            issued: now,
                            retries: pl.retries.saturating_add(1),
                            speculative: pl.speculative,
                        },
                    );
                    // Straight to the pager — deliberately NOT through
                    // pager_dispatch, which would record a static fill at a
                    // node that is not the page's manager.
                    fx.pager.push(PagerSend {
                        pager_node: o.pager_for(page),
                        reply_to: me,
                        mobj: o.mobj,
                        obj: o.vm_obj,
                        call: EmmiToPager::DataRequest {
                            page,
                            access: pl.access,
                        },
                    });
                    for q in queued {
                        Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
                    }
                } else {
                    fx.bump("asvm.recover.reissue");
                    let has_copy = o.pages.contains_key(&page);
                    o.pending.insert(
                        page,
                        PendingLocal {
                            access: pl.access,
                            has_copy,
                            issued: now,
                            retries: pl.retries + 1,
                            speculative: pl.speculative,
                        },
                    );
                    let req = QueuedReq {
                        access: pl.access,
                        origin: me,
                        origin_obj: o.vm_obj,
                        has_copy,
                        kind: ReqKind::Access,
                        deliver: None,
                    };
                    let path = ReqPath {
                        recovering: true,
                        ..ReqPath::default()
                    };
                    Self::route(o, me, cost, now, vm, page, req, path, fx);
                }
            }
        }
        self.drain_escalations(now, vm, fx);
    }

    /// The failure detector now suspects `peer`: scrub hints naming it,
    /// unwind every in-flight operation waiting on it, and reclaim pager
    /// fills issued on its behalf.
    pub fn peer_suspected(&mut self, now: Time, vm: &mut VmSystem, peer: NodeId, fx: &mut Fx) {
        fx.cpu += self.cost.asvm_handle;
        let me = self.me;
        let cost = &self.cost;
        for o in self.objects.values_mut() {
            if !o.nodes.contains(&peer) || !o.suspects.insert(peer) {
                continue;
            }
            // Static roles just rehashed onto successors that have never
            // seen these pages: "never seen" no longer implies "fresh".
            o.fresh_valid = false;
            if o.last_accept == Some(peer) {
                o.last_accept = None;
            }
            // Scrub dynamic hints naming the dead node (the static
            // Owner(peer) hints stay: they are the tripwire that routes
            // requests into reconstruction).
            let stale: Vec<PageIdx> = o
                .dyn_cache
                .iter()
                .filter(|(_, h)| **h == peer)
                .map(|(p, _)| *p)
                .collect();
            for p in stale {
                o.dyn_cache.remove(&p);
                fx.bump("asvm.recover.hint_scrub");
            }
            // Unwind busy operations blocked on the dead node, reusing the
            // normal completion paths with a synthesized negative reply.
            let mut abort_transfers = Vec::new();
            let mut dead_acks = Vec::new();
            let mut push_dones = Vec::new();
            let mut read_checks = Vec::new();
            let mut accept_asks = Vec::new();
            for (page, pi) in o.pages.iter() {
                match &pi.busy {
                    Some(Busy::WriteTransfer { to, .. }) if *to == peer => {
                        abort_transfers.push(*page);
                    }
                    Some(Busy::WriteTransfer { pending_acks, .. })
                        if pending_acks.contains(&peer) =>
                    {
                        dead_acks.push(*page);
                    }
                    Some(Busy::LocalUpgrade { pending_acks }) if pending_acks.contains(&peer) => {
                        dead_acks.push(*page);
                    }
                    Some(Busy::Push { pending, .. }) if pending.contains(&peer) => {
                        push_dones.push(*page);
                    }
                    Some(Busy::Evict {
                        stage: EvictStage::CheckingReaders { current, .. },
                        ..
                    }) if *current == peer => {
                        read_checks.push(*page);
                    }
                    Some(Busy::Evict {
                        stage: EvictStage::Asking { candidate, .. },
                        ..
                    }) if *candidate == peer => {
                        accept_asks.push(*page);
                    }
                    _ => {}
                }
            }
            for page in abort_transfers {
                // The grantee died before the transfer completed: keep
                // ownership here and re-dispatch whatever queued behind it.
                fx.bump("asvm.recover.abort_transfer");
                let pi = o.pages.get_mut(&page).unwrap();
                pi.busy = None;
                vm.set_busy(o.vm_obj, page, false);
                let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
                for q in queued {
                    Self::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
                }
            }
            for page in dead_acks {
                // The dead reader will never acknowledge its invalidation;
                // its copy is unreachable, which is as good as invalidated.
                Self::invalidate_ack(o, me, cost, now, vm, page, peer, fx);
            }
            for page in push_dones {
                crate::copymgmt::on_push_done(o, me, cost, now, vm, page, peer, fx);
            }
            for page in read_checks {
                Self::read_check_reply(o, me, cost, now, vm, page, peer, false, fx);
            }
            for page in accept_asks {
                Self::accept_reply(o, me, cost, now, vm, page, peer, false, fx);
            }
            // Drop dead readers from owned pages so future invalidation
            // rounds never wait on them.
            for (_, pi) in o.pages.iter_mut() {
                pi.readers.remove(&peer);
            }
            // Pager fills issued on behalf of the dead node complete on
            // the dead node; release the requests serialized behind them.
            let stale_fills: Vec<PageIdx> = o
                .static_filling
                .iter()
                .filter(|(_, origin)| **origin == peer)
                .map(|(p, _)| *p)
                .collect();
            for page in stale_fills {
                o.static_filling.remove(&page);
                fx.bump("asvm.recover.fill_reclaim");
                let waiting = o.static_waiting.remove(&page).unwrap_or_default();
                for q in waiting {
                    let path = ReqPath {
                        recovering: true,
                        ..ReqPath::default()
                    };
                    Self::route(o, me, cost, now, vm, page, q, path, fx);
                }
            }
            // Reconstructions waiting on a reply from the newly dead node
            // complete without it.
            let stuck: Vec<PageIdx> = o
                .recover
                .iter()
                .filter(|(_, rs)| rs.expect.contains(&peer))
                .map(|(p, _)| *p)
                .collect();
            for page in stuck {
                let rs = o.recover.get_mut(&page).unwrap();
                rs.expect.remove(&peer);
                if rs.expect.is_empty() {
                    Self::finish_recovery(o, me, cost, now, vm, page, fx);
                }
            }
        }
        self.drain_escalations(now, vm, fx);
    }

    /// The failure detector heard from `peer` again: drop the suspicion.
    /// Reconstruction already performed stays valid (it elected a live
    /// owner); only the routing bias reverts.
    pub fn peer_cleared(&mut self, peer: NodeId) {
        for o in self.objects.values_mut() {
            o.suspects.remove(&peer);
        }
    }

    /// Requests an exclusive range lock (§6 future work). The grant
    /// arrives via [`Fx::lock_granted`] — possibly within this call when
    /// this node is the home node and the range is free.
    pub fn lock_range(&mut self, mobj: MemObjId, range: crate::locks::PageRange, fx: &mut Fx) {
        let me = self.me;
        let o = self
            .objects
            .get_mut(&mobj)
            .expect("lock on unregistered object");
        if o.home == me {
            if o.range_locks.acquire(range, me) {
                fx.lock_granted.push((mobj, range));
            }
        } else {
            fx.send(
                o.home,
                AsvmMsg::RangeLockReq {
                    mobj,
                    first: range.first,
                    count: range.count,
                    from: me,
                },
            );
        }
    }

    /// Releases a range lock previously granted to this node.
    pub fn unlock_range(&mut self, mobj: MemObjId, range: crate::locks::PageRange, fx: &mut Fx) {
        let me = self.me;
        let o = self
            .objects
            .get_mut(&mobj)
            .expect("unlock on unregistered object");
        if o.home == me {
            for g in o.range_locks.release(range, me) {
                if g.holder == me {
                    fx.lock_granted.push((mobj, g.range));
                } else {
                    fx.send(
                        g.holder,
                        AsvmMsg::RangeLockGrant {
                            mobj,
                            first: g.range.first,
                            count: g.range.count,
                        },
                    );
                }
            }
        } else {
            fx.send(
                o.home,
                AsvmMsg::RangeLockRelease {
                    mobj,
                    first: range.first,
                    count: range.count,
                    from: me,
                },
            );
        }
    }

    /// A delayed copy of `mobj` was created on this node: bump versions
    /// and protections locally and broadcast to all sharing nodes via the
    /// home node.
    pub fn copy_made_local(&mut self, now: Time, vm: &mut VmSystem, mobj: MemObjId, fx: &mut Fx) {
        let me = self.me;
        let o = self
            .objects
            .get_mut(&mobj)
            .expect("copy of unregistered object");
        Self::apply_copy_made(o, now, vm, fx);
        if o.home == me {
            let targets: Vec<NodeId> = o.nodes.iter().copied().filter(|n| *n != me).collect();
            if targets.is_empty() {
                fx.settled.push(mobj);
            } else {
                for n in &targets {
                    fx.send(*n, AsvmMsg::CopyMade { mobj, from: me });
                }
                o.copy_settles.push((me, targets.into_iter().collect()));
            }
        } else {
            fx.send(o.home, AsvmMsg::CopyMade { mobj, from: me });
        }
    }

    /// Applies the local half of a copy notification: bump the object
    /// version and write-protect resident pages so the next write faults
    /// into the push machinery.
    fn apply_copy_made(o: &mut AsvmObject, now: Time, vm: &mut VmSystem, fx: &mut Fx) {
        o.version += 1;
        let pages: Vec<PageIdx> = o
            .pages
            .iter()
            .filter(|(_, pi)| pi.access == Access::Write)
            .map(|(p, _)| *p)
            .collect();
        for page in pages {
            vm.kernel_call(
                now,
                o.vm_obj,
                EmmiToKernel::LockRequest {
                    page,
                    op: LockOp::Downgrade {
                        return_dirty: false,
                    },
                    mode: LockMode::Normal,
                },
                &mut fx.vm,
            );
            if let Some(pi) = o.pages.get_mut(&page) {
                pi.access = Access::Read;
            }
        }
    }

    // --- Small helpers --------------------------------------------------------------

    fn send_req(
        o: &AsvmObject,
        fx: &mut Fx,
        dst: NodeId,
        page: PageIdx,
        req: &QueuedReq,
        path: ReqPath,
    ) {
        fx.send(
            dst,
            AsvmMsg::PageReq {
                mobj: o.mobj,
                page,
                access: req.access,
                origin: req.origin,
                origin_obj: req.origin_obj,
                has_copy: req.has_copy,
                path,
                kind: req.kind,
                deliver: req.deliver,
            },
        );
    }

    fn has_free_memory(vm: &VmSystem) -> bool {
        vm.resident_total() + 16 <= vm.capacity_pages()
    }
}
