//! Protocol message coalescing over STS.
//!
//! STS messages are a fixed 32-byte block of untyped data received into
//! preallocated buffers (paper §3.1), so the expensive part of a small
//! protocol message is the per-*frame* software overhead — interrupt,
//! buffer management, dispatch — not the bytes. A [`FrameBody`] packs
//! several [`AsvmMsg`] subframes headed for the same node into one wire
//! frame that pays that overhead once; each extra subframe only costs a
//! cheap demultiplex (`CostModel::sts_subframe_cpu`). Data and ack frames
//! additionally piggyback the sender's current ownership hints so dynamic
//! hint caches stay warm without dedicated `OwnerHint` traffic.
//!
//! The [`FrameCombiner`] accumulates one body per destination over a
//! single scheduling step; the cluster layer drains it at the end of the
//! step and hands each body to the transport
//! (`Transport::send_coalesced`) and, under an active fault plan, to the
//! ARQ layer as **one sequenced unit** — subframes of one frame share
//! loss, retransmission and duplicate-suppression fate (see
//! `docs/RELIABILITY.md`).

use std::collections::BTreeMap;

use crate::protocol::AsvmMsg;
use machvm::{MemObjId, PageIdx};
use svmsim::NodeId;

/// An ownership hint piggybacked on a coalesced frame: "as far as the
/// sender knows, `owner` holds `page` of `mobj`".
pub type OwnerHintEntry = (MemObjId, PageIdx, NodeId);

/// One coalesced wire frame: an ordered batch of protocol subframes for a
/// single destination, plus piggybacked owner hints.
///
/// Subframe order is preserved end to end — the receiver handles them in
/// exactly the order the sender's engine emitted them, so per-link
/// protocol ordering is unchanged from the one-frame-per-message path.
#[derive(Clone, Debug)]
pub struct FrameBody {
    /// The protocol messages sharing this frame, in emission order.
    pub msgs: Vec<AsvmMsg>,
    /// Piggybacked owner hints, deduplicated per (object, page).
    pub hints: Vec<OwnerHintEntry>,
}

impl FrameBody {
    /// A body holding a single subframe — what the ARQ layer uses when
    /// coalescing is off, making that path semantically identical to the
    /// classic one-message-per-frame channel.
    pub fn single(msg: AsvmMsg) -> FrameBody {
        FrameBody {
            msgs: vec![msg],
            hints: Vec::new(),
        }
    }

    /// Number of subframes in this body.
    pub fn subframes(&self) -> u32 {
        self.msgs.len() as u32
    }

    /// Total payload bytes following the shared fixed header: the sum of
    /// the subframes' payloads plus 8 bytes per piggybacked hint
    /// (object, page, owner — well within untyped-data framing).
    pub fn payload_bytes(&self, page_size: u32) -> u32 {
        self.msgs
            .iter()
            .map(|m| m.payload_bytes(page_size))
            .sum::<u32>()
            + 8 * self.hints.len() as u32
    }

    /// Whether any subframe carries page contents (a "data frame" — the
    /// kind acks want to ride on).
    pub fn carries_data(&self) -> bool {
        self.msgs.iter().any(|m| m.carries_data())
    }

    /// Ack-class subframes sharing this frame with a data-carrying
    /// subframe: the `asvm.coalesce.piggyback_ack` statistic.
    pub fn acks_riding_data(&self) -> u32 {
        if !self.carries_data() {
            return 0;
        }
        self.msgs.iter().filter(|m| m.is_ack_class()).count() as u32
    }

    /// Attaches `hint`, deduplicating per (object, page) — a later hint
    /// for the same page wins, since the engine's view may have moved
    /// between subframes.
    pub fn push_hint(&mut self, hint: OwnerHintEntry) {
        if let Some(slot) = self
            .hints
            .iter_mut()
            .find(|(m, p, _)| *m == hint.0 && *p == hint.1)
        {
            *slot = hint;
        } else {
            self.hints.push(hint);
        }
    }
}

/// Per-destination frame combiner: buffers protocol sends emitted while
/// handling one scheduling step and drains them as one [`FrameBody`] per
/// peer.
///
/// Sans-IO like the rest of the core crate: the combiner never sends —
/// the cluster layer drains it and owns transport, counters and ARQ.
pub struct FrameCombiner {
    pending: BTreeMap<NodeId, FrameBody>,
    max_subframes: usize,
}

impl Default for FrameCombiner {
    fn default() -> FrameCombiner {
        FrameCombiner::new(crate::CoalesceCfg::default().max_subframes)
    }
}

impl FrameCombiner {
    /// A combiner flushing frames at `max_subframes` subframes (the model
    /// of STS's preallocated receive-buffer capacity).
    pub fn new(max_subframes: usize) -> FrameCombiner {
        FrameCombiner {
            pending: BTreeMap::new(),
            max_subframes: max_subframes.max(1),
        }
    }

    /// Appends `msg` to the frame building toward `dst`. Returns a full
    /// body to send *now* if the frame hit capacity — the caller must
    /// transmit it before continuing (order is preserved: the overflow
    /// body precedes everything still pending).
    #[must_use]
    pub fn push(&mut self, dst: NodeId, msg: AsvmMsg) -> Option<FrameBody> {
        let body = self.pending.entry(dst).or_insert_with(|| FrameBody {
            msgs: Vec::new(),
            hints: Vec::new(),
        });
        body.msgs.push(msg);
        if body.msgs.len() >= self.max_subframes {
            return self.pending.remove(&dst);
        }
        None
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drains every pending frame, in destination order (deterministic).
    pub fn drain(&mut self) -> Vec<(NodeId, FrameBody)> {
        std::mem::take(&mut self.pending).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inval(page: u32) -> AsvmMsg {
        AsvmMsg::Invalidate {
            mobj: MemObjId(1),
            page: PageIdx(page),
            from: NodeId(0),
        }
    }

    fn inval_ack(page: u32) -> AsvmMsg {
        AsvmMsg::InvalidateAck {
            mobj: MemObjId(1),
            page: PageIdx(page),
            from: NodeId(0),
        }
    }

    #[test]
    fn combiner_merges_per_destination_in_order() {
        let mut c = FrameCombiner::new(16);
        assert!(c.push(NodeId(1), inval(0)).is_none());
        assert!(c.push(NodeId(2), inval(1)).is_none());
        assert!(c.push(NodeId(1), inval(2)).is_none());
        let out = c.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, NodeId(1));
        assert_eq!(out[0].1.subframes(), 2);
        assert_eq!(out[0].1.msgs[0].page(), Some(PageIdx(0)));
        assert_eq!(out[0].1.msgs[1].page(), Some(PageIdx(2)));
        assert_eq!(out[1].0, NodeId(2));
        assert!(c.is_empty());
    }

    #[test]
    fn full_frames_overflow_immediately() {
        let mut c = FrameCombiner::new(2);
        assert!(c.push(NodeId(1), inval(0)).is_none());
        let full = c.push(NodeId(1), inval(1)).expect("capacity flush");
        assert_eq!(full.subframes(), 2);
        // The overflow cleared the slot; the next push starts fresh.
        assert!(c.push(NodeId(1), inval(2)).is_none());
        assert_eq!(c.drain().len(), 1);
    }

    #[test]
    fn hints_dedupe_per_page_latest_wins() {
        let mut b = FrameBody::single(inval(0));
        b.push_hint((MemObjId(1), PageIdx(4), NodeId(2)));
        b.push_hint((MemObjId(1), PageIdx(5), NodeId(2)));
        b.push_hint((MemObjId(1), PageIdx(4), NodeId(3)));
        assert_eq!(b.hints.len(), 2);
        assert_eq!(b.hints[0], (MemObjId(1), PageIdx(4), NodeId(3)));
        // 8 bytes of payload per hint ride the frame.
        assert_eq!(b.payload_bytes(8192), 16);
    }

    #[test]
    fn acks_ride_only_data_frames() {
        let mut b = FrameBody::single(inval_ack(0));
        assert_eq!(b.acks_riding_data(), 0, "no data subframe to ride");
        b.msgs.push(AsvmMsg::PageTransfer {
            mobj: MemObjId(1),
            page: PageIdx(1),
            data: machvm::PageData::Word(7),
            dirty: false,
            version: 1,
        });
        assert!(b.carries_data());
        assert_eq!(b.acks_riding_data(), 1);
    }
}
