//! Access-pattern-driven prefetch (§6 future work, "read clustering").
//!
//! The paper's demand path pays the full request/forward/grant round trip
//! on every first touch. This module hides that latency for predictable
//! access streams: a per-object, per-node [`StreamDetector`] watches the
//! local fault stream, and once a sequential or strided run is confirmed
//! the node speculatively requests the pages the stream is about to need
//! through the *normal* protocol — speculative requests are ordinary
//! `PageReq`s (and therefore ride the RDMA one-sided read path where the
//! backend supports it), so every safety property of the demand path
//! carries over unchanged.
//!
//! Two tiers, independently switchable per object:
//!
//! * **hint prefetch** ([`PrefetchCfg::hints`]) — nodes *serving* a
//!   detected stream piggyback owner hints for the predicted next pages on
//!   data/ack frames already flowing back to the requester (the PR-5
//!   `OwnerHintEntry` carrier), so the requester's dynamic hint cache is
//!   warm before it faults: zero extra frames, only extra subframe bytes;
//! * **data prefetch** ([`PrefetchCfg::data`]) — the faulting node itself
//!   pulls read copies ahead of the stream, bounded by
//!   [`PrefetchCfg::max_inflight`], cancelled (no further issues) the
//!   moment the stride breaks.
//!
//! Accounting is honest: `asvm.prefetch.issued` / `hit` / `late` /
//! `wasted` / `cancelled` counters, and the online policy
//! ([`crate::policy`]) can latch data prefetch off per object when the
//! wasted ratio climbs (migratory sharing is the counter-case: prefetched
//! neighbours are invalidated before they are read).
//!
//! The detector is sans-IO and fully deterministic: state advances only on
//! observed page numbers, never on time or randomness.

use machvm::PageIdx;

/// Per-object prefetch configuration (default: everything off, which is
/// byte-identical to builds without the prefetch layer).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchCfg {
    /// Master switch for the detector and both tiers.
    pub enabled: bool,
    /// Hint tier: piggyback predicted-page owner hints on frames already
    /// flowing to the node driving a detected stream. Needs a coalescing
    /// transport (the hint carrier); inert elsewhere.
    pub hints: bool,
    /// Data tier: speculatively pull read copies of predicted pages.
    pub data: bool,
    /// Consecutive same-stride fault intervals required before the
    /// detector trusts the stream. `0` is the legacy "read clustering"
    /// mode: every read fault unconditionally prefetches the next
    /// [`PrefetchCfg::depth`] pages at stride +1, with no confidence
    /// gate and no budget — exactly the original `readahead` knob.
    pub min_run: u32,
    /// Pages predicted (and, with [`PrefetchCfg::data`], requested) ahead
    /// of the newest fault. `0` disables prediction.
    pub depth: u32,
    /// Budget of in-flight speculative pulls per object (`0` = unbounded,
    /// the legacy mode's behaviour).
    pub max_inflight: u32,
}

impl PrefetchCfg {
    /// Everything off (the paper's measured system).
    pub fn off() -> PrefetchCfg {
        PrefetchCfg::default()
    }

    /// The legacy §6 "read clustering" preset: on every read fault,
    /// unconditionally request the next `pages` pages. No detector gate,
    /// no hint tier, no in-flight budget — behaviourally identical to the
    /// old `AsvmConfig::readahead` knob.
    pub fn readahead(pages: u32) -> PrefetchCfg {
        PrefetchCfg {
            enabled: pages > 0,
            hints: false,
            data: pages > 0,
            min_run: 0,
            depth: pages,
            max_inflight: 0,
        }
    }

    /// Detector-gated streaming preset: both tiers on, stride trusted
    /// after two confirming intervals, in-flight budget equal to the
    /// window depth.
    pub fn streaming(depth: u32) -> PrefetchCfg {
        PrefetchCfg {
            enabled: depth > 0,
            hints: true,
            data: depth > 0,
            min_run: 2,
            depth,
            max_inflight: depth,
        }
    }

    /// [`PrefetchCfg::streaming`] with the data tier off: owner hints for
    /// predicted pages are piggybacked, but no speculative transfers are
    /// issued.
    pub fn hints_only(depth: u32) -> PrefetchCfg {
        PrefetchCfg {
            data: false,
            max_inflight: 0,
            ..PrefetchCfg::streaming(depth)
        }
    }
}

/// Sequential/strided stream detector over one node's fault stream for
/// one object (also instantiated per *peer* on serving nodes, to predict
/// the requester's stream for the hint tier).
///
/// State machine: the detector keeps the last observed page, the interval
/// (`stride`) between the last two observations, and how many consecutive
/// observations confirmed that interval (`run`). A differing interval
/// resets the run — that reset is the *pattern break* the caller uses to
/// cancel outstanding speculation.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamDetector {
    /// Most recently observed page.
    last: Option<PageIdx>,
    /// Interval between the two most recent *distinct* observations
    /// (pages; may be negative for a descending scan; 0 only before the
    /// first interval).
    stride: i64,
    /// Consecutive observations that confirmed `stride`.
    run: u32,
}

impl StreamDetector {
    /// Feeds one observed page. Returns `true` when a *locked* run (two
    /// or more confirming intervals — the least confidence any
    /// detector-gated preset speculates on) was broken by this
    /// observation — the caller's cue to cancel speculation on the old
    /// stride. A candidate run of one interval breaks silently: nothing
    /// was speculated on it, and re-reporting while the detector
    /// scrambles for a new stride would double-count the same in-flight
    /// window.
    ///
    /// A repeated page is transparent (no state change, no break): the
    /// same access is legitimately seen twice — once as the demand fault
    /// and once as the retried access hitting the fill — and a re-read
    /// of the current position neither confirms nor disconfirms the
    /// stride.
    pub fn observe(&mut self, page: PageIdx) -> bool {
        let mut broke = false;
        if let Some(last) = self.last {
            let s = page.0 as i64 - last.0 as i64;
            if s == 0 {
                return false;
            }
            if s == self.stride {
                self.run = self.run.saturating_add(1);
            } else {
                broke = self.run >= 2;
                self.stride = s;
                self.run = 1;
            }
        }
        self.last = Some(page);
        broke
    }

    /// The detector's current `(stride, depth)` prediction window under
    /// `cfg`, anchored at the most recent observation: pages
    /// `last + stride * k` for `k` in `1..=depth` are expected next.
    /// `None` when prefetch is off or confidence is insufficient. With
    /// `min_run == 0` (the legacy preset) the window is unconditionally
    /// `(+1, depth)`, matching the original readahead loop.
    pub fn prediction(&self, cfg: &PrefetchCfg) -> Option<(i64, u32)> {
        if !cfg.enabled || cfg.depth == 0 {
            return None;
        }
        if cfg.min_run == 0 {
            return Some((1, cfg.depth));
        }
        if self.run >= cfg.min_run && self.stride != 0 {
            Some((self.stride, cfg.depth))
        } else {
            None
        }
    }

    /// The most recently observed page, if any (the prediction anchor).
    pub fn anchor(&self) -> Option<PageIdx> {
        self.last
    }

    /// Confirmed run length at the current stride.
    pub fn run(&self) -> u32 {
        self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fully_off() {
        let c = PrefetchCfg::default();
        assert!(!c.enabled && !c.hints && !c.data);
        assert_eq!(c.depth, 0);
        let d = StreamDetector::default();
        assert_eq!(d.prediction(&PrefetchCfg::streaming(8)), None);
    }

    #[test]
    fn sequential_run_earns_a_prediction() {
        let cfg = PrefetchCfg::streaming(4);
        let mut d = StreamDetector::default();
        assert!(!d.observe(PageIdx(10)));
        assert!(!d.observe(PageIdx(11))); // run 1: not yet trusted
        assert_eq!(d.prediction(&cfg), None);
        assert!(!d.observe(PageIdx(12))); // run 2: trusted
        assert_eq!(d.prediction(&cfg), Some((1, 4)));
        assert_eq!(d.anchor(), Some(PageIdx(12)));
    }

    #[test]
    fn strided_and_descending_runs_are_detected() {
        let cfg = PrefetchCfg::streaming(2);
        let mut d = StreamDetector::default();
        for p in [0u32, 3, 6, 9] {
            d.observe(PageIdx(p));
        }
        assert_eq!(d.prediction(&cfg), Some((3, 2)));
        let mut down = StreamDetector::default();
        for p in [20u32, 18, 16] {
            down.observe(PageIdx(p));
        }
        assert_eq!(down.prediction(&cfg), Some((-2, 2)));
    }

    #[test]
    fn stride_change_breaks_the_run() {
        let cfg = PrefetchCfg::streaming(4);
        let mut d = StreamDetector::default();
        for p in [0u32, 1, 2, 3] {
            d.observe(PageIdx(p));
        }
        assert_eq!(d.prediction(&cfg), Some((1, 4)));
        // The stream jumps: the established run reports a break and the
        // prediction is withdrawn until a new run is confirmed.
        assert!(d.observe(PageIdx(40)));
        assert_eq!(d.prediction(&cfg), None);
        assert!(!d.observe(PageIdx(43)), "first interval of a new run");
        assert!(!d.observe(PageIdx(46)));
        assert_eq!(d.prediction(&cfg), Some((3, 4)));
    }

    #[test]
    fn repeated_page_is_not_a_run() {
        let cfg = PrefetchCfg::streaming(2);
        let mut d = StreamDetector::default();
        for _ in 0..5 {
            d.observe(PageIdx(7));
        }
        assert_eq!(d.prediction(&cfg), None, "stride 0 must never predict");
    }

    #[test]
    fn legacy_preset_predicts_unconditionally() {
        let cfg = PrefetchCfg::readahead(8);
        let d = StreamDetector::default();
        // No history at all: the legacy preset still emits the fixed
        // +1 window, exactly like the original readahead loop.
        assert_eq!(d.prediction(&cfg), Some((1, 8)));
        assert!(!PrefetchCfg::readahead(0).enabled);
    }
}
