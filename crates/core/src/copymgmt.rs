//! Distributed delayed-copy management (paper §3.7).
//!
//! ASVM extends the VM system's asymmetric copy strategy across node
//! boundaries. The building blocks:
//!
//! * **Version counters** — an object's version increments each time a copy
//!   is made from it; a page's version is set to the object version when a
//!   push completes. A write to a page whose version lags the object
//!   version triggers a push operation first.
//! * **Push operations** — the owner broadcasts [`crate::protocol::AsvmMsg::PushReq`]
//!   to every sharing node; each uses `memory_object_lock_request` with the
//!   push mode to push the page down its local copy chain and invalidate it
//!   in the source object. Nodes whose VM cache lacks the page report
//!   `PageAbsent`; the owner sends them the contents and they complete via
//!   `data_supply(mode=push)`.
//! * **Push scans** — before pushing into a *shared* copy object, a push
//!   scan request travels through the forwarding machinery; if an owner
//!   exists in the copy object the push is cancelled for it.
//! * **Pull operations** — a fault in a copy object traverses the local
//!   shadow chain, hops to the copy's *peer node* via the forwarding
//!   machinery, continues with `memory_object_pull_request` there, and so
//!   on until contents or the chain end (zero fill) are found.
//! * **Retry** — a copy request that enters its source while a push is in
//!   progress is bounced back with a retry indicator.

use machvm::{
    Access, EmmiToKernel, LockMode, LockOp, LockResult, MemObjId, PageData, PageIdx, PullResult,
    SupplyMode, VmSystem,
};
use svmsim::{CostModel, NodeId, Time};

use crate::node::{AsvmNode, Fx};
use crate::object::{AsvmObject, Busy, QueuedReq};
use crate::protocol::{AsvmMsg, ReqPath};

/// Starts a push operation at the owner before a write can be granted
/// (`req` resumes once every sharing node has pushed).
#[allow(clippy::too_many_arguments)]
pub(crate) fn start_push(
    o: &mut AsvmObject,
    me: NodeId,
    cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    req: QueuedReq,
    fx: &mut Fx,
) {
    let mobj = o.mobj;
    // Local half: push the page down our own copy chain.
    vm.kernel_call(
        now,
        o.vm_obj,
        EmmiToKernel::LockRequest {
            page,
            op: LockOp::Downgrade {
                return_dirty: false,
            },
            mode: LockMode::PushFirst,
        },
        &mut fx.vm,
    );
    // Remote half: every other sharing node pushes too.
    let others: std::collections::BTreeSet<NodeId> =
        o.nodes.iter().copied().filter(|n| *n != me).collect();
    let pi = o.pages.get_mut(&page).expect("push on untracked page");
    if others.is_empty() {
        pi.version = o.version;
        let resume = req;
        crate::node::AsvmNode::serve(o, me, cost, now, vm, page, resume, fx);
        return;
    }
    for n in &others {
        fx.net.push(crate::protocol::NetSend {
            dst: *n,
            msg: AsvmMsg::PushReq {
                mobj,
                page,
                from: me,
            },
        });
    }
    pi.busy = Some(Busy::Push {
        pending: others,
        resume: Box::new(req),
    });
    vm.set_busy(o.vm_obj, page, true);
}

/// A sharing node received a push request: run the local push via the
/// extended `lock_request` and report the outcome.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_push_req(
    o: &mut AsvmObject,
    me: NodeId,
    _cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    from: NodeId,
    fx: &mut Fx,
) {
    let mobj = o.mobj;
    // The push must also invalidate the page in the source object; a read
    // copy here is dropped (the owner keeps the authoritative copy).
    let resident = vm.peek_page(o.vm_obj, page).is_some();
    if resident {
        vm.kernel_call(
            now,
            o.vm_obj,
            EmmiToKernel::LockRequest {
                page,
                op: LockOp::Flush {
                    return_dirty: false,
                },
                mode: LockMode::PushFirst,
            },
            &mut fx.vm,
        );
        o.pages.remove(&page);
        fx.send(
            from,
            AsvmMsg::PushAck {
                mobj,
                page,
                from: me,
                needs_data: false,
            },
        );
    } else if o.has_local_copy_needing(vm, page) {
        // Our copy chain needs the page but the VM cache lacks it: ask the
        // owner for the contents (lock_completed reported PageAbsent).
        fx.send(
            from,
            AsvmMsg::PushAck {
                mobj,
                page,
                from: me,
                needs_data: true,
            },
        );
    } else {
        fx.send(
            from,
            AsvmMsg::PushAck {
                mobj,
                page,
                from: me,
                needs_data: false,
            },
        );
    }
}

/// The owner received a push acknowledgement.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_push_ack(
    o: &mut AsvmObject,
    me: NodeId,
    cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    from: NodeId,
    needs_data: bool,
    fx: &mut Fx,
) {
    let mobj = o.mobj;
    if needs_data {
        // Send the contents; the node completes with data_supply(push) and
        // then reports PushDone.
        let data = vm
            .peek_page(o.vm_obj, page)
            .map(|(d, _)| d.clone())
            .or_else(|| match o.pages.get(&page).map(|pi| &pi.busy) {
                Some(Some(Busy::Evict { data, .. })) => Some(data.clone()),
                _ => None,
            })
            .expect("push owner lost the page contents");
        fx.net.push(crate::protocol::NetSend {
            dst: from,
            msg: AsvmMsg::PushData {
                mobj,
                page,
                from: me,
                data,
            },
        });
        return;
    }
    push_peer_done(o, me, cost, now, vm, page, from, fx);
}

/// A node that needed contents received them: complete the local push.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_push_data(
    o: &mut AsvmObject,
    me: NodeId,
    _cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    from: NodeId,
    data: PageData,
    fx: &mut Fx,
) {
    let mobj = o.mobj;
    vm.kernel_call(
        now,
        o.vm_obj,
        EmmiToKernel::DataSupply {
            page,
            data,
            lock: Access::Write,
            mode: SupplyMode::PushCopyChain,
        },
        &mut fx.vm,
    );
    // Report completion to the coordinating owner.
    fx.net.push(crate::protocol::NetSend {
        dst: from,
        msg: AsvmMsg::PushDone {
            mobj,
            page,
            from: me,
        },
    });
}

/// The owner learned one sharing node finished its push.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_push_done(
    o: &mut AsvmObject,
    me: NodeId,
    cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    from: NodeId,
    fx: &mut Fx,
) {
    push_peer_done(o, me, cost, now, vm, page, from, fx);
}

fn push_peer_done(
    o: &mut AsvmObject,
    me: NodeId,
    cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    from: NodeId,
    fx: &mut Fx,
) {
    let Some(pi) = o.pages.get_mut(&page) else {
        return;
    };
    let Some(Busy::Push { pending, resume }) = &mut pi.busy else {
        return;
    };
    pending.remove(&from);
    if pending.is_empty() {
        let resume = (**resume).clone();
        pi.version = o.version;
        pi.busy = None;
        vm.set_busy(o.vm_obj, page, false);
        let queued: Vec<QueuedReq> = pi.queued.drain(..).collect();
        crate::node::AsvmNode::serve(o, me, cost, now, vm, page, resume, fx);
        for q in queued {
            if let Some(deliver) = q.deliver {
                // §3.7.3: a copy request that entered the source during the
                // push is bounced back with a retry indicator — the pushed
                // contents now live in the copy objects, so re-pulling from
                // the (about to change) source page would be wrong.
                fx.net.push(crate::protocol::NetSend {
                    dst: q.origin,
                    msg: AsvmMsg::Retry {
                        mobj: deliver,
                        page,
                        access: q.access,
                    },
                });
            } else {
                crate::node::AsvmNode::route(o, me, cost, now, vm, page, q, ReqPath::default(), fx);
            }
        }
    }
}

/// A push scan found an owner inside the shared copy object: the push for
/// this copy object is cancelled; tell the scanning node.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_scan_found(
    o: &mut AsvmObject,
    _me: NodeId,
    _cost: &CostModel,
    _now: Time,
    _vm: &mut VmSystem,
    page: PageIdx,
    req: QueuedReq,
    fx: &mut Fx,
) {
    fx.net.push(crate::protocol::NetSend {
        dst: req.origin,
        msg: AsvmMsg::PushAck {
            mobj: o.mobj,
            page,
            from: req.origin,
            needs_data: false,
        },
    });
}

/// A push scan fell through to "no owner": the push proceeds for this copy
/// object. Handled like the found case in this implementation: the scan
/// requester learns no owner holds the page and performs the push supply.
#[allow(clippy::too_many_arguments)]
pub(crate) fn push_scan_no_owner(
    o: &mut AsvmObject,
    _me: NodeId,
    _cost: &CostModel,
    _now: Time,
    _vm: &mut VmSystem,
    page: PageIdx,
    req: QueuedReq,
    fx: &mut Fx,
) {
    fx.net.push(crate::protocol::NetSend {
        dst: req.origin,
        msg: AsvmMsg::PushAck {
            mobj: o.mobj,
            page,
            from: req.origin,
            needs_data: true,
        },
    });
}

/// A fault in a distributed copy object found no owner anywhere: pull the
/// page through the shadow chain on the peer node (§3.7.3).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pull_dispatch(
    o: &mut AsvmObject,
    me: NodeId,
    _cost: &CostModel,
    now: Time,
    vm: &mut VmSystem,
    page: PageIdx,
    mut req: QueuedReq,
    fx: &mut Fx,
) {
    let peer = o.peer.expect("copy object without a peer node");
    if req.deliver.is_none() {
        req.deliver = Some(o.mobj);
    }
    if peer == me {
        // We are the peer: traverse the local shadow chain.
        let slot = o.pull_in_flight.entry(page).or_default();
        let first = slot.is_empty();
        slot.push(req);
        if first {
            vm.kernel_call(
                now,
                o.vm_obj,
                EmmiToKernel::PullRequest { page },
                &mut fx.vm,
            );
        }
    } else {
        // Hand the request to the peer node; it will issue the pull there.
        fx.net.push(crate::protocol::NetSend {
            dst: peer,
            msg: AsvmMsg::PullHop {
                mobj: o.mobj,
                page,
                access: req.access,
                origin: req.origin,
                origin_obj: req.origin_obj,
                deliver: req.deliver.expect("set above"),
            },
        });
    }
}

/// Outcome of a `pull_request` we issued on the local shadow chain.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_pull_completed(
    o: &mut AsvmObject,
    _me: NodeId,
    _cost: &CostModel,
    _now: Time,
    _vm: &mut VmSystem,
    page: PageIdx,
    result: PullResult,
    fx: &mut Fx,
) {
    let reqs = o.pull_in_flight.remove(&page).unwrap_or_default();
    if reqs.is_empty() {
        return;
    }
    match result {
        PullResult::Zero => {
            for req in reqs {
                grant_pull(o, page, req, PageData::Zero, fx);
            }
        }
        PullResult::Data(data) => {
            for req in reqs {
                grant_pull(o, page, req, data.clone(), fx);
            }
        }
        PullResult::AskShadow(shadow_obj) => {
            // The chain continues in another distributed object: the node
            // dispatcher forwards the request into it.
            for req in reqs {
                fx.pull_escalations.push((shadow_obj, page, req));
            }
        }
    }
}

/// Sends a pulled page snapshot to the request origin, making it the
/// page's first owner inside the copy object. Loopback sends are fine:
/// the glue delivers self-addressed messages locally.
fn grant_pull(o: &mut AsvmObject, page: PageIdx, req: QueuedReq, data: PageData, fx: &mut Fx) {
    let deliver = req.deliver.expect("pull without deliver object");
    fx.net.push(crate::protocol::NetSend {
        dst: req.origin,
        msg: AsvmMsg::Grant {
            mobj: deliver,
            page,
            access: req.access,
            data: Some(data),
            dirty: true,
            ownership: true,
            readers: vec![],
            version: 0,
            pull_snapshot: true,
        },
    });
    let _ = o;
}

/// Outcome of a `lock_request` we issued (push mode) — used by the local
/// half of push operations; plain completions are ignored.
#[allow(clippy::too_many_arguments)]
pub(crate) fn on_lock_completed(
    _o: &mut AsvmObject,
    _me: NodeId,
    _cost: &CostModel,
    _now: Time,
    _vm: &mut VmSystem,
    _page: PageIdx,
    _result: LockResult,
    _fx: &mut Fx,
) {
    // All lock flows in this implementation act synchronously on the local
    // VM, so completions carry no additional information.
}

/// Records a distributed copy relationship: `copy_mobj` is a delayed copy
/// of `source_mobj`, created on `peer` (which maps the source, making it
/// the pull target of §3.7.3).
///
/// This is pure bookkeeping — the source's version counter is bumped by
/// the `CopyMade` settle protocol, not here.
pub(crate) fn declare_copy_link(
    node: &mut AsvmNode,
    copy_mobj: MemObjId,
    source_mobj: Option<MemObjId>,
    peer: Option<NodeId>,
) {
    if let Some(src_id) = source_mobj {
        if node.has_object(src_id) {
            let src = node.object_mut(src_id);
            if !src.copies.contains(&copy_mobj) {
                src.copies.push(copy_mobj);
            }
        }
    }
    let copy = node.object_mut(copy_mobj);
    copy.peer = peer;
    copy.source = source_mobj;
}
