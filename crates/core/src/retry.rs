//! Link-level retry/timeout machinery for the ASVM protocol.
//!
//! The ASVM state machines assume their messages arrive — the paper's STS
//! runs over the Paragon mesh, which never loses a packet. When the fault
//! layer is armed (`svmsim::FaultPlan`), that assumption breaks, so every
//! protocol message is wrapped in a *frame* on a per-link ARQ channel:
//!
//! * the sender assigns a per-`(src, dst)` **sequence number**, keeps the
//!   frame in a retransmit buffer, and arms a timeout;
//! * the receiver acknowledges every frame (including duplicates, whose
//!   acks may themselves have been lost), **suppresses duplicates**, and
//!   releases frames to the protocol strictly **in sequence order** — so
//!   injected reordering is invisible above the channel;
//! * an unacknowledged frame is retransmitted with **bounded exponential
//!   backoff**; after [`RetryConfig::max_attempts`] transmissions the
//!   frame is dropped and the failure surfaced as a clean
//!   `asvm.retry.exhausted` event — never a hang.
//!
//! This module is sans-IO, like the rest of the crate: [`LinkSender`] and
//! [`LinkReceiver`] are pure state machines; the `cluster` crate owns the
//! timers and the wire. ASVM protocol messages are `Clone`, which is what
//! makes the retransmit buffer possible (fork traffic carries boxed
//! programs and cannot be buffered — one reason it stays on reliable
//! NORMA-IPC; see `docs/RELIABILITY.md`).
//!
//! Retry pacing is pure configuration:
//!
//! ```
//! use asvm::retry::RetryConfig;
//! use svmsim::Dur;
//!
//! let cfg = RetryConfig {
//!     base_timeout: Dur::from_millis(2),
//!     max_timeout: Dur::from_millis(50),
//!     max_attempts: 6,
//! };
//! // Exponential backoff, capped: 2, 4, 8, 16, 32, 50 ms.
//! assert_eq!(cfg.timeout_for(0), Dur::from_millis(2));
//! assert_eq!(cfg.timeout_for(3), Dur::from_millis(16));
//! assert_eq!(cfg.timeout_for(5), Dur::from_millis(50));
//! ```

use std::collections::BTreeMap;

use svmsim::Dur;

/// Timeout and backoff policy of the ASVM retry channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Timeout before the first retransmission.
    pub base_timeout: Dur,
    /// Upper bound on the backed-off timeout.
    pub max_timeout: Dur,
    /// Total transmissions of one frame (first send + retries) before the
    /// channel gives up and reports exhaustion.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    /// Defaults sized for the simulated Paragon: an STS round trip is
    /// ~200 µs plus queueing, so 2 ms catches real losses without firing
    /// on ordinary contention; six attempts with doubling reach ~112 ms
    /// of cumulative patience before declaring the link dead.
    fn default() -> RetryConfig {
        RetryConfig {
            base_timeout: Dur::from_millis(2),
            max_timeout: Dur::from_millis(50),
            max_attempts: 6,
        }
    }
}

impl RetryConfig {
    /// The timeout armed after transmission number `attempt` (0-based):
    /// `base_timeout * 2^attempt`, capped at `max_timeout`.
    pub fn timeout_for(&self, attempt: u32) -> Dur {
        let shift = attempt.min(32);
        let ns = self
            .base_timeout
            .as_nanos()
            .saturating_mul(1u64 << shift.min(63));
        Dur::from_nanos(ns)
            .max(self.base_timeout)
            .min(self.max_timeout)
    }
}

/// One frame waiting for its acknowledgement.
#[derive(Clone, Debug)]
struct InFlight<M> {
    msg: M,
    payload: u32,
    kind: &'static str,
    /// Transmissions so far (1 after the initial send).
    attempts: u32,
}

/// Sender half of one directed link's ARQ channel.
#[derive(Clone, Debug)]
pub struct LinkSender<M> {
    next_seq: u64,
    pending: BTreeMap<u64, InFlight<M>>,
}

impl<M> Default for LinkSender<M> {
    fn default() -> Self {
        LinkSender {
            next_seq: 1,
            pending: BTreeMap::new(),
        }
    }
}

/// What a sender-side timeout means for the frame it covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimeoutVerdict<M> {
    /// The frame was acknowledged in the meantime; the timer is stale.
    Stale,
    /// Retransmit `msg` and re-arm the timer for `next_timeout`.
    Resend {
        /// The buffered frame to send again.
        msg: M,
        /// Its payload size (for transport costing).
        payload: u32,
        /// Its per-message-kind statistics key.
        kind: &'static str,
        /// Timeout to arm after this retransmission.
        next_timeout: Dur,
    },
    /// All attempts used up: the frame is dropped from the buffer and the
    /// failure must be surfaced.
    Exhausted {
        /// The dead frame's statistics key (for diagnostics).
        kind: &'static str,
    },
}

impl<M: Clone> LinkSender<M> {
    /// Buffers `msg` and assigns its sequence number. The caller transmits
    /// the frame and arms a [`RetryConfig::timeout_for`]`(0)` timer.
    pub fn enqueue(&mut self, msg: M, payload: u32, kind: &'static str) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(
            seq,
            InFlight {
                msg,
                payload,
                kind,
                attempts: 1,
            },
        );
        seq
    }

    /// Processes an acknowledgement for `seq`. Returns false for stale or
    /// duplicate acks (already-acked frames — harmless).
    pub fn ack(&mut self, seq: u64) -> bool {
        self.pending.remove(&seq).is_some()
    }

    /// Processes a timeout for `seq` under `cfg`.
    pub fn on_timeout(&mut self, seq: u64, cfg: &RetryConfig) -> TimeoutVerdict<M> {
        let Some(f) = self.pending.get_mut(&seq) else {
            return TimeoutVerdict::Stale;
        };
        if f.attempts >= cfg.max_attempts {
            let kind = f.kind;
            self.pending.remove(&seq);
            return TimeoutVerdict::Exhausted { kind };
        }
        f.attempts += 1;
        TimeoutVerdict::Resend {
            msg: f.msg.clone(),
            payload: f.payload,
            kind: f.kind,
            // attempts was bumped: after the n-th transmission the timer
            // waits timeout_for(n-1).
            next_timeout: cfg.timeout_for(f.attempts - 1),
        }
    }

    /// Frames awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

/// What [`LinkReceiver::accept`] decided about one arriving frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Accepted<M> {
    /// Frames released to the protocol, in sequence order. Empty when the
    /// frame was a duplicate or arrived ahead of a gap.
    pub deliver: Vec<M>,
    /// The frame was a duplicate (already delivered or already buffered);
    /// its ack is still sent, but the payload is suppressed.
    pub duplicate: bool,
}

/// Receiver half of one directed link's ARQ channel: duplicate suppression
/// and in-order release.
#[derive(Clone, Debug)]
pub struct LinkReceiver<M> {
    next_expected: u64,
    buffered: BTreeMap<u64, M>,
}

impl<M> Default for LinkReceiver<M> {
    fn default() -> Self {
        LinkReceiver {
            next_expected: 1,
            buffered: BTreeMap::new(),
        }
    }
}

impl<M> LinkReceiver<M> {
    /// Processes frame `seq`. The caller always acknowledges `seq` (acks
    /// are idempotent and may themselves be lost); the returned
    /// [`Accepted`] says what, if anything, to hand to the protocol.
    pub fn accept(&mut self, seq: u64, msg: M) -> Accepted<M> {
        if seq < self.next_expected || self.buffered.contains_key(&seq) {
            return Accepted {
                deliver: Vec::new(),
                duplicate: true,
            };
        }
        self.buffered.insert(seq, msg);
        let mut deliver = Vec::new();
        while let Some(m) = self.buffered.remove(&self.next_expected) {
            deliver.push(m);
            self.next_expected += 1;
        }
        Accepted {
            deliver,
            duplicate: false,
        }
    }

    /// Frames buffered ahead of a sequence gap.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RetryConfig {
        RetryConfig::default()
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = cfg();
        assert_eq!(c.timeout_for(0), Dur::from_millis(2));
        assert_eq!(c.timeout_for(1), Dur::from_millis(4));
        assert_eq!(c.timeout_for(4), Dur::from_millis(32));
        assert_eq!(c.timeout_for(5), Dur::from_millis(50));
        assert_eq!(c.timeout_for(40), Dur::from_millis(50));
    }

    #[test]
    fn happy_path_send_then_ack() {
        let mut tx = LinkSender::default();
        let s1 = tx.enqueue("a", 0, "k");
        let s2 = tx.enqueue("b", 0, "k");
        assert_eq!((s1, s2), (1, 2));
        assert_eq!(tx.in_flight(), 2);
        assert!(tx.ack(s1));
        assert!(!tx.ack(s1), "double ack is stale");
        assert_eq!(tx.in_flight(), 1);
        assert_eq!(tx.on_timeout(s1, &cfg()), TimeoutVerdict::Stale);
    }

    #[test]
    fn timeout_resends_then_exhausts() {
        let c = RetryConfig {
            max_attempts: 3,
            ..cfg()
        };
        let mut tx = LinkSender::default();
        let s = tx.enqueue("payload", 8192, "asvm.msg.grant");
        for attempt in 1..3u32 {
            match tx.on_timeout(s, &c) {
                TimeoutVerdict::Resend {
                    msg, next_timeout, ..
                } => {
                    assert_eq!(msg, "payload");
                    assert_eq!(next_timeout, c.timeout_for(attempt));
                }
                v => panic!("expected resend, got {v:?}"),
            }
        }
        assert_eq!(
            tx.on_timeout(s, &c),
            TimeoutVerdict::Exhausted {
                kind: "asvm.msg.grant"
            }
        );
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.on_timeout(s, &c), TimeoutVerdict::Stale);
    }

    #[test]
    fn receiver_delivers_in_order_across_gaps() {
        let mut rx = LinkReceiver::default();
        let a = rx.accept(2, "b");
        assert!(a.deliver.is_empty() && !a.duplicate);
        assert_eq!(rx.buffered(), 1);
        let a = rx.accept(3, "c");
        assert!(a.deliver.is_empty() && !a.duplicate);
        let a = rx.accept(1, "a");
        assert_eq!(a.deliver, vec!["a", "b", "c"]);
        assert_eq!(rx.buffered(), 0);
    }

    #[test]
    fn receiver_suppresses_duplicates() {
        let mut rx = LinkReceiver::default();
        assert_eq!(rx.accept(1, "a").deliver, vec!["a"]);
        let d = rx.accept(1, "a");
        assert!(d.duplicate && d.deliver.is_empty());
        let a = rx.accept(3, "c");
        assert!(!a.duplicate);
        let d = rx.accept(3, "c");
        assert!(d.duplicate, "buffered frame re-received");
        assert_eq!(rx.accept(2, "b").deliver, vec!["b", "c"]);
    }
}
