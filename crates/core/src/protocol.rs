//! The ASVM wire protocol.
//!
//! ASVM defines its own protocol for all communication between ASVM
//! instances, mapped onto the dedicated SVM Transport Service: messages are
//! a fixed 32-byte block of untyped data, possibly followed by the contents
//! of one VM page (paper §3.1). The variants below are that protocol; the
//! [`AsvmMsg::payload_bytes`] accessor tells the transport how much data
//! follows the header.

use machvm::{Access, MemObjId, PageData, PageIdx, VmObjId};
use svmsim::NodeId;

/// Routing state carried by a request while the redirector forwards it.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReqPath {
    /// The static ownership manager has already been consulted.
    pub tried_static: bool,
    /// Forwarding hops so far (dynamic-hint loop guard).
    pub hops: u16,
    /// Position in the membership list during a global walk, if one is in
    /// progress.
    pub global_pos: Option<u16>,
    /// A global walk completed without finding an owner; the static
    /// manager must dispatch to the pager.
    pub walk_done: bool,
    /// Watchdog re-issue after a suspected node failure: hint shortcuts
    /// are untrustworthy, so the static manager resolves this request
    /// through ownership reconstruction instead of cached state.
    pub recovering: bool,
    /// Issued by the prefetch engine ahead of any demand fault (see
    /// [`crate::prefetch`]). Routing and serving are identical to a
    /// demand request; the flag only feeds transport-level accounting
    /// (`transport.rdma.prefetch_read`).
    pub speculative: bool,
}

/// What a [`AsvmMsg::PageReq`] is asking for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReqKind {
    /// Normal access request for a fault.
    Access,
    /// Push scan (§3.7.2): determine whether any node holds an owner of
    /// this page inside a shared *copy* object. If one exists the push is
    /// cancelled; if the request falls through to "no owner", the push
    /// proceeds.
    PushScan,
}

/// One ASVM protocol message.
#[derive(Clone, Debug)]
pub enum AsvmMsg {
    /// A node mapped the object; sent to the home node.
    MapNotify {
        /// The object.
        mobj: MemObjId,
        /// The mapping node.
        node: NodeId,
    },
    /// Home node's authoritative membership broadcast.
    Membership {
        /// The object.
        mobj: MemObjId,
        /// All nodes that have mapped the object, sorted.
        nodes: Vec<NodeId>,
    },
    /// Access request travelling toward the page owner.
    PageReq {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Requested access.
        access: Access,
        /// The requesting node (grant destination).
        origin: NodeId,
        /// The requester's VM object for this memory object (reply-routing
        /// token for pager dispatches).
        origin_obj: VmObjId,
        /// The requester already holds a read copy (upgrade: the grant need
        /// not carry page contents).
        has_copy: bool,
        /// Routing state.
        path: ReqPath,
        /// Normal access or push scan.
        kind: ReqKind,
        /// Pull-lookup marker (§3.7.3): when set, the request is a
        /// snapshot lookup on behalf of a *copy* object; the grant is
        /// delivered in terms of this object and does not register the
        /// origin as a reader here.
        deliver: Option<MemObjId>,
    },
    /// Owner's (or pager path's) answer to a `PageReq`.
    Grant {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Access granted.
        access: Access,
        /// Page contents, unless the requester already has them.
        data: Option<PageData>,
        /// The distributed page differs from the pager's version.
        dirty: bool,
        /// Ownership is transferred to the requester.
        ownership: bool,
        /// Reader list handed over with ownership.
        readers: Vec<NodeId>,
        /// Delayed-copy page version.
        version: u64,
        /// This grant answers a pull lookup: the receiver becomes the
        /// page's first owner inside the copy object and takes the copy
        /// object's current version.
        pull_snapshot: bool,
    },
    /// Owner tells a reader to drop its copy.
    Invalidate {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The owner (ack destination).
        from: NodeId,
    },
    /// Reader's acknowledgement (sent even if the copy was already gone).
    InvalidateAck {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The acknowledging reader.
        from: NodeId,
    },
    /// Internode pageout step 2: does the reader still hold a copy?
    ReadCheck {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The evicting owner.
        from: NodeId,
    },
    /// Answer to [`AsvmMsg::ReadCheck`].
    ReadCheckReply {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The replying reader.
        from: NodeId,
        /// It still holds a read copy.
        has_copy: bool,
    },
    /// Internode pageout step 2: ownership moves to a reader — *"Note that
    /// this ownership transfer doesn't require sending the page contents."*
    OwnershipTransfer {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Remaining reader list (minus the new owner).
        readers: Vec<NodeId>,
        /// Delayed-copy page version.
        version: u64,
        /// The page differs from the pager's version.
        dirty: bool,
    },
    /// Internode pageout step 3: will you take this page?
    AcceptAsk {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The evicting owner.
        from: NodeId,
    },
    /// Answer to [`AsvmMsg::AcceptAsk`].
    AcceptReply {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The candidate node.
        from: NodeId,
        /// It has memory available and accepts.
        accept: bool,
    },
    /// Internode pageout step 3: the page moves; the receiver becomes
    /// owner.
    PageTransfer {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Contents.
        data: PageData,
        /// The page differs from the pager's version.
        dirty: bool,
        /// Delayed-copy page version.
        version: u64,
    },
    /// Tells the page's static ownership manager who owns it now.
    OwnerHint {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The new owner.
        owner: NodeId,
    },
    /// Tells the static manager the page went back to the pager.
    PagedHint {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
    },
    /// Push operation (§3.7.2): the write-granting owner asks a sharing
    /// node to push the page down its local copy chain and invalidate it in
    /// the source object (`memory_object_lock_request` with push mode).
    PushReq {
        /// The source object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The coordinating owner (ack destination).
        from: NodeId,
    },
    /// Answer to [`AsvmMsg::PushReq`].
    PushAck {
        /// The source object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The replying node.
        from: NodeId,
        /// The page was absent locally; contents are needed to complete
        /// the push (`lock_completed` reported `PageAbsent`).
        needs_data: bool,
    },
    /// Page contents sent to a node whose push found the page absent; the
    /// receiver performs `data_supply(mode=push)`.
    PushData {
        /// The source object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The coordinating owner (completion destination).
        from: NodeId,
        /// Contents to push down the local copy chain.
        data: PageData,
    },
    /// Completion of the remote half of a push at one sharing node.
    PushDone {
        /// The source object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The node that completed its push.
        from: NodeId,
    },
    /// A delayed copy of the object was created somewhere: every sharing
    /// node bumps its version counter and write-protects its resident
    /// pages, so the next write triggers a push operation (§3.7).
    CopyMade {
        /// The source object.
        mobj: MemObjId,
        /// Node that created the copy (the home relays to everyone else).
        from: NodeId,
    },
    /// A sharing node finished applying a copy notification (version bump
    /// + write protection); sent to the home node, which aggregates.
    CopyMadeAck {
        /// The source object.
        mobj: MemObjId,
        /// The acknowledging node.
        from: NodeId,
    },
    /// Every sharing node has applied the copy notification: the fork that
    /// created the copy may complete (the copy point is linearized here).
    CopySettled {
        /// The source object.
        mobj: MemObjId,
    },
    /// Hands a pull lookup to the peer node of a copy object, which walks
    /// its local shadow chain with `memory_object_pull_request` (§3.7.3).
    PullHop {
        /// The object whose local shadow chain must be traversed.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Access the origin wants.
        access: Access,
        /// The faulting node.
        origin: NodeId,
        /// The origin's VM object for the deliver object.
        origin_obj: VmObjId,
        /// The copy object the grant must be delivered in terms of.
        deliver: MemObjId,
    },
    /// Range-lock request (§6 future work): sent to the object's home
    /// node, which runs the lock manager.
    RangeLockReq {
        /// The object.
        mobj: MemObjId,
        /// First page of the range.
        first: PageIdx,
        /// Length in pages.
        count: u32,
        /// The requesting node.
        from: NodeId,
    },
    /// The range lock was granted.
    RangeLockGrant {
        /// The object.
        mobj: MemObjId,
        /// First page of the range.
        first: PageIdx,
        /// Length in pages.
        count: u32,
    },
    /// The holder releases the range.
    RangeLockRelease {
        /// The object.
        mobj: MemObjId,
        /// First page of the range.
        first: PageIdx,
        /// Length in pages.
        count: u32,
        /// The releasing node.
        from: NodeId,
    },
    /// Retry indicator (§3.7.3): a copy request raced with a push; the
    /// origin must re-issue it.
    Retry {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Access originally requested.
        access: Access,
    },
    /// Ownership reconstruction, step 1: the static manager (or the node
    /// that inherited the role) asks a surviving member what it knows
    /// about a page whose owner is suspected dead.
    RecoverQuery {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The reconstructing manager (reply destination).
        from: NodeId,
    },
    /// Answer to [`AsvmMsg::RecoverQuery`]: the replier's local view.
    RecoverReply {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// The replying member.
        from: NodeId,
        /// It holds usable page contents (resident, not mid-transition).
        has_copy: bool,
        /// Delayed-copy version of its copy (0 if none).
        version: u64,
        /// It is the page's current owner.
        owner: bool,
    },
    /// Ownership reconstruction, step 2: no live owner was found; the
    /// receiver — the surviving copy holder with the highest version
    /// (ties to the lowest node id) — becomes the page's owner.
    RecoverElect {
        /// The object.
        mobj: MemObjId,
        /// The page.
        page: PageIdx,
        /// Surviving copy holders other than the new owner (its reader
        /// set).
        readers: Vec<NodeId>,
    },
}

impl AsvmMsg {
    /// Bytes of payload following the fixed 32-byte header (page contents
    /// and variable-length lists).
    pub fn payload_bytes(&self, page_size: u32) -> u32 {
        match self {
            AsvmMsg::Grant {
                data: Some(_),
                readers,
                ..
            } => page_size + 2 * readers.len() as u32,
            AsvmMsg::Grant {
                data: None,
                readers,
                ..
            }
            | AsvmMsg::OwnershipTransfer { readers, .. } => 2 * readers.len() as u32,
            AsvmMsg::PageTransfer { .. } | AsvmMsg::PushData { .. } => page_size,
            AsvmMsg::Membership { nodes, .. } => 2 * nodes.len() as u32,
            AsvmMsg::RecoverElect { readers, .. } => 2 * readers.len() as u32,
            _ => 0,
        }
    }

    /// Statistics key counting sends of this message kind
    /// (`asvm.msg.<kind>`). One interned counter per protocol message
    /// variant; the effect interpreter bumps it on every send.
    pub fn stat_key(&self) -> &'static str {
        match self {
            AsvmMsg::MapNotify { .. } => "asvm.msg.map_notify",
            AsvmMsg::Membership { .. } => "asvm.msg.membership",
            AsvmMsg::PageReq { .. } => "asvm.msg.page_req",
            AsvmMsg::Grant { .. } => "asvm.msg.grant",
            AsvmMsg::Invalidate { .. } => "asvm.msg.invalidate",
            AsvmMsg::InvalidateAck { .. } => "asvm.msg.invalidate_ack",
            AsvmMsg::ReadCheck { .. } => "asvm.msg.read_check",
            AsvmMsg::ReadCheckReply { .. } => "asvm.msg.read_check_reply",
            AsvmMsg::OwnershipTransfer { .. } => "asvm.msg.ownership_transfer",
            AsvmMsg::AcceptAsk { .. } => "asvm.msg.accept_ask",
            AsvmMsg::AcceptReply { .. } => "asvm.msg.accept_reply",
            AsvmMsg::PageTransfer { .. } => "asvm.msg.page_transfer",
            AsvmMsg::OwnerHint { .. } => "asvm.msg.owner_hint",
            AsvmMsg::PagedHint { .. } => "asvm.msg.paged_hint",
            AsvmMsg::PushReq { .. } => "asvm.msg.push_req",
            AsvmMsg::PushAck { .. } => "asvm.msg.push_ack",
            AsvmMsg::PushData { .. } => "asvm.msg.push_data",
            AsvmMsg::PushDone { .. } => "asvm.msg.push_done",
            AsvmMsg::CopyMade { .. } => "asvm.msg.copy_made",
            AsvmMsg::CopyMadeAck { .. } => "asvm.msg.copy_made_ack",
            AsvmMsg::CopySettled { .. } => "asvm.msg.copy_settled",
            AsvmMsg::PullHop { .. } => "asvm.msg.pull_hop",
            AsvmMsg::RangeLockReq { .. } => "asvm.msg.range_lock_req",
            AsvmMsg::RangeLockGrant { .. } => "asvm.msg.range_lock_grant",
            AsvmMsg::RangeLockRelease { .. } => "asvm.msg.range_lock_release",
            AsvmMsg::Retry { .. } => "asvm.msg.retry",
            AsvmMsg::RecoverQuery { .. } => "asvm.msg.recover_query",
            AsvmMsg::RecoverReply { .. } => "asvm.msg.recover_reply",
            AsvmMsg::RecoverElect { .. } => "asvm.msg.recover_elect",
        }
    }

    /// Whether this message may be posted as a *one-sided* remote read on
    /// a transport that supports them: a plain read-access request issued
    /// by `me` itself, with no pull-lookup indirection and no recovery
    /// routing. Forwarded requests, upgrades-in-disguise and watchdog
    /// re-issues must take the two-sided path — their handling can mutate
    /// owner-side state beyond serving a copy, and recovery deliberately
    /// routes through the static manager's reconstruction logic.
    pub fn one_sided_read_candidate(&self, me: NodeId) -> bool {
        matches!(
            self,
            AsvmMsg::PageReq {
                access: Access::Read,
                origin,
                has_copy: false,
                path: ReqPath { recovering: false, .. },
                kind: ReqKind::Access,
                deliver: None,
                ..
            } if *origin == me
        )
    }

    /// Whether this is a speculative (prefetch-issued) page request.
    pub fn is_speculative_req(&self) -> bool {
        matches!(
            self,
            AsvmMsg::PageReq {
                path: ReqPath {
                    speculative: true,
                    ..
                },
                ..
            }
        )
    }

    /// The page this message concerns, if it addresses a single page
    /// (object-level messages — membership, copy notifications — have
    /// none).
    pub fn page(&self) -> Option<PageIdx> {
        match self {
            AsvmMsg::PageReq { page, .. }
            | AsvmMsg::Grant { page, .. }
            | AsvmMsg::Invalidate { page, .. }
            | AsvmMsg::InvalidateAck { page, .. }
            | AsvmMsg::ReadCheck { page, .. }
            | AsvmMsg::ReadCheckReply { page, .. }
            | AsvmMsg::OwnershipTransfer { page, .. }
            | AsvmMsg::AcceptAsk { page, .. }
            | AsvmMsg::AcceptReply { page, .. }
            | AsvmMsg::PageTransfer { page, .. }
            | AsvmMsg::OwnerHint { page, .. }
            | AsvmMsg::PagedHint { page, .. }
            | AsvmMsg::PushReq { page, .. }
            | AsvmMsg::PushAck { page, .. }
            | AsvmMsg::PushData { page, .. }
            | AsvmMsg::PushDone { page, .. }
            | AsvmMsg::PullHop { page, .. }
            | AsvmMsg::Retry { page, .. }
            | AsvmMsg::RecoverQuery { page, .. }
            | AsvmMsg::RecoverReply { page, .. }
            | AsvmMsg::RecoverElect { page, .. } => Some(*page),
            AsvmMsg::RangeLockReq { first, .. }
            | AsvmMsg::RangeLockGrant { first, .. }
            | AsvmMsg::RangeLockRelease { first, .. } => Some(*first),
            AsvmMsg::MapNotify { .. }
            | AsvmMsg::Membership { .. }
            | AsvmMsg::CopyMade { .. }
            | AsvmMsg::CopyMadeAck { .. }
            | AsvmMsg::CopySettled { .. } => None,
        }
    }

    /// The memory object this message concerns.
    pub fn mobj(&self) -> MemObjId {
        match self {
            AsvmMsg::MapNotify { mobj, .. }
            | AsvmMsg::Membership { mobj, .. }
            | AsvmMsg::PageReq { mobj, .. }
            | AsvmMsg::Grant { mobj, .. }
            | AsvmMsg::Invalidate { mobj, .. }
            | AsvmMsg::InvalidateAck { mobj, .. }
            | AsvmMsg::ReadCheck { mobj, .. }
            | AsvmMsg::ReadCheckReply { mobj, .. }
            | AsvmMsg::OwnershipTransfer { mobj, .. }
            | AsvmMsg::AcceptAsk { mobj, .. }
            | AsvmMsg::AcceptReply { mobj, .. }
            | AsvmMsg::PageTransfer { mobj, .. }
            | AsvmMsg::OwnerHint { mobj, .. }
            | AsvmMsg::PagedHint { mobj, .. }
            | AsvmMsg::PushReq { mobj, .. }
            | AsvmMsg::PushAck { mobj, .. }
            | AsvmMsg::PushData { mobj, .. }
            | AsvmMsg::PushDone { mobj, .. }
            | AsvmMsg::PullHop { mobj, .. }
            | AsvmMsg::CopyMade { mobj, .. }
            | AsvmMsg::CopyMadeAck { mobj, .. }
            | AsvmMsg::CopySettled { mobj }
            | AsvmMsg::RangeLockReq { mobj, .. }
            | AsvmMsg::RangeLockGrant { mobj, .. }
            | AsvmMsg::RangeLockRelease { mobj, .. }
            | AsvmMsg::Retry { mobj, .. }
            | AsvmMsg::RecoverQuery { mobj, .. }
            | AsvmMsg::RecoverReply { mobj, .. }
            | AsvmMsg::RecoverElect { mobj, .. } => *mobj,
        }
    }

    /// Whether this is an ack-class message: pure bookkeeping replies that
    /// the engine handles at `asvm_ack_handle` cost. These are what the
    /// coalescing layer counts as "acks riding on data frames" when they
    /// share a wire frame with a payload-carrying subframe.
    pub fn is_ack_class(&self) -> bool {
        matches!(
            self,
            AsvmMsg::InvalidateAck { .. }
                | AsvmMsg::ReadCheckReply { .. }
                | AsvmMsg::AcceptReply { .. }
                | AsvmMsg::PushAck { .. }
                | AsvmMsg::PushDone { .. }
                | AsvmMsg::OwnerHint { .. }
                | AsvmMsg::PagedHint { .. }
        )
    }

    /// Whether this message carries page contents on the wire.
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            AsvmMsg::Grant { data: Some(_), .. }
                | AsvmMsg::PageTransfer { .. }
                | AsvmMsg::PushData { .. }
        )
    }
}

/// A network send requested by the ASVM state machine.
#[derive(Clone, Debug)]
pub struct NetSend {
    /// Destination node.
    pub dst: NodeId,
    /// The message.
    pub msg: AsvmMsg,
}

/// An EMMI request to a real pager task, carried over NORMA-IPC.
#[derive(Clone, Debug)]
pub struct PagerSend {
    /// The I/O node hosting the pager.
    pub pager_node: NodeId,
    /// Node the pager's reply must go to (the request origin — not
    /// necessarily the node that dispatched the request).
    pub reply_to: NodeId,
    /// The memory object addressed.
    pub mobj: MemObjId,
    /// Reply-routing VM object on `reply_to`.
    pub obj: VmObjId,
    /// The EMMI call.
    pub call: machvm::EmmiToPager,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_accounting() {
        let ps = 8192;
        let hdr_only = AsvmMsg::Invalidate {
            mobj: MemObjId(1),
            page: PageIdx(0),
            from: NodeId(0),
        };
        assert_eq!(hdr_only.payload_bytes(ps), 0);

        let grant = AsvmMsg::Grant {
            mobj: MemObjId(1),
            page: PageIdx(0),
            access: Access::Write,
            data: Some(PageData::Word(1)),
            dirty: false,
            ownership: true,
            readers: vec![NodeId(1), NodeId(2)],
            version: 0,
            pull_snapshot: false,
        };
        assert_eq!(grant.payload_bytes(ps), ps + 4);

        let upgrade = AsvmMsg::Grant {
            mobj: MemObjId(1),
            page: PageIdx(0),
            access: Access::Write,
            data: None,
            dirty: false,
            ownership: true,
            readers: vec![],
            version: 0,
            pull_snapshot: false,
        };
        assert_eq!(upgrade.payload_bytes(ps), 0);
    }

    #[test]
    fn mobj_extraction() {
        let m = AsvmMsg::PagedHint {
            mobj: MemObjId(9),
            page: PageIdx(1),
        };
        assert_eq!(m.mobj(), MemObjId(9));
    }
}
