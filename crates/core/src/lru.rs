//! A small exact-LRU cache used for ownership hints.
//!
//! ASVM's dynamic and static forwarding information lives in caches "for
//! the most recently accessed pages" (paper §3.4, FIGURE 6); capacity
//! bounds are what keep ASVM's memory requirements independent of address
//! space size. Lookups refresh recency; inserts evict the least recently
//! used entry when full.

use std::collections::BTreeMap;

/// An exact LRU cache with `O(log n)` operations.
#[derive(Clone, Debug)]
pub struct Lru<K: Ord + Copy, V> {
    cap: usize,
    tick: u64,
    map: BTreeMap<K, (u64, V)>,
    by_age: BTreeMap<u64, K>,
    evictions: u64,
}

impl<K: Ord + Copy, V> Lru<K, V> {
    /// Creates a cache holding at most `cap` entries (`cap == 0` disables
    /// the cache entirely: inserts are dropped).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru {
            cap,
            tick: 0,
            map: BTreeMap::new(),
            by_age: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Looks up `k`, refreshing its recency.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        let tick = self.next_tick();
        let (age, _) = self.map.get_mut(k)?;
        self.by_age.remove(age);
        *age = tick;
        self.by_age.insert(tick, *k);
        self.map.get(k).map(|(_, v)| v)
    }

    /// Looks up `k` without refreshing recency.
    pub fn peek(&self, k: &K) -> Option<&V> {
        self.map.get(k).map(|(_, v)| v)
    }

    /// Iterates over all entries in key order without touching recency.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, (_, v))| (k, v))
    }

    /// Inserts or updates `k`, evicting the LRU entry if over capacity.
    pub fn insert(&mut self, k: K, v: V) {
        if self.cap == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some((age, _)) = self.map.get(&k) {
            self.by_age.remove(age);
        }
        self.map.insert(k, (tick, v));
        self.by_age.insert(tick, k);
        while self.map.len() > self.cap {
            let (&oldest, &victim) = self.by_age.iter().next().expect("len > 0");
            self.by_age.remove(&oldest);
            self.map.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Removes `k`.
    pub fn remove(&mut self, k: &K) -> Option<V> {
        let (age, v) = self.map.remove(k)?;
        self.by_age.remove(&age);
        Some(v)
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total evictions so far — non-zero means forwarding information may
    /// have been lost and fallback strategies can kick in.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // refresh 1
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.peek(&2), None);
        assert_eq!(c.peek(&1), Some(&"a"));
        assert_eq!(c.peek(&3), Some(&"c"));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn update_refreshes_and_replaces() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2"); // refresh + replace
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.peek(&1), Some(&"a2"));
        assert_eq!(c.peek(&2), None);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = Lru::new(0);
        c.insert(1, "a");
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn remove_works() {
        let mut c = Lru::new(4);
        c.insert(1, "a");
        assert_eq!(c.remove(&1), Some("a"));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn peek_does_not_refresh() {
        let mut c = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.peek(&1), Some(&"a")); // no refresh
        c.insert(3, "c"); // evicts 1 (peek did not refresh it)
        assert_eq!(c.peek(&1), None);
    }
}
