//! Unit tests driving the ASVM state machine directly, without the
//! discrete-event simulator: a miniature network shuttles protocol
//! messages between a handful of `(AsvmNode, VmSystem)` pairs and the
//! tests assert on protocol decisions, page state and invariants.

use machvm::{
    Access, Backing, EmmiToKernel, EmmiToPager, Inherit, MemObjId, PageData, PageIdx, SupplyMode,
    TaskId, VmObjId, VmSystem,
};
use svmsim::{CostModel, NodeId, Time};

use crate::config::AsvmConfig;
use crate::node::{AsvmNode, Fx};
use crate::object::StaticHint;
use crate::protocol::{AsvmMsg, PagerSend};

const MOBJ: MemObjId = MemObjId(7);
const PAGES: u32 = 16;

/// A miniature cluster: ASVM instances with their VM systems, a message
/// bag, and a fake pager that answers data requests with stamps.
struct MiniNet {
    nodes: Vec<(AsvmNode, VmSystem)>,
    /// In-flight protocol messages: (from, to, msg).
    wire: Vec<(NodeId, NodeId, AsvmMsg)>,
    /// In-flight pager requests.
    pager_wire: Vec<PagerSend>,
    /// What the fake pager supplies per page.
    pager_data: Box<dyn Fn(PageIdx) -> PageData>,
    now_ns: u64,
}

impl MiniNet {
    fn new(n: u16, cfg: AsvmConfig) -> MiniNet {
        let cost = CostModel::default();
        let mut nodes = Vec::new();
        for i in 0..n {
            let mut vm = VmSystem::new(8192, 1 << 20, cost.clone());
            let mut asvm = AsvmNode::new(NodeId(i), cost.clone());
            let vo = vm.create_object(PAGES, Backing::External(MOBJ));
            let mut fx = Fx::new();
            // Home is node 0; the pager node id is out-of-band (99).
            asvm.register_object(MOBJ, vo, PAGES, NodeId(0), NodeId(99), cfg, &mut fx);
            // Drop setup MapNotify traffic; membership is set directly.
            nodes.push((asvm, vm));
        }
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        for (a, _) in &mut nodes {
            a.object_mut(MOBJ).nodes = members.clone();
        }
        MiniNet {
            nodes,
            wire: Vec::new(),
            pager_wire: Vec::new(),
            pager_data: Box::new(|_| PageData::Zero),
            now_ns: 0,
        }
    }

    fn now(&mut self) -> Time {
        self.now_ns += 1000;
        Time::from_nanos(self.now_ns)
    }

    fn vm_obj(&self, n: u16) -> VmObjId {
        self.nodes[n as usize].0.object(MOBJ).vm_obj
    }

    /// Maps the object into a task on node `n` so faults can be raised.
    fn add_task(&mut self, n: u16) -> TaskId {
        let task = TaskId(100 + n as u32);
        let vo = self.vm_obj(n);
        let vm = &mut self.nodes[n as usize].1;
        vm.create_task(task);
        vm.map_object(task, 0, PAGES, vo, 0, Access::Write, Inherit::Share);
        task
    }

    fn absorb(&mut self, from: NodeId, fx: Fx) {
        for ns in fx.net {
            self.wire.push((from, ns.dst, ns.msg));
        }
        self.pager_wire.extend(fx.pager);
        // VM effects: route EMMI back into the local ASVM; surface fault
        // completions implicitly through VM state.
        let mut vm_out: std::collections::VecDeque<machvm::VmEffect> = fx.vm.out.into();
        while let Some(eff) = vm_out.pop_front() {
            if let machvm::VmEffect::ToPager { obj, call, .. } = eff {
                let now = self.now();
                let (a, vm) = &mut self.nodes[from.index()];
                let mut fx2 = Fx::new();
                a.handle_emmi(now, vm, obj, call, &mut fx2);
                for ns in fx2.net {
                    self.wire.push((from, ns.dst, ns.msg));
                }
                self.pager_wire.extend(fx2.pager);
                vm_out.extend(fx2.vm.out);
            }
        }
    }

    /// Delivers every in-flight message until the network drains.
    fn settle(&mut self) {
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000, "mini net livelock");
            if let Some(p) = self.pager_wire.pop() {
                // Fake pager: answer data requests immediately.
                if let EmmiToPager::DataRequest { page, .. } = p.call {
                    let data = (self.pager_data)(page);
                    let now = self.now();
                    let (a, vm) = &mut self.nodes[p.reply_to.index()];
                    let mut fx = Fx::new();
                    a.on_pager_reply(
                        now,
                        vm,
                        p.obj,
                        EmmiToKernel::DataSupply {
                            page,
                            data,
                            lock: Access::Write,
                            mode: SupplyMode::Normal,
                        },
                        &mut fx,
                    );
                    self.absorb(p.reply_to, fx);
                }
                continue;
            }
            let Some((from, to, msg)) = self.wire.pop() else {
                return;
            };
            let now = self.now();
            let (a, vm) = &mut self.nodes[to.index()];
            let mut fx = Fx::new();
            a.handle_msg(now, vm, from, msg, &mut fx);
            self.absorb(to, fx);
        }
    }

    /// Raises a fault on node `n` and settles the network.
    fn fault(&mut self, n: u16, task: TaskId, page: u32, access: Access) {
        let now = self.now();
        let (_, vm) = &mut self.nodes[n as usize];
        let mut vfx = machvm::Effects::new();
        vm.fault(now, task, page as u64, access, &mut vfx);
        let fx = Fx {
            vm: vfx,
            ..Fx::new()
        };
        self.absorb(NodeId(n), fx);
        self.settle();
    }

    fn owner_of(&self, page: u32) -> Option<NodeId> {
        let mut owner = None;
        for (i, (a, _)) in self.nodes.iter().enumerate() {
            if let Some(pi) = a.page_info(MOBJ, PageIdx(page)) {
                if pi.owner {
                    assert!(owner.is_none(), "two owners for page {page}");
                    owner = Some(NodeId(i as u16));
                }
            }
        }
        owner
    }

    /// The state invariant of §3.1/§3.4: every node holding page state for
    /// a non-busy page has the page resident in its VM cache.
    fn check_state_tied_to_residency(&self) {
        for (i, (a, vm)) in self.nodes.iter().enumerate() {
            let o = a.object(MOBJ);
            for (page, pi) in &o.pages {
                if pi.busy.is_none() {
                    assert!(
                        vm.object(o.vm_obj).resident(*page),
                        "node {i} holds state for non-resident {page:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn first_touch_goes_to_pager_and_makes_owner() {
    let mut net = MiniNet::new(3, AsvmConfig::default());
    let t = net.add_task(1);
    net.fault(1, t, 4, Access::Read);
    assert_eq!(net.owner_of(4), Some(NodeId(1)));
    // The static manager learned about the owner.
    let sm = net.nodes[0].0.object(MOBJ).static_node(PageIdx(4));
    let smo = net.nodes[sm.index()].0.object(MOBJ);
    assert!(smo.static_seen.contains(&PageIdx(4)));
    net.check_state_tied_to_residency();
}

#[test]
fn read_grant_builds_reader_list() {
    let mut net = MiniNet::new(4, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 0, Access::Write);
    for n in 1..4 {
        let t = net.add_task(n);
        net.fault(n, t, 0, Access::Read);
    }
    let owner = net.owner_of(0).unwrap();
    assert_eq!(owner, NodeId(0));
    let pi = net.nodes[0].0.page_info(MOBJ, PageIdx(0)).unwrap();
    assert_eq!(pi.readers.len(), 3, "all readers tracked");
    assert_eq!(pi.access, Access::Read, "owner downgraded to share reads");
    net.check_state_tied_to_residency();
}

#[test]
fn write_transfer_moves_ownership_and_invalidates() {
    let mut net = MiniNet::new(4, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 0, Access::Write);
    let t1 = net.add_task(1);
    net.fault(1, t1, 0, Access::Read);
    let t2 = net.add_task(2);
    net.fault(2, t2, 0, Access::Write);

    assert_eq!(net.owner_of(0), Some(NodeId(2)));
    // Old owner and old reader lost their copies.
    assert!(net.nodes[0].0.page_info(MOBJ, PageIdx(0)).is_none());
    assert!(net.nodes[1].0.page_info(MOBJ, PageIdx(0)).is_none());
    assert!(!net.nodes[0].1.object(net.vm_obj(0)).resident(PageIdx(0)));
    // The writer's VM has write access.
    assert!(net.nodes[2].1.can_access(TaskId(102), 0, Access::Write));
    net.check_state_tied_to_residency();
}

#[test]
fn upgrade_in_place_needs_no_page_transfer() {
    let mut net = MiniNet::new(3, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 3, Access::Write);
    let t1 = net.add_task(1);
    net.fault(1, t1, 3, Access::Read);
    // Node 1 upgrades: it already holds the data.
    net.fault(1, t1, 3, Access::Write);
    assert_eq!(net.owner_of(3), Some(NodeId(1)));
    assert!(net.nodes[1].1.can_access(t1, 3, Access::Write));
    net.check_state_tied_to_residency();
}

#[test]
fn dynamic_hints_chase_migrating_ownership() {
    let mut net = MiniNet::new(4, AsvmConfig::default());
    let tasks: Vec<_> = (0..4).map(|n| net.add_task(n)).collect();
    for round in 0..3 {
        for n in 0..4u16 {
            net.fault(n, tasks[n as usize], 1, Access::Write);
            let _ = round;
        }
    }
    assert_eq!(net.owner_of(1), Some(NodeId(3)));
    // Some node's dynamic cache should point at a recent owner.
    let hint = net.nodes[0].0.object(MOBJ).dyn_cache.peek(&PageIdx(1));
    assert!(hint.is_some(), "write traffic must leave ownership hints");
}

#[test]
fn static_manager_records_paged_hint_on_evict_to_pager() {
    let mut net = MiniNet::new(2, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 2, Access::Write);
    net.nodes[0]
        .1
        .write_page(Time::from_nanos(1), t0, 2, PageData::Word(42));

    // Evict the page on the owner; with a lone other node refusing is not
    // modelled here (it accepts), so force step 4 by making node 1 "full":
    // easiest honest path: single-member object.
    let mut solo = MiniNet::new(1, AsvmConfig::default());
    let ts = solo.add_task(0);
    solo.fault(0, ts, 2, Access::Write);
    solo.nodes[0]
        .1
        .write_page(Time::from_nanos(1), ts, 2, PageData::Word(42));
    let now = solo.now();
    let vo = solo.vm_obj(0);
    let mut vfx = machvm::Effects::new();
    solo.nodes[0].1.evict(now, vo, PageIdx(2), &mut vfx);
    // Route the EvictExternal effect into ASVM.
    let mut fx = Fx::new();
    for eff in vfx.out {
        if let machvm::VmEffect::EvictExternal {
            obj,
            page,
            data,
            dirty,
            ..
        } = eff
        {
            let now = solo.now();
            let (a, vm) = &mut solo.nodes[0];
            a.evict_external(now, vm, obj, page, data, dirty, &mut fx);
        }
    }
    // Step 4: the dirty page went to the pager...
    assert!(
        fx.pager
            .iter()
            .any(|p| matches!(p.call, EmmiToPager::DataReturn { .. })),
        "dirty page must be returned to the pager"
    );
    // ...state is gone, and the static manager (itself) knows it is paged.
    let o = solo.nodes[0].0.object(MOBJ);
    assert!(!o.pages.contains_key(&PageIdx(2)));
    assert_eq!(o.static_cache.peek(&PageIdx(2)), Some(&StaticHint::Paged));
}

#[test]
fn eviction_hands_ownership_to_a_reader_without_contents() {
    let mut net = MiniNet::new(3, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 5, Access::Write);
    let t1 = net.add_task(1);
    net.fault(1, t1, 5, Access::Read);

    // Evict on the owner (node 0): step 2 must transfer ownership to the
    // reader (node 1) without a page-carrying message.
    let now = net.now();
    let vo = net.vm_obj(0);
    let mut vfx = machvm::Effects::new();
    net.nodes[0].1.evict(now, vo, PageIdx(5), &mut vfx);
    let mut fx = Fx::new();
    for eff in vfx.out {
        if let machvm::VmEffect::EvictExternal {
            obj,
            page,
            data,
            dirty,
            ..
        } = eff
        {
            let now = net.now();
            let (a, vm) = &mut net.nodes[0];
            a.evict_external(now, vm, obj, page, data, dirty, &mut fx);
        }
    }
    // Check that no page payload travels during the hand-off.
    let ps = 8192;
    for ns in &fx.net {
        assert_eq!(
            ns.msg.payload_bytes(ps),
            0,
            "ownership hand-off must not carry page contents"
        );
    }
    net.absorb(NodeId(0), fx);
    net.settle();
    assert_eq!(net.owner_of(5), Some(NodeId(1)));
    net.check_state_tied_to_residency();
}

/// Routes a VM eviction of `page` on node `n` into that node's ASVM
/// (what the cluster layer does under frame pressure) and returns the
/// effects for inspection.
fn evict_on(net: &mut MiniNet, n: u16, page: u32) -> Fx {
    let now = net.now();
    let vo = net.vm_obj(n);
    let mut vfx = machvm::Effects::new();
    net.nodes[n as usize]
        .1
        .evict(now, vo, PageIdx(page), &mut vfx);
    let mut fx = Fx::new();
    for eff in vfx.out {
        if let machvm::VmEffect::EvictExternal {
            obj,
            page,
            data,
            dirty,
            ..
        } = eff
        {
            let now = net.now();
            let (a, vm) = &mut net.nodes[n as usize];
            a.evict_external(now, vm, obj, page, data, dirty, &mut fx);
        }
    }
    fx
}

/// §3.6 step 1 discards a read copy *silently*, so the owner's reader
/// list goes stale. A later write request from the discarder must still
/// receive the page contents — eliding them against the stale reader
/// list alone would destroy the page (the old owner flushes its copy
/// after the transfer).
#[test]
fn write_transfer_ships_data_when_readers_copy_was_discarded() {
    let mut net = MiniNet::new(3, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 0, Access::Write);
    net.nodes[0]
        .1
        .write_page(Time::from_nanos(1), t0, 0, PageData::Word(42));
    let t1 = net.add_task(1);
    net.fault(1, t1, 0, Access::Read);

    // Frame pressure discards node 1's read copy; the owner is not told.
    let fx = evict_on(&mut net, 1, 0);
    net.absorb(NodeId(1), fx);
    net.settle();
    let pi = net.nodes[0].0.page_info(MOBJ, PageIdx(0)).unwrap();
    assert!(pi.readers.contains(&NodeId(1)), "reader list is now stale");

    // Node 1 write-faults: its request no longer claims a copy, so the
    // transfer must carry the page.
    net.fault(1, t1, 0, Access::Write);
    assert_eq!(net.owner_of(0), Some(NodeId(1)));
    let vo = net.vm_obj(1);
    assert_eq!(
        net.nodes[1]
            .1
            .peek_page(vo, PageIdx(0))
            .map(|(d, _)| d.clone()),
        Some(PageData::Word(42)),
        "contents must survive the transfer"
    );
    // The new owner can serve a further transfer (the old panic site).
    let t2 = net.add_task(2);
    net.fault(2, t2, 0, Access::Write);
    assert_eq!(net.owner_of(0), Some(NodeId(2)));
    net.check_state_tied_to_residency();
}

/// The narrower in-flight window: the upgrade request already claimed
/// the read copy when frame pressure discards it. The owner honours the
/// claim and elides the contents, so the discarder must have kept them
/// (the stash) and restore them when the elided grant lands.
#[test]
fn stashed_copy_survives_eviction_during_pending_upgrade() {
    let mut net = MiniNet::new(3, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 0, Access::Write);
    net.nodes[0]
        .1
        .write_page(Time::from_nanos(1), t0, 0, PageData::Word(7));
    let t1 = net.add_task(1);
    net.fault(1, t1, 0, Access::Read);

    // Raise the write upgrade on node 1 but keep its request parked on
    // the wire (no settle): the claim `has_copy` is now in flight.
    let now = net.now();
    let mut vfx = machvm::Effects::new();
    net.nodes[1].1.fault(now, t1, 0, Access::Write, &mut vfx);
    net.absorb(
        NodeId(1),
        Fx {
            vm: vfx,
            ..Fx::new()
        },
    );
    assert!(
        net.nodes[1].0.object(MOBJ).pending[&PageIdx(0)].has_copy,
        "the in-flight request claims the read copy"
    );

    // Frame pressure discards the claimed copy: the contents must be
    // stashed until the grant arrives.
    let fx = evict_on(&mut net, 1, 0);
    assert!(fx.bumps.contains(&"asvm.evict.stash"));
    assert!(net.nodes[1].0.object(MOBJ).stash.contains_key(&PageIdx(0)));
    net.absorb(NodeId(1), fx);
    net.settle();

    // The owner elided the data against the honoured claim; the stash
    // filled the VM page back in.
    assert_eq!(net.owner_of(0), Some(NodeId(1)));
    let vo = net.vm_obj(1);
    assert_eq!(
        net.nodes[1]
            .1
            .peek_page(vo, PageIdx(0))
            .map(|(d, _)| d.clone()),
        Some(PageData::Word(7)),
        "stashed contents must be restored"
    );
    assert!(net.nodes[1].0.object(MOBJ).stash.is_empty());
    // And the restored owner serves further transfers.
    let t2 = net.add_task(2);
    net.fault(2, t2, 0, Access::Write);
    assert_eq!(net.owner_of(0), Some(NodeId(2)));
    net.check_state_tied_to_residency();
}

#[test]
fn global_walk_finds_owner_without_any_caches() {
    let mut net = MiniNet::new(4, AsvmConfig::global_only());
    let t2 = net.add_task(2);
    net.fault(2, t2, 9, Access::Write);
    // A different node finds the owner purely by walking.
    let t0 = net.add_task(0);
    net.fault(0, t0, 9, Access::Read);
    assert_eq!(net.owner_of(9), Some(NodeId(2)));
    let pi = net.nodes[2].0.page_info(MOBJ, PageIdx(9)).unwrap();
    assert!(pi.readers.contains(&NodeId(0)));
}

#[test]
fn copy_made_bumps_version_and_write_protects() {
    let mut net = MiniNet::new(2, AsvmConfig::default());
    let t0 = net.add_task(0);
    net.fault(0, t0, 0, Access::Write);
    assert_eq!(net.nodes[0].0.object(MOBJ).version, 0);

    // Node 1 declares a copy (as a fork would).
    let now = net.now();
    let (a, vm) = &mut net.nodes[1];
    let mut fx = Fx::new();
    a.copy_made_local(now, vm, MOBJ, &mut fx);
    net.absorb(NodeId(1), fx);
    net.settle();

    for (i, (a, _)) in net.nodes.iter().enumerate() {
        assert_eq!(a.object(MOBJ).version, 1, "node {i} version");
    }
    // The owner's page state was downgraded to read-only.
    let pi = net.nodes[0].0.page_info(MOBJ, PageIdx(0)).unwrap();
    assert_eq!(pi.access, Access::Read);
    // And a new write now requires a push round (version mismatch).
    assert_eq!(pi.version, 0);
    assert_ne!(pi.version, net.nodes[0].0.object(MOBJ).version);
}

#[test]
fn pager_contents_flow_through_grants() {
    let mut net = MiniNet::new(2, AsvmConfig::default());
    net.pager_data = Box::new(|p| PageData::Word(0xF00D_0000 + p.0 as u64));
    let t0 = net.add_task(0);
    net.fault(0, t0, 6, Access::Read);
    let now = net.now();
    assert_eq!(
        net.nodes[0].1.read_page(now, t0, 6),
        PageData::Word(0xF00D_0006)
    );
    // Second node gets it from the owner, not the pager.
    let before = net.pager_wire.len();
    let t1 = net.add_task(1);
    net.fault(1, t1, 6, Access::Read);
    assert_eq!(net.pager_wire.len(), before, "no further pager traffic");
    let now = net.now();
    assert_eq!(
        net.nodes[1].1.read_page(now, t1, 6),
        PageData::Word(0xF00D_0006)
    );
}

#[test]
fn state_bytes_stay_bounded_by_residency() {
    let mut net = MiniNet::new(2, AsvmConfig::default());
    let t0 = net.add_task(0);
    for p in 0..PAGES {
        net.fault(0, t0, p, Access::Write);
    }
    let o = net.nodes[0].0.object(MOBJ);
    assert_eq!(o.pages.len(), PAGES as usize);
    // The other node holds no per-page state at all.
    assert_eq!(net.nodes[1].0.object(MOBJ).pages.len(), 0);
}
