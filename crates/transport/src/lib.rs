//! Transport services for cross-node communication.
//!
//! The paper contrasts two transports (§3.1):
//!
//! * **NORMA-IPC** — Mach's distributed IPC. Every message pays for port
//!   right translation, typed message construction and parsing, and a large
//!   envelope. On the Paragon, NORMA-IPC accounted for *"about 90 percent of
//!   the latency involved in resolving remote page faults for memory that is
//!   shared through XMM"*. XMM's XMMI protocol rides on it, as does all
//!   kernel-to-pager EMMI traffic.
//! * **STS** — the dedicated SVM Transport Service built for ASVM. Messages
//!   are a fixed 32-byte block of untyped data, optionally followed by one
//!   VM page; receive buffers are preallocated because page contents only
//!   ever move in response to a request. The result is roughly an order of
//!   magnitude less software overhead per message.
//!
//! The 1996 trade-off inverts on modern one-sided interconnects, so the
//! crate is built around a [`TransportBackend`] trait rather than a closed
//! enum. A backend turns "send this many payload bytes to that node" into a
//! [`MsgCosts`] envelope (sender CPU, receiver CPU, wire bytes, in-flight
//! latency) evaluated against the machine's [`CostModel`], and declares its
//! capabilities: statistics keys, coalescing support, per-link ARQ
//! eligibility, and one-sided read support. Three backends ship:
//!
//! * [`NormaIpc`] and [`Sts`] — the paper's pair, byte-identical in cost
//!   and accounting to the pre-trait implementation.
//! * [`Rdma`] — a modern one-sided backend: remote page *reads* are served
//!   entirely by the target's NIC (**zero receiver CPU occupancy**), at the
//!   price of per-link setup/registration, a per-message latency floor, and
//!   an interrupt-driven (coalescing-free) control path. Reliability lives
//!   in the fabric, so it opts out of the software ARQ layer; a lost
//!   one-sided read surfaces only at the requester, whose watchdog
//!   re-issues it (see `docs/RELIABILITY.md`).
//!
//! The protocol crates never hard-code costs; they pick a transport, which
//! keeps the transport-swap ablation (`ablation_transport`) honest.
//!
//! # Fault injection
//!
//! [`Transport::send`] and [`Transport::send_tagged`] model a perfectly
//! reliable interconnect. The *fault-exposed* path,
//! [`Transport::send_lossy`], additionally consults the machine's
//! [`FaultPlan`] (carried by `MachineConfig`, re-exported here): per-link
//! drop/duplicate/delay sampling plus scripted node blackouts, each
//! counted under `transport.fault.*`. The ASVM protocol opts into this
//! path through its retry channel (see `docs/RELIABILITY.md`); NORMA-IPC
//! traffic stays on the reliable path, modelling Mach's kernel-to-kernel
//! IPC guarantees.
//!
//! Constructing a plan is pure configuration — no cluster required:
//!
//! ```
//! use transport::FaultPlan;
//! use svmsim::{Dur, MachineConfig};
//!
//! let mut cfg = MachineConfig::paragon(4);
//! cfg.faults = FaultPlan::seeded(1996)
//!     .with_drop_ppm(10_000) // 1 % loss
//!     .with_delay(5_000, Dur::from_millis(2));
//! assert!(cfg.faults.is_active());
//! ```

use svmsim::{CostModel, Ctx, Dur, FaultCause, FaultDecision, MsgCosts, NodeId};

pub use svmsim::{Blackout, FaultPlan, LinkFaults};

/// One pluggable transport implementation: its cost envelopes, statistics
/// keys, and capability flags. Implementations are stateless units behind
/// `&'static` references so [`Transport`] stays `Copy`.
///
/// The contract every backend must uphold:
///
/// * [`costs`](TransportBackend::costs) is deterministic in
///   `(cost, payload_bytes)` — the simulation replays byte-identically.
/// * [`stat_key`](TransportBackend::stat_key) /
///   [`page_stat_key`](TransportBackend::page_stat_key) are distinct per
///   backend, so per-backend chattiness is separable in every bench JSON.
/// * A backend that returns `false` from
///   [`supports_coalescing`](TransportBackend::supports_coalescing) is
///   never handed a multi-subframe frame.
/// * A backend that returns `false` from
///   [`per_link_arq`](TransportBackend::per_link_arq) must tolerate loss
///   end-to-end (requester-side timeout and re-issue).
pub trait TransportBackend: std::fmt::Debug + Sync {
    /// Short human-readable name (table labels: `"sts"`, `"norma"`,
    /// `"rdma"`).
    fn name(&self) -> &'static str;

    /// Statistics key counting messages sent on this backend.
    fn stat_key(&self) -> &'static str;

    /// Statistics key counting page-carrying messages on this backend.
    fn page_stat_key(&self) -> &'static str;

    /// Cost envelope for a message with `payload_bytes` of payload (0 for
    /// a header-only message, one page size for a page carrier).
    fn costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts;

    /// Whether several protocol messages may share one wire frame on this
    /// backend (see [`Transport::send_coalesced`]).
    fn supports_coalescing(&self) -> bool {
        true
    }

    /// Whether protocol traffic on this backend rides the software
    /// per-link ARQ channel when a fault plan is active. Backends whose
    /// reliability lives in the fabric return `false`: the fault seam
    /// still applies (end-to-end failures exist), but recovery is the
    /// requester's watchdog, not per-frame retransmission.
    fn per_link_arq(&self) -> bool {
        true
    }

    /// Whether remote page reads can be posted as one-sided pulls that
    /// bypass the target's event handler entirely.
    fn one_sided_reads(&self) -> bool {
        false
    }

    /// Cost envelope for posting a one-sided read request (header-only;
    /// the target's NIC serves it, so receiver CPU must be zero).
    fn one_sided_read_costs(&self, cost: &CostModel) -> MsgCosts {
        let _ = cost;
        unimplemented!("backend does not support one-sided reads")
    }

    /// Cost envelope for a one-sided read completion carrying
    /// `payload_bytes` back: the target's NIC DMAs the data out (zero
    /// sender CPU); the requester pays completion handling on arrival.
    fn one_sided_reply_costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        let _ = (cost, payload_bytes);
        unimplemented!("backend does not support one-sided reads")
    }

    /// One-time CPU charged at a node the first time it sends to a given
    /// peer (connection setup, memory registration). Zero for the
    /// connectionless Paragon transports.
    fn link_setup_cpu(&self, cost: &CostModel) -> Dur {
        let _ = cost;
        Dur::ZERO
    }
}

/// Mach NORMA-IPC: heavyweight, typed, port-based.
#[derive(Debug)]
pub struct NormaIpc;

impl TransportBackend for NormaIpc {
    fn name(&self) -> &'static str {
        "norma"
    }

    fn stat_key(&self) -> &'static str {
        "norma.messages"
    }

    fn page_stat_key(&self) -> &'static str {
        "norma.page_messages"
    }

    fn costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        // Typed in-line data adds per-byte marshalling work on both
        // sides in addition to the fixed port/translation overhead.
        let marshal = Dur::from_nanos(payload_bytes as u64 * 12);
        MsgCosts {
            send_cpu: cost.norma_send_cpu + marshal,
            recv_cpu: cost.norma_recv_cpu + marshal,
            bytes: cost.norma_header_bytes + payload_bytes,
            extra_latency: Dur::ZERO,
        }
    }
}

/// The SVM Transport Service: fixed 32-byte untyped header, dedicated
/// message co-processor, preallocated receive buffers.
#[derive(Debug)]
pub struct Sts;

impl TransportBackend for Sts {
    fn name(&self) -> &'static str {
        "sts"
    }

    fn stat_key(&self) -> &'static str {
        "sts.messages"
    }

    fn page_stat_key(&self) -> &'static str {
        "sts.page_messages"
    }

    fn costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        // Preallocated receive buffers: pages land directly where
        // they belong, so payload adds wire time but almost no CPU.
        let touch = Dur::from_nanos(payload_bytes as u64 * 2);
        MsgCosts {
            send_cpu: cost.sts_send_cpu,
            recv_cpu: cost.sts_recv_cpu + touch,
            bytes: cost.sts_header_bytes + payload_bytes,
            extra_latency: Dur::ZERO,
        }
    }
}

/// A modern one-sided interconnect (RDMA-style RNIC).
///
/// The data plane is the star: a remote page read is served entirely by
/// the target's NIC out of pre-registered memory — zero receiver CPU
/// occupancy, so a hot read-shared page never serializes on its owner's
/// event handler. The control plane is ordinary two-sided sends with an
/// interrupt-driven completion path (no STS-style message co-processor):
/// slightly costlier per message than STS, not coalescable, and every
/// message pays the RNIC's latency floor in flight. Reliability lives in
/// the fabric (hardware retransmission on connected queue pairs), so the
/// backend opts out of the software ARQ layer; the only software-visible
/// failures are one-sided read completions, recovered by the requester's
/// watchdog re-issue.
#[derive(Debug)]
pub struct Rdma;

impl TransportBackend for Rdma {
    fn name(&self) -> &'static str {
        "rdma"
    }

    fn stat_key(&self) -> &'static str {
        "rdma.messages"
    }

    fn page_stat_key(&self) -> &'static str {
        "rdma.page_messages"
    }

    fn costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        // Two-sided control path: payload DMAs into a registered buffer
        // (no per-byte marshalling), but each message takes the
        // interrupt-driven completion path and the fabric latency floor.
        let touch = Dur::from_nanos(payload_bytes as u64 * 2);
        MsgCosts {
            send_cpu: cost.rdma_ctrl_send_cpu,
            recv_cpu: cost.rdma_ctrl_recv_cpu + touch,
            bytes: cost.rdma_header_bytes + payload_bytes,
            extra_latency: cost.rdma_latency_floor,
        }
    }

    fn supports_coalescing(&self) -> bool {
        // Each verb is its own work request; there is no shared frame to
        // amortize into.
        false
    }

    fn per_link_arq(&self) -> bool {
        // Hardware retransmission on connected queue pairs: the software
        // ARQ layer (sequence numbers, acks, backoff CPU) would model
        // cost that the fabric does not charge.
        false
    }

    fn one_sided_reads(&self) -> bool {
        true
    }

    fn one_sided_read_costs(&self, cost: &CostModel) -> MsgCosts {
        MsgCosts {
            send_cpu: cost.rdma_post_cpu,
            // Served by the target's NIC: its host never runs.
            recv_cpu: Dur::ZERO,
            bytes: cost.rdma_header_bytes,
            extra_latency: cost.rdma_latency_floor,
        }
    }

    fn one_sided_reply_costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        MsgCosts {
            // The NIC DMAs the page out of registered memory.
            send_cpu: Dur::ZERO,
            recv_cpu: cost.rdma_completion_cpu,
            bytes: cost.rdma_header_bytes + payload_bytes,
            extra_latency: cost.rdma_latency_floor,
        }
    }

    fn link_setup_cpu(&self, cost: &CostModel) -> Dur {
        cost.rdma_link_setup_cpu
    }
}

static NORMA_BACKEND: NormaIpc = NormaIpc;
static STS_BACKEND: Sts = Sts;
static RDMA_BACKEND: Rdma = Rdma;

/// A configured transport endpoint: a `Copy` handle to a
/// [`TransportBackend`] plus the uniform send paths (reliable, tagged,
/// lossy, coalesced, one-sided) every protocol layer goes through.
#[derive(Clone, Copy)]
pub struct Transport {
    backend: &'static dyn TransportBackend,
}

impl std::fmt::Debug for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transport")
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl Transport {
    /// The NORMA-IPC transport.
    pub const NORMA: Transport = Transport {
        backend: &NORMA_BACKEND,
    };

    /// The STS transport.
    pub const STS: Transport = Transport {
        backend: &STS_BACKEND,
    };

    /// The one-sided RDMA transport.
    pub const RDMA: Transport = Transport {
        backend: &RDMA_BACKEND,
    };

    /// The backend carrying this transport's messages.
    pub fn backend(&self) -> &'static dyn TransportBackend {
        self.backend
    }

    /// Short backend name (table labels).
    pub fn name(&self) -> &'static str {
        self.backend.name()
    }

    /// Statistics key counting messages sent on this transport.
    pub fn stat_key(&self) -> &'static str {
        self.backend.stat_key()
    }

    /// Statistics key counting page-carrying messages on this transport.
    pub fn page_stat_key(&self) -> &'static str {
        self.backend.page_stat_key()
    }

    /// Whether several protocol messages may share one wire frame.
    pub fn supports_coalescing(&self) -> bool {
        self.backend.supports_coalescing()
    }

    /// Whether protocol traffic rides the software per-link ARQ channel
    /// under an active fault plan (see `docs/RELIABILITY.md`).
    pub fn per_link_arq(&self) -> bool {
        self.backend.per_link_arq()
    }

    /// Whether remote page reads can be posted as one-sided pulls.
    pub fn one_sided_reads(&self) -> bool {
        self.backend.one_sided_reads()
    }

    /// One-time CPU for first contact with a peer (setup/registration).
    pub fn link_setup_cpu(&self, cost: &CostModel) -> Dur {
        self.backend.link_setup_cpu(cost)
    }

    /// Cost envelope for a node-local (loopback) message: a kernel-internal
    /// hand-off that skips the wire and the protocol stack.
    pub fn local_costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        MsgCosts {
            send_cpu: cost.local_ipc_cpu,
            recv_cpu: cost.local_ipc_cpu,
            bytes: payload_bytes,
            extra_latency: Dur::ZERO,
        }
    }

    /// Computes the cost envelope for a message with `payload_bytes` of
    /// payload (0 for a header-only message, one page size for a page
    /// carrier).
    pub fn costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        self.backend.costs(cost, payload_bytes)
    }

    /// Cost envelope for a *coalesced* frame carrying `subframes` protocol
    /// messages and `payload_bytes` of total payload in one wire message.
    ///
    /// The frame pays one fixed header and one full per-message CPU charge
    /// (exactly [`Transport::costs`] for the first subframe); every
    /// additional subframe adds only the amortized software overhead of
    /// demultiplexing it out of the shared buffer (`sts_subframe_cpu` per
    /// side) plus a small framing tag on the wire (`sts_subframe_bytes`).
    /// This models STS's preallocated receive buffers: the expensive part
    /// of a small message is per-*frame* interrupt and buffer handling,
    /// not per-*subframe* parsing. With `subframes <= 1` this is identical
    /// to [`Transport::costs`], so an empty coalescing layer charges
    /// nothing extra.
    ///
    /// NORMA keeps its per-byte marshalling for the whole payload — typed
    /// in-line data gains nothing from sharing an envelope — so coalescing
    /// only ever pays off on STS, which is the point of the ablation.
    pub fn coalesced_costs(
        &self,
        cost: &CostModel,
        subframes: u32,
        payload_bytes: u32,
    ) -> MsgCosts {
        let base = self.backend.costs(cost, payload_bytes);
        let extra = subframes.saturating_sub(1);
        if extra == 0 {
            return base;
        }
        debug_assert!(
            self.backend.supports_coalescing(),
            "coalesced frame on a non-coalescing backend"
        );
        let demux = Dur::from_nanos(cost.sts_subframe_cpu.as_nanos() * extra as u64);
        MsgCosts {
            send_cpu: base.send_cpu + demux,
            recv_cpu: base.recv_cpu + demux,
            bytes: base.bytes + cost.sts_subframe_bytes * extra,
            extra_latency: base.extra_latency,
        }
    }

    /// Bumps the per-transport message statistic (and the page-carrier
    /// statistic when the message has payload) — the accounting every send
    /// path shares.
    fn bump_transport_stats<M>(&self, ctx: &mut Ctx<'_, M>, payload_bytes: u32) {
        ctx.stats().bump(self.backend.stat_key());
        if payload_bytes > 0 {
            ctx.stats().bump(self.backend.page_stat_key());
        }
    }

    /// Sends a coalesced frame of `subframes` protocol messages to `dst`
    /// over the reliable path, charging [`Transport::coalesced_costs`] and
    /// one per-transport frame statistic (a coalesced frame is *one* wire
    /// message).
    pub fn send_coalesced<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        subframes: u32,
        payload_bytes: u32,
        msg: M,
    ) {
        let costs = if dst == ctx.me() {
            self.local_costs(&ctx.machine().config.cost, payload_bytes)
        } else {
            self.coalesced_costs(&ctx.machine().config.cost, subframes, payload_bytes)
        };
        self.bump_transport_stats(ctx, payload_bytes);
        ctx.send(dst, costs, msg);
    }

    /// [`Transport::send_coalesced`] through the fault-injection layer:
    /// the whole frame is one unit of loss/duplication/delay — subframes
    /// share its fate, which is what lets the ARQ layer sequence a
    /// coalesced frame exactly like a singleton one.
    pub fn send_coalesced_lossy<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        subframes: u32,
        payload_bytes: u32,
        mut make: impl FnMut() -> M,
    ) {
        if dst == ctx.me() || !ctx.machine().config.faults.is_active() {
            self.send_coalesced(ctx, dst, subframes, payload_bytes, make());
            return;
        }
        let decision = ctx.fault_decision(dst);
        self.bump_transport_stats(ctx, payload_bytes);
        let costs = self.coalesced_costs(&ctx.machine().config.cost, subframes, payload_bytes);
        self.apply_fault_decision(ctx, dst, costs, decision, make);
    }

    /// Sends `msg` to `dst` through this transport, charging costs and
    /// per-transport statistics. Node-local destinations take the loopback
    /// fast path.
    pub fn send<M>(&self, ctx: &mut Ctx<'_, M>, dst: NodeId, payload_bytes: u32, msg: M) {
        let costs = if dst == ctx.me() {
            self.local_costs(&ctx.machine().config.cost, payload_bytes)
        } else {
            self.costs(&ctx.machine().config.cost, payload_bytes)
        };
        self.bump_transport_stats(ctx, payload_bytes);
        ctx.send(dst, costs, msg);
    }

    /// [`Transport::send`] with an additional per-message-kind counter:
    /// `kind` is an interned statistics key (e.g. `asvm.msg.grant`,
    /// `emmi.req.data_request`) bumped alongside the per-transport totals.
    /// The effect interpreter in the cluster layer tags every protocol and
    /// pager send so reports can break traffic down by message kind.
    pub fn send_tagged<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        payload_bytes: u32,
        kind: &'static str,
        msg: M,
    ) {
        ctx.stats().bump(kind);
        self.send(ctx, dst, payload_bytes, msg);
    }

    /// [`Transport::send_tagged`] through the fault-injection layer: the
    /// machine's [`FaultPlan`] decides whether this message is delivered,
    /// dropped, duplicated or delayed, bumping the matching
    /// `transport.fault.*` counter.
    ///
    /// `make` builds the message — a builder rather than a value because
    /// duplication needs a second copy and the cluster's message enum is
    /// not `Clone`. It is called once for delivery, twice for duplication,
    /// and not at all for drops.
    ///
    /// Node-local sends and inactive plans take the reliable path
    /// unchanged (and consume no fault randomness), so a `FaultPlan::none`
    /// run is byte-identical to one using [`Transport::send_tagged`].
    pub fn send_lossy<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        payload_bytes: u32,
        kind: &'static str,
        mut make: impl FnMut() -> M,
    ) {
        if dst == ctx.me() || !ctx.machine().config.faults.is_active() {
            self.send_tagged(ctx, dst, payload_bytes, kind, make());
            return;
        }
        let decision = ctx.fault_decision(dst);
        // The logical send happened regardless of its fate on the wire:
        // count it exactly as send_tagged/send would.
        ctx.stats().bump(kind);
        self.bump_transport_stats(ctx, payload_bytes);
        let costs = self.costs(&ctx.machine().config.cost, payload_bytes);
        self.apply_fault_decision(ctx, dst, costs, decision, make);
    }

    /// Posts a one-sided read request to `dst` through the fault seam:
    /// header-only, zero receiver CPU (the target's NIC serves it), and
    /// counted under both `kind` and `transport.rdma.read`. Drops are
    /// *not* retransmitted by any link layer — the requester's watchdog
    /// re-issues the stalled request end-to-end.
    pub fn send_one_sided<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        kind: &'static str,
        mut make: impl FnMut() -> M,
    ) {
        debug_assert!(self.backend.one_sided_reads());
        debug_assert!(dst != ctx.me(), "loopback reads never leave the node");
        let costs = self
            .backend
            .one_sided_read_costs(&ctx.machine().config.cost);
        ctx.stats().bump(kind);
        ctx.stats().bump("transport.rdma.read");
        self.bump_transport_stats(ctx, 0);
        if !ctx.machine().config.faults.is_active() {
            ctx.send(dst, costs, make());
            return;
        }
        let decision = ctx.fault_decision(dst);
        self.apply_fault_decision(ctx, dst, costs, decision, make);
    }

    /// Sends a one-sided read completion carrying `payload_bytes` back to
    /// the requester: the target's NIC DMAs it out (zero sender CPU); the
    /// requester pays completion handling on arrival. Travels the same
    /// fault seam as the request — a lost completion is recovered by the
    /// requester's watchdog, not by retransmission.
    pub fn send_one_sided_reply<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        payload_bytes: u32,
        kind: &'static str,
        mut make: impl FnMut() -> M,
    ) {
        debug_assert!(self.backend.one_sided_reads());
        let costs = self
            .backend
            .one_sided_reply_costs(&ctx.machine().config.cost, payload_bytes);
        ctx.stats().bump(kind);
        self.bump_transport_stats(ctx, payload_bytes);
        if dst == ctx.me() || !ctx.machine().config.faults.is_active() {
            ctx.send(dst, costs, make());
            return;
        }
        let decision = ctx.fault_decision(dst);
        self.apply_fault_decision(ctx, dst, costs, decision, make);
    }

    /// Applies one sampled [`FaultDecision`] to a message whose logical
    /// statistics have already been counted: delivery, drop (send-side
    /// charge only), duplication, or delay — bumping the matching
    /// `transport.fault.*` counter.
    fn apply_fault_decision<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        costs: MsgCosts,
        decision: FaultDecision,
        mut make: impl FnMut() -> M,
    ) {
        match decision {
            FaultDecision::Deliver => ctx.send(dst, costs, make()),
            FaultDecision::Drop(cause) => {
                ctx.stats().bump(match cause {
                    FaultCause::Loss => "transport.fault.dropped",
                    FaultCause::Blackout => "transport.fault.blackout",
                });
                ctx.charge_send_only(costs);
            }
            FaultDecision::Duplicate { extra } => {
                ctx.stats().bump("transport.fault.duplicated");
                ctx.send(dst, costs, make());
                ctx.send_delayed(dst, costs, extra, make());
            }
            FaultDecision::Delay { extra } => {
                ctx.stats().bump("transport.fault.delayed");
                ctx.send_delayed(dst, costs, extra, make());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn norma_is_an_order_of_magnitude_heavier() {
        let c = cost();
        let n = Transport::NORMA.costs(&c, 0);
        let s = Transport::STS.costs(&c, 0);
        let n_cpu = n.send_cpu + n.recv_cpu;
        let s_cpu = s.send_cpu + s.recv_cpu;
        assert!(
            n_cpu.as_nanos() >= 8 * s_cpu.as_nanos(),
            "NORMA {n_cpu} should dwarf STS {s_cpu}"
        );
    }

    #[test]
    fn sts_header_is_32_bytes() {
        let c = cost();
        assert_eq!(Transport::STS.costs(&c, 0).bytes, 32);
        assert_eq!(Transport::STS.costs(&c, 8192).bytes, 32 + 8192);
    }

    #[test]
    fn payload_increases_costs_monotonically() {
        let c = cost();
        for t in [Transport::NORMA, Transport::STS, Transport::RDMA] {
            let small = t.costs(&c, 0);
            let big = t.costs(&c, 8192);
            assert!(big.bytes > small.bytes);
            assert!(big.recv_cpu >= small.recv_cpu);
            assert!(big.send_cpu >= small.send_cpu);
        }
    }

    #[test]
    fn one_subframe_coalesces_to_plain_costs() {
        let c = cost();
        for t in [Transport::STS, Transport::NORMA] {
            for payload in [0u32, 8192] {
                let plain = t.costs(&c, payload);
                let co = t.coalesced_costs(&c, 1, payload);
                assert_eq!(
                    (co.send_cpu, co.recv_cpu, co.bytes),
                    (plain.send_cpu, plain.recv_cpu, plain.bytes)
                );
            }
        }
    }

    #[test]
    fn coalesced_frame_beats_separate_sends() {
        // k header-only messages in one frame: one fixed header, one full
        // CPU charge, and k-1 cheap demultiplexes — strictly cheaper than
        // k independent frames on every axis.
        let c = cost();
        let k = 6u32;
        let co = Transport::STS.coalesced_costs(&c, k, 0);
        let single = Transport::STS.costs(&c, 0);
        let separate_cpu =
            Dur::from_nanos((single.send_cpu + single.recv_cpu).as_nanos() * k as u64);
        let co_cpu = co.send_cpu + co.recv_cpu;
        assert!(
            co_cpu < separate_cpu,
            "coalesced {co_cpu} vs separate {separate_cpu}"
        );
        assert!(co.bytes < single.bytes * k, "one header, not {k}");
        // The header really is charged once: only small per-subframe tags
        // beyond it.
        assert_eq!(
            co.bytes,
            c.sts_header_bytes + c.sts_subframe_bytes * (k - 1)
        );
    }

    #[test]
    fn sts_page_cpu_overhead_stays_small() {
        // The whole point of STS: moving a page costs wire time, not CPU.
        let c = cost();
        let hdr = Transport::STS.costs(&c, 0);
        let page = Transport::STS.costs(&c, 8192);
        let extra = (page.recv_cpu - hdr.recv_cpu) + (page.send_cpu - hdr.send_cpu);
        assert!(extra < Dur::from_micros(50), "extra CPU {extra} too high");
    }

    #[test]
    fn backend_stat_keys_are_distinct() {
        let keys = [
            Transport::NORMA.stat_key(),
            Transport::STS.stat_key(),
            Transport::RDMA.stat_key(),
        ];
        let pages = [
            Transport::NORMA.page_stat_key(),
            Transport::STS.page_stat_key(),
            Transport::RDMA.page_stat_key(),
        ];
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_ne!(keys[i], keys[j]);
                assert_ne!(pages[i], pages[j]);
            }
        }
        assert_eq!(Transport::RDMA.stat_key(), "rdma.messages");
        assert_eq!(Transport::RDMA.name(), "rdma");
    }

    #[test]
    fn classic_backends_have_no_latency_floor() {
        // Behavior preservation: the trait refactor must not move a single
        // arrival time for STS/NORMA traffic.
        let c = cost();
        for t in [Transport::NORMA, Transport::STS] {
            for payload in [0u32, 8192] {
                assert!(t.costs(&c, payload).extra_latency.is_zero());
                assert!(t.coalesced_costs(&c, 5, payload).extra_latency.is_zero());
            }
        }
    }

    #[test]
    fn one_sided_read_occupies_no_receiver_cpu() {
        let c = cost();
        let req = Transport::RDMA.backend().one_sided_read_costs(&c);
        assert!(req.recv_cpu.is_zero(), "NIC-served: target host never runs");
        assert!(req.send_cpu > Dur::ZERO, "posting the WQE is not free");
        assert_eq!(req.bytes, c.rdma_header_bytes);
        let reply = Transport::RDMA.backend().one_sided_reply_costs(&c, 8192);
        assert!(reply.send_cpu.is_zero(), "NIC DMAs the page out");
        assert!(reply.recv_cpu > Dur::ZERO, "requester reaps the completion");
        assert_eq!(reply.bytes, c.rdma_header_bytes + 8192);
        // Both directions pay the fabric's latency floor.
        assert_eq!(req.extra_latency, c.rdma_latency_floor);
        assert_eq!(reply.extra_latency, c.rdma_latency_floor);
    }

    #[test]
    fn rdma_capability_flags() {
        assert!(!Transport::RDMA.supports_coalescing());
        assert!(!Transport::RDMA.per_link_arq());
        assert!(Transport::RDMA.one_sided_reads());
        assert!(Transport::RDMA.link_setup_cpu(&cost()) > Dur::ZERO);
        for t in [Transport::NORMA, Transport::STS] {
            assert!(t.supports_coalescing());
            assert!(t.per_link_arq());
            assert!(!t.one_sided_reads());
            assert!(t.link_setup_cpu(&cost()).is_zero());
        }
    }

    #[test]
    fn rdma_control_path_sits_between_sts_and_norma() {
        // The control plane has no message co-processor: costlier than
        // STS per message, still far below NORMA's typed-IPC stack.
        let c = cost();
        let cpu = |m: MsgCosts| m.send_cpu + m.recv_cpu;
        let r = cpu(Transport::RDMA.costs(&c, 0));
        let s = cpu(Transport::STS.costs(&c, 0));
        let n = cpu(Transport::NORMA.costs(&c, 0));
        assert!(r > s, "rdma ctrl {r} should exceed sts {s}");
        assert!(
            r.as_nanos() * 4 < n.as_nanos(),
            "rdma ctrl {r} far below norma {n}"
        );
    }
}
