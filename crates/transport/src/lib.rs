//! Transport services for cross-node communication.
//!
//! The paper contrasts two transports (§3.1):
//!
//! * **NORMA-IPC** — Mach's distributed IPC. Every message pays for port
//!   right translation, typed message construction and parsing, and a large
//!   envelope. On the Paragon, NORMA-IPC accounted for *"about 90 percent of
//!   the latency involved in resolving remote page faults for memory that is
//!   shared through XMM"*. XMM's XMMI protocol rides on it, as does all
//!   kernel-to-pager EMMI traffic.
//! * **STS** — the dedicated SVM Transport Service built for ASVM. Messages
//!   are a fixed 32-byte block of untyped data, optionally followed by one
//!   VM page; receive buffers are preallocated because page contents only
//!   ever move in response to a request. The result is roughly an order of
//!   magnitude less software overhead per message.
//!
//! A transport turns "send this many payload bytes to that node" into a
//! [`MsgCosts`] envelope (sender CPU, receiver CPU, wire bytes) evaluated
//! against the machine's [`CostModel`]. The protocol crates never hard-code
//! costs; they pick a transport, which keeps the transport-swap ablation
//! (`ablation_transport`) honest.
//!
//! # Fault injection
//!
//! [`Transport::send`] and [`Transport::send_tagged`] model a perfectly
//! reliable interconnect. The *fault-exposed* path,
//! [`Transport::send_lossy`], additionally consults the machine's
//! [`FaultPlan`] (carried by `MachineConfig`, re-exported here): per-link
//! drop/duplicate/delay sampling plus scripted node blackouts, each
//! counted under `transport.fault.*`. The ASVM protocol opts into this
//! path through its retry channel (see `docs/RELIABILITY.md`); NORMA-IPC
//! traffic stays on the reliable path, modelling Mach's kernel-to-kernel
//! IPC guarantees.
//!
//! Constructing a plan is pure configuration — no cluster required:
//!
//! ```
//! use transport::FaultPlan;
//! use svmsim::{Dur, MachineConfig};
//!
//! let mut cfg = MachineConfig::paragon(4);
//! cfg.faults = FaultPlan::seeded(1996)
//!     .with_drop_ppm(10_000) // 1 % loss
//!     .with_delay(5_000, Dur::from_millis(2));
//! assert!(cfg.faults.is_active());
//! ```

use svmsim::{CostModel, Ctx, Dur, FaultCause, FaultDecision, MsgCosts, NodeId};

pub use svmsim::{Blackout, FaultPlan, LinkFaults};

/// Which transport carries a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransportKind {
    /// Mach NORMA-IPC: heavyweight, typed, port-based.
    NormaIpc,
    /// The SVM Transport Service: fixed 32-byte untyped header.
    Sts,
}

/// A configured transport endpoint (stateless; cheap to copy).
#[derive(Clone, Copy, Debug)]
pub struct Transport {
    kind: TransportKind,
}

impl Transport {
    /// The NORMA-IPC transport.
    pub const NORMA: Transport = Transport {
        kind: TransportKind::NormaIpc,
    };

    /// The STS transport.
    pub const STS: Transport = Transport {
        kind: TransportKind::Sts,
    };

    /// The kind of this transport.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Statistics key counting messages sent on this transport.
    pub fn stat_key(&self) -> &'static str {
        match self.kind {
            TransportKind::NormaIpc => "norma.messages",
            TransportKind::Sts => "sts.messages",
        }
    }

    /// Cost envelope for a node-local (loopback) message: a kernel-internal
    /// hand-off that skips the wire and the protocol stack.
    pub fn local_costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        MsgCosts {
            send_cpu: cost.local_ipc_cpu,
            recv_cpu: cost.local_ipc_cpu,
            bytes: payload_bytes,
        }
    }

    /// Computes the cost envelope for a message with `payload_bytes` of
    /// payload (0 for a header-only message, one page size for a page
    /// carrier).
    pub fn costs(&self, cost: &CostModel, payload_bytes: u32) -> MsgCosts {
        match self.kind {
            TransportKind::NormaIpc => {
                // Typed in-line data adds per-byte marshalling work on both
                // sides in addition to the fixed port/translation overhead.
                let marshal = Dur::from_nanos(payload_bytes as u64 * 12);
                MsgCosts {
                    send_cpu: cost.norma_send_cpu + marshal,
                    recv_cpu: cost.norma_recv_cpu + marshal,
                    bytes: cost.norma_header_bytes + payload_bytes,
                }
            }
            TransportKind::Sts => {
                // Preallocated receive buffers: pages land directly where
                // they belong, so payload adds wire time but almost no CPU.
                let touch = Dur::from_nanos(payload_bytes as u64 * 2);
                MsgCosts {
                    send_cpu: cost.sts_send_cpu,
                    recv_cpu: cost.sts_recv_cpu + touch,
                    bytes: cost.sts_header_bytes + payload_bytes,
                }
            }
        }
    }

    /// Cost envelope for a *coalesced* frame carrying `subframes` protocol
    /// messages and `payload_bytes` of total payload in one wire message.
    ///
    /// The frame pays one fixed header and one full per-message CPU charge
    /// (exactly [`Transport::costs`] for the first subframe); every
    /// additional subframe adds only the amortized software overhead of
    /// demultiplexing it out of the shared buffer (`sts_subframe_cpu` per
    /// side) plus a small framing tag on the wire (`sts_subframe_bytes`).
    /// This models STS's preallocated receive buffers: the expensive part
    /// of a small message is per-*frame* interrupt and buffer handling,
    /// not per-*subframe* parsing. With `subframes <= 1` this is identical
    /// to [`Transport::costs`], so an empty coalescing layer charges
    /// nothing extra.
    ///
    /// NORMA keeps its per-byte marshalling for the whole payload — typed
    /// in-line data gains nothing from sharing an envelope — so coalescing
    /// only ever pays off on STS, which is the point of the ablation.
    pub fn coalesced_costs(
        &self,
        cost: &CostModel,
        subframes: u32,
        payload_bytes: u32,
    ) -> MsgCosts {
        let base = self.costs(cost, payload_bytes);
        let extra = subframes.saturating_sub(1);
        if extra == 0 {
            return base;
        }
        let demux = Dur::from_nanos(cost.sts_subframe_cpu.as_nanos() * extra as u64);
        MsgCosts {
            send_cpu: base.send_cpu + demux,
            recv_cpu: base.recv_cpu + demux,
            bytes: base.bytes + cost.sts_subframe_bytes * extra,
        }
    }

    /// Sends a coalesced frame of `subframes` protocol messages to `dst`
    /// over the reliable path, charging [`Transport::coalesced_costs`] and
    /// one per-transport frame statistic (a coalesced frame is *one* wire
    /// message).
    pub fn send_coalesced<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        subframes: u32,
        payload_bytes: u32,
        msg: M,
    ) {
        let costs = if dst == ctx.me() {
            self.local_costs(&ctx.machine().config.cost, payload_bytes)
        } else {
            self.coalesced_costs(&ctx.machine().config.cost, subframes, payload_bytes)
        };
        ctx.stats().bump(self.stat_key());
        if payload_bytes > 0 {
            ctx.stats().bump(match self.kind {
                TransportKind::NormaIpc => "norma.page_messages",
                TransportKind::Sts => "sts.page_messages",
            });
        }
        ctx.send(dst, costs, msg);
    }

    /// [`Transport::send_coalesced`] through the fault-injection layer:
    /// the whole frame is one unit of loss/duplication/delay — subframes
    /// share its fate, which is what lets the ARQ layer sequence a
    /// coalesced frame exactly like a singleton one.
    pub fn send_coalesced_lossy<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        subframes: u32,
        payload_bytes: u32,
        mut make: impl FnMut() -> M,
    ) {
        if dst == ctx.me() || !ctx.machine().config.faults.is_active() {
            self.send_coalesced(ctx, dst, subframes, payload_bytes, make());
            return;
        }
        let decision = ctx.fault_decision(dst);
        ctx.stats().bump(self.stat_key());
        if payload_bytes > 0 {
            ctx.stats().bump(match self.kind {
                TransportKind::NormaIpc => "norma.page_messages",
                TransportKind::Sts => "sts.page_messages",
            });
        }
        let costs = self.coalesced_costs(&ctx.machine().config.cost, subframes, payload_bytes);
        match decision {
            FaultDecision::Deliver => ctx.send(dst, costs, make()),
            FaultDecision::Drop(cause) => {
                ctx.stats().bump(match cause {
                    FaultCause::Loss => "transport.fault.dropped",
                    FaultCause::Blackout => "transport.fault.blackout",
                });
                ctx.charge_send_only(costs);
            }
            FaultDecision::Duplicate { extra } => {
                ctx.stats().bump("transport.fault.duplicated");
                ctx.send(dst, costs, make());
                ctx.send_delayed(dst, costs, extra, make());
            }
            FaultDecision::Delay { extra } => {
                ctx.stats().bump("transport.fault.delayed");
                ctx.send_delayed(dst, costs, extra, make());
            }
        }
    }

    /// Sends `msg` to `dst` through this transport, charging costs and
    /// per-transport statistics. Node-local destinations take the loopback
    /// fast path.
    pub fn send<M>(&self, ctx: &mut Ctx<'_, M>, dst: NodeId, payload_bytes: u32, msg: M) {
        let costs = if dst == ctx.me() {
            self.local_costs(&ctx.machine().config.cost, payload_bytes)
        } else {
            self.costs(&ctx.machine().config.cost, payload_bytes)
        };
        ctx.stats().bump(self.stat_key());
        if payload_bytes > 0 {
            ctx.stats().bump(match self.kind {
                TransportKind::NormaIpc => "norma.page_messages",
                TransportKind::Sts => "sts.page_messages",
            });
        }
        ctx.send(dst, costs, msg);
    }

    /// [`Transport::send`] with an additional per-message-kind counter:
    /// `kind` is an interned statistics key (e.g. `asvm.msg.grant`,
    /// `emmi.req.data_request`) bumped alongside the per-transport totals.
    /// The effect interpreter in the cluster layer tags every protocol and
    /// pager send so reports can break traffic down by message kind.
    pub fn send_tagged<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        payload_bytes: u32,
        kind: &'static str,
        msg: M,
    ) {
        ctx.stats().bump(kind);
        self.send(ctx, dst, payload_bytes, msg);
    }

    /// [`Transport::send_tagged`] through the fault-injection layer: the
    /// machine's [`FaultPlan`] decides whether this message is delivered,
    /// dropped, duplicated or delayed, bumping the matching
    /// `transport.fault.*` counter.
    ///
    /// `make` builds the message — a builder rather than a value because
    /// duplication needs a second copy and the cluster's message enum is
    /// not `Clone`. It is called once for delivery, twice for duplication,
    /// and not at all for drops.
    ///
    /// Node-local sends and inactive plans take the reliable path
    /// unchanged (and consume no fault randomness), so a `FaultPlan::none`
    /// run is byte-identical to one using [`Transport::send_tagged`].
    pub fn send_lossy<M>(
        &self,
        ctx: &mut Ctx<'_, M>,
        dst: NodeId,
        payload_bytes: u32,
        kind: &'static str,
        mut make: impl FnMut() -> M,
    ) {
        if dst == ctx.me() || !ctx.machine().config.faults.is_active() {
            self.send_tagged(ctx, dst, payload_bytes, kind, make());
            return;
        }
        let decision = ctx.fault_decision(dst);
        // The logical send happened regardless of its fate on the wire:
        // count it exactly as send_tagged/send would.
        ctx.stats().bump(kind);
        ctx.stats().bump(self.stat_key());
        if payload_bytes > 0 {
            ctx.stats().bump(match self.kind {
                TransportKind::NormaIpc => "norma.page_messages",
                TransportKind::Sts => "sts.page_messages",
            });
        }
        let costs = self.costs(&ctx.machine().config.cost, payload_bytes);
        match decision {
            FaultDecision::Deliver => ctx.send(dst, costs, make()),
            FaultDecision::Drop(cause) => {
                ctx.stats().bump(match cause {
                    FaultCause::Loss => "transport.fault.dropped",
                    FaultCause::Blackout => "transport.fault.blackout",
                });
                ctx.charge_send_only(costs);
            }
            FaultDecision::Duplicate { extra } => {
                ctx.stats().bump("transport.fault.duplicated");
                ctx.send(dst, costs, make());
                ctx.send_delayed(dst, costs, extra, make());
            }
            FaultDecision::Delay { extra } => {
                ctx.stats().bump("transport.fault.delayed");
                ctx.send_delayed(dst, costs, extra, make());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn norma_is_an_order_of_magnitude_heavier() {
        let c = cost();
        let n = Transport::NORMA.costs(&c, 0);
        let s = Transport::STS.costs(&c, 0);
        let n_cpu = n.send_cpu + n.recv_cpu;
        let s_cpu = s.send_cpu + s.recv_cpu;
        assert!(
            n_cpu.as_nanos() >= 8 * s_cpu.as_nanos(),
            "NORMA {n_cpu} should dwarf STS {s_cpu}"
        );
    }

    #[test]
    fn sts_header_is_32_bytes() {
        let c = cost();
        assert_eq!(Transport::STS.costs(&c, 0).bytes, 32);
        assert_eq!(Transport::STS.costs(&c, 8192).bytes, 32 + 8192);
    }

    #[test]
    fn payload_increases_costs_monotonically() {
        let c = cost();
        for t in [Transport::NORMA, Transport::STS] {
            let small = t.costs(&c, 0);
            let big = t.costs(&c, 8192);
            assert!(big.bytes > small.bytes);
            assert!(big.recv_cpu >= small.recv_cpu);
            assert!(big.send_cpu >= small.send_cpu);
        }
    }

    #[test]
    fn one_subframe_coalesces_to_plain_costs() {
        let c = cost();
        for t in [Transport::STS, Transport::NORMA] {
            for payload in [0u32, 8192] {
                let plain = t.costs(&c, payload);
                let co = t.coalesced_costs(&c, 1, payload);
                assert_eq!(
                    (co.send_cpu, co.recv_cpu, co.bytes),
                    (plain.send_cpu, plain.recv_cpu, plain.bytes)
                );
            }
        }
    }

    #[test]
    fn coalesced_frame_beats_separate_sends() {
        // k header-only messages in one frame: one fixed header, one full
        // CPU charge, and k-1 cheap demultiplexes — strictly cheaper than
        // k independent frames on every axis.
        let c = cost();
        let k = 6u32;
        let co = Transport::STS.coalesced_costs(&c, k, 0);
        let single = Transport::STS.costs(&c, 0);
        let separate_cpu =
            Dur::from_nanos((single.send_cpu + single.recv_cpu).as_nanos() * k as u64);
        let co_cpu = co.send_cpu + co.recv_cpu;
        assert!(
            co_cpu < separate_cpu,
            "coalesced {co_cpu} vs separate {separate_cpu}"
        );
        assert!(co.bytes < single.bytes * k, "one header, not {k}");
        // The header really is charged once: only small per-subframe tags
        // beyond it.
        assert_eq!(
            co.bytes,
            c.sts_header_bytes + c.sts_subframe_bytes * (k - 1)
        );
    }

    #[test]
    fn sts_page_cpu_overhead_stays_small() {
        // The whole point of STS: moving a page costs wire time, not CPU.
        let c = cost();
        let hdr = Transport::STS.costs(&c, 0);
        let page = Transport::STS.costs(&c, 8192);
        let extra = (page.recv_cpu - hdr.recv_cpu) + (page.send_cpu - hdr.send_cpu);
        assert!(extra < Dur::from_micros(50), "extra CPU {extra} too high");
    }
}
