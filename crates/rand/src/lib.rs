//! Vendored, dependency-free stand-in for the parts of `rand` 0.8 this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! carries its own PRNG. Only the API surface the simulator and the
//! workloads rely on is provided: [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension methods [`Rng::gen`] and [`Rng::gen_range`], and the
//! [`rngs::SmallRng`] / [`rngs::StdRng`] generator types.
//!
//! Both generators are xoshiro256\*\* seeded through SplitMix64 — fast,
//! well-distributed, and (the property everything here actually depends
//! on) **deterministic**: a given seed always produces the same stream,
//! on every platform. The streams differ from the real `rand` crate's;
//! the experiments are calibrated against this implementation.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that [`Rng::gen_range`] can sample uniformly from a half-open
/// range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as u128) - (low as u128);
                low + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = ((high as i128) - (low as i128)) as u128;
                ((low as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value drawn from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value drawn uniformly from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** core state.
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Xoshiro256 {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Xoshiro256 {
                s: [next(), next(), next(), next()],
            }
        }

        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    macro_rules! rng_type {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(state: u64) -> Self {
                    $name(Xoshiro256::from_u64(state))
                }
            }
        };
    }

    rng_type!(
        /// A small, fast generator (stands in for `rand::rngs::SmallRng`).
        SmallRng
    );
    rng_type!(
        /// The default generator (stands in for `rand::rngs::StdRng`).
        StdRng
    );
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let u = r.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_is_roughly_balanced() {
        let mut r = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "heads: {heads}");
    }
}
