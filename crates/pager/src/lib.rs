//! User-level pager tasks.
//!
//! In Mach, memory objects are backed by user-level *pager* tasks that speak
//! EMMI with the kernel: they provide initial page contents and preserve
//! evicted data. This crate implements the two pagers the Paragon OS runs on
//! its I/O nodes:
//!
//! * the **default pager**, backing anonymous memory with paging space on
//!   disk — XMM's dirty-page writeback penalty (Table 1 of the paper) is a
//!   synchronous write into this paging space;
//! * the **file pager**, backing the memory-mapped Unix file system — the
//!   mapped-file experiments of Table 2 read through and write back to it.
//!
//! Both are sans-IO: they consume [`PagerIn`] records and return
//! [`PagerOut`] replies stamped with the time they are ready (after any
//! disk accesses, performed through a caller-provided disk closure). The
//! `cluster` crate runs them on I/O nodes and carries their traffic over
//! NORMA-IPC, as the real system does.

use std::collections::{BTreeMap, BTreeSet};

use machvm::{
    Access, EmmiToKernel, EmmiToPager, LockMode, LockOp, MemObjId, PageData, PageIdx, SupplyMode,
    VmObjId,
};
use svmsim::{DiskOp, NodeId, Time};

/// A request arriving at a pager (an EMMI call from some node's kernel).
#[derive(Clone, Debug)]
pub struct PagerIn {
    /// The kernel that sent the call.
    pub from_node: NodeId,
    /// That kernel's VM object (opaque reply-routing token).
    pub obj: VmObjId,
    /// The memory object addressed (file pager only; the default pager
    /// keys on `(from_node, obj)`).
    pub mobj: MemObjId,
    /// The call itself.
    pub call: EmmiToPager,
}

/// A reply from a pager to some node's kernel.
#[derive(Clone, Debug)]
pub struct PagerOut {
    /// Destination kernel.
    pub to_node: NodeId,
    /// Destination VM object on that kernel.
    pub obj: VmObjId,
    /// Instant at which the reply may leave (after disk accesses).
    pub ready_at: Time,
    /// The EMMI call to deliver.
    pub reply: EmmiToKernel,
}

/// Disk access hook: `(op, byte offset, length) -> completion time`.
pub type DiskFn<'a> = &'a mut dyn FnMut(DiskOp, u64, u32) -> Time;

/// The default pager: backing store for anonymous memory ("paging space").
///
/// Pages are keyed by `(owning node, VM object, page)`. A `data_return`
/// synchronously writes the page into paging space; a later `data_request`
/// supplies it from the pager's buffer (the disk write is the expensive
/// part, matching the behaviour behind the paper's Table 1 note that *"XMM
/// writes a dirty page to the paging space when it is requested for the
/// first time by another node"*).
pub struct DefaultPager {
    page_size: u32,
    disk_base: u64,
    next_slot: u64,
    store: BTreeMap<(NodeId, VmObjId, PageIdx), PageData>,
    slots: BTreeMap<(NodeId, VmObjId, PageIdx), u64>,
    /// Completion time of the last paging-space write per page: a supply
    /// for a just-returned page waits for the write (XMM's first-remote-
    /// request penalty in Table 1 comes from exactly this).
    write_done: BTreeMap<(NodeId, VmObjId, PageIdx), Time>,
}

impl DefaultPager {
    /// Creates a default pager whose paging space starts at `disk_base`.
    pub fn new(page_size: u32, disk_base: u64) -> DefaultPager {
        DefaultPager {
            page_size,
            disk_base,
            next_slot: 0,
            store: BTreeMap::new(),
            slots: BTreeMap::new(),
            write_done: BTreeMap::new(),
        }
    }

    /// Number of pages held in paging space.
    pub fn pages_held(&self) -> usize {
        self.store.len()
    }

    /// Handles one EMMI call; returns replies (possibly none).
    pub fn handle(&mut self, now: Time, req: PagerIn, disk: DiskFn<'_>) -> Vec<PagerOut> {
        match req.call {
            EmmiToPager::DataReturn { page, data, .. } => {
                let key = (req.from_node, req.obj, page);
                let slot = *self.slots.entry(key).or_insert_with(|| {
                    let s = self.next_slot;
                    self.next_slot += 1;
                    s
                });
                let pos = self.disk_base + slot * self.page_size as u64;
                let done = disk(DiskOp::Write, pos, self.page_size);
                self.write_done.insert(key, done);
                self.store.insert(key, data);
                vec![]
            }
            EmmiToPager::DataRequest { page, .. } => {
                let key = (req.from_node, req.obj, page);
                let data = self.store.get(&key).cloned().unwrap_or(PageData::Zero);
                let ready_at = self.write_done.get(&key).copied().unwrap_or(now).max(now);
                vec![PagerOut {
                    to_node: req.from_node,
                    obj: req.obj,
                    ready_at,
                    reply: EmmiToKernel::DataSupply {
                        page,
                        data,
                        lock: Access::Write,
                        mode: SupplyMode::Normal,
                    },
                }]
            }
            EmmiToPager::DataUnlock { page, access } => vec![PagerOut {
                to_node: req.from_node,
                obj: req.obj,
                ready_at: now,
                reply: EmmiToKernel::LockRequest {
                    page,
                    op: LockOp::Grant(access),
                    mode: LockMode::Normal,
                },
            }],
            // Completion notifications need no action from a plain pager.
            EmmiToPager::LockCompleted { .. } | EmmiToPager::PullCompleted { .. } => vec![],
        }
    }
}

/// State of one file managed by the file pager.
#[derive(Debug)]
struct FileState {
    size_pages: u32,
    disk_base: u64,
    /// Stripe interleave (§6 future work): this pager holds every
    /// `stride`-th page; on-disk slots are compacted by that factor so
    /// striped scans stay sequential per disk. 1 for plain files.
    stride: u32,
    /// The file has pre-existing contents on media.
    populated: bool,
    /// Pages written back by kernels (dirty data now authoritative here),
    /// with the completion time of the disk write (supplies wait for it).
    written: BTreeMap<PageIdx, (PageData, Time)>,
    /// Pages ever supplied (statistics).
    touched: BTreeSet<PageIdx>,
}

/// The file pager: a memory-mapped Unix file system on an I/O node.
///
/// Each registered memory object is one file, laid out contiguously on the
/// node's disk so that sequential faults stream at media bandwidth.
pub struct FilePager {
    page_size: u32,
    next_base: u64,
    files: BTreeMap<MemObjId, FileState>,
}

impl FilePager {
    /// Creates a file pager allocating file extents from disk offset 0.
    pub fn new(page_size: u32) -> FilePager {
        FilePager {
            page_size,
            next_base: 0,
            files: BTreeMap::new(),
        }
    }

    /// Registers a file of `size_pages` backing memory object `mobj`.
    ///
    /// A `populated` file has pre-existing contents on disk (reads pay disk
    /// time); an unpopulated one supplies zero-filled pages without I/O,
    /// like a freshly created file.
    pub fn create_file(&mut self, mobj: MemObjId, size_pages: u32, populated: bool) {
        self.create_striped_file(mobj, size_pages, populated, 1);
    }

    /// Registers one stripe of a file spread round-robin over
    /// `stride` pagers (§6 future work). This pager serves every
    /// `stride`-th page; its on-disk slots are compacted accordingly.
    pub fn create_striped_file(
        &mut self,
        mobj: MemObjId,
        size_pages: u32,
        populated: bool,
        stride: u32,
    ) {
        assert!(stride >= 1);
        let local_pages = size_pages.div_ceil(stride) as u64;
        let base = self.next_base;
        self.next_base += local_pages * self.page_size as u64;
        let prev = self.files.insert(
            mobj,
            FileState {
                size_pages,
                disk_base: base,
                stride,
                populated,
                written: BTreeMap::new(),
                touched: BTreeSet::new(),
            },
        );
        assert!(prev.is_none(), "file already exists for {mobj:?}");
    }

    /// True if `mobj` is a file managed here.
    pub fn has_file(&self, mobj: MemObjId) -> bool {
        self.files.contains_key(&mobj)
    }

    /// Number of distinct pages ever supplied for `mobj`.
    pub fn pages_touched(&self, mobj: MemObjId) -> usize {
        self.files[&mobj].touched.len()
    }

    /// The authoritative contents of `page` of file `mobj` as the pager
    /// would supply them now (for end-to-end verification in tests).
    pub fn file_contents(&self, mobj: MemObjId, page: PageIdx) -> PageData {
        let f = &self.files[&mobj];
        if let Some((d, _)) = f.written.get(&page) {
            return d.clone();
        }
        if f.populated {
            PageData::Word(file_stamp(mobj, page))
        } else {
            PageData::Zero
        }
    }

    /// Handles one EMMI call; returns replies (possibly none).
    ///
    /// A request for an unknown memory object auto-creates an unpopulated
    /// backing file ("swap file") — this is how anonymous SVM regions that
    /// get ASVM-ized at fork time acquire backing store without a separate
    /// control round trip.
    pub fn handle(&mut self, now: Time, req: PagerIn, disk: DiskFn<'_>) -> Vec<PagerOut> {
        if !self.files.contains_key(&req.mobj) {
            // Generous fixed extent; disk offsets are virtual.
            self.create_file(req.mobj, 1 << 20, false);
        }
        let _ = &self.files;
        let Some(f) = self.files.get_mut(&req.mobj) else {
            unreachable!()
        };
        match req.call {
            EmmiToPager::DataRequest { page, .. } => {
                assert!(page.0 < f.size_pages, "request beyond file end");
                let (data, ready_at) = if let Some((d, done)) = f.written.get(&page) {
                    (d.clone(), (*done).max(now))
                } else if f.populated {
                    let slot = (page.0 / f.stride) as u64;
                    let pos = f.disk_base + slot * self.page_size as u64;
                    let done = disk(DiskOp::Read, pos, self.page_size);
                    (PageData::Word(file_stamp(req.mobj, page)), done)
                } else {
                    // Fresh file: zero-filled pages cost no I/O.
                    (PageData::Zero, now)
                };
                f.touched.insert(page);
                vec![PagerOut {
                    to_node: req.from_node,
                    obj: req.obj,
                    ready_at,
                    reply: EmmiToKernel::DataSupply {
                        page,
                        data,
                        lock: Access::Write,
                        mode: SupplyMode::Normal,
                    },
                }]
            }
            EmmiToPager::DataReturn { page, data, .. } => {
                let slot = (page.0 / f.stride) as u64;
                let pos = f.disk_base + slot * self.page_size as u64;
                let done = disk(DiskOp::Write, pos, self.page_size);
                f.written.insert(page, (data, done));
                vec![]
            }
            EmmiToPager::DataUnlock { page, access } => vec![PagerOut {
                to_node: req.from_node,
                obj: req.obj,
                ready_at: now,
                reply: EmmiToKernel::LockRequest {
                    page,
                    op: LockOp::Grant(access),
                    mode: LockMode::Normal,
                },
            }],
            EmmiToPager::LockCompleted { .. } | EmmiToPager::PullCompleted { .. } => vec![],
        }
    }
}

/// Deterministic stamp standing in for the contents of a populated file
/// page (verifiable end to end without storing gigabytes).
pub fn file_stamp(mobj: MemObjId, page: PageIdx) -> u64 {
    let x = ((mobj.0 as u64) << 32) | page.0 as u64;
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_disk() -> impl FnMut(DiskOp, u64, u32) -> Time {
        |_, _, _| Time::ZERO
    }

    fn req(node: u16, obj: u32, mobj: u32, call: EmmiToPager) -> PagerIn {
        PagerIn {
            from_node: NodeId(node),
            obj: VmObjId(obj),
            mobj: MemObjId(mobj),
            call,
        }
    }

    #[test]
    fn default_pager_round_trips_data() {
        let mut p = DefaultPager::new(8192, 0);
        let mut disk_calls = 0;
        let mut disk = |op, _pos, _len| {
            assert_eq!(op, DiskOp::Write);
            disk_calls += 1;
            Time::from_nanos(1)
        };
        let out = p.handle(
            Time::ZERO,
            req(
                0,
                1,
                0,
                EmmiToPager::DataReturn {
                    page: PageIdx(3),
                    data: PageData::Word(9),
                    dirty: true,
                },
            ),
            &mut disk,
        );
        assert!(out.is_empty());
        assert_eq!(p.pages_held(), 1);

        let out = p.handle(
            Time::ZERO,
            req(
                0,
                1,
                0,
                EmmiToPager::DataRequest {
                    page: PageIdx(3),
                    access: Access::Read,
                },
            ),
            &mut no_disk(),
        );
        match &out[..] {
            [PagerOut {
                reply: EmmiToKernel::DataSupply { data, .. },
                to_node,
                ..
            }] => {
                assert_eq!(*data, PageData::Word(9));
                assert_eq!(*to_node, NodeId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(disk_calls, 1);
    }

    #[test]
    fn default_pager_keys_by_node_and_object() {
        let mut p = DefaultPager::new(8192, 0);
        let mut d = no_disk();
        p.handle(
            Time::ZERO,
            req(
                0,
                1,
                0,
                EmmiToPager::DataReturn {
                    page: PageIdx(0),
                    data: PageData::Word(1),
                    dirty: true,
                },
            ),
            &mut d,
        );
        // Same page index, different node: must be distinct.
        let out = p.handle(
            Time::ZERO,
            req(
                1,
                1,
                0,
                EmmiToPager::DataRequest {
                    page: PageIdx(0),
                    access: Access::Read,
                },
            ),
            &mut d,
        );
        match &out[..] {
            [PagerOut {
                reply: EmmiToKernel::DataSupply { data, .. },
                ..
            }] => assert_eq!(*data, PageData::Zero),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn default_pager_reuses_slots_for_rewrites() {
        let mut p = DefaultPager::new(8192, 1000);
        let mut positions = vec![];
        let mut disk = |_op, pos, _len| {
            positions.push(pos);
            Time::ZERO
        };
        for val in [1u64, 2, 3] {
            p.handle(
                Time::ZERO,
                req(
                    0,
                    1,
                    0,
                    EmmiToPager::DataReturn {
                        page: PageIdx(5),
                        data: PageData::Word(val),
                        dirty: true,
                    },
                ),
                &mut disk,
            );
        }
        assert!(positions.iter().all(|p| *p == positions[0]));
        assert_eq!(positions[0], 1000);
    }

    #[test]
    fn file_pager_populated_reads_hit_disk_sequentially() {
        let mut p = FilePager::new(8192);
        p.create_file(MemObjId(1), 16, true);
        let mut reads = vec![];
        let mut disk = |op, pos, len| {
            assert_eq!(op, DiskOp::Read);
            reads.push((pos, len));
            Time::from_nanos(500)
        };
        for pg in 0..3u32 {
            let out = p.handle(
                Time::ZERO,
                req(
                    2,
                    7,
                    1,
                    EmmiToPager::DataRequest {
                        page: PageIdx(pg),
                        access: Access::Read,
                    },
                ),
                &mut disk,
            );
            match &out[..] {
                [PagerOut {
                    ready_at,
                    reply: EmmiToKernel::DataSupply { data, .. },
                    ..
                }] => {
                    assert_eq!(*ready_at, Time::from_nanos(500));
                    assert_eq!(data.word(), file_stamp(MemObjId(1), PageIdx(pg)));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(reads, vec![(0, 8192), (8192, 8192), (16384, 8192)]);
    }

    #[test]
    fn file_pager_fresh_file_supplies_zero_without_io() {
        let mut p = FilePager::new(8192);
        p.create_file(MemObjId(2), 4, false);
        let mut disk = |_op, _pos, _len| panic!("no disk I/O expected");
        let out = p.handle(
            Time::ZERO,
            req(
                0,
                1,
                2,
                EmmiToPager::DataRequest {
                    page: PageIdx(0),
                    access: Access::Write,
                },
            ),
            &mut disk,
        );
        match &out[..] {
            [PagerOut {
                reply: EmmiToKernel::DataSupply { data, .. },
                ready_at,
                ..
            }] => {
                assert_eq!(*data, PageData::Zero);
                assert_eq!(*ready_at, Time::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn file_pager_written_data_wins_over_media() {
        let mut p = FilePager::new(8192);
        p.create_file(MemObjId(1), 4, true);
        let mut d = |_op, _pos, _len| Time::ZERO;
        p.handle(
            Time::ZERO,
            req(
                0,
                1,
                1,
                EmmiToPager::DataReturn {
                    page: PageIdx(2),
                    data: PageData::Word(77),
                    dirty: true,
                },
            ),
            &mut d,
        );
        assert_eq!(p.file_contents(MemObjId(1), PageIdx(2)), PageData::Word(77));
        let mut no_io = |_op, _pos, _len| panic!("written pages need no disk read");
        let out = p.handle(
            Time::ZERO,
            req(
                3,
                9,
                1,
                EmmiToPager::DataRequest {
                    page: PageIdx(2),
                    access: Access::Read,
                },
            ),
            &mut no_io,
        );
        match &out[..] {
            [PagerOut {
                reply: EmmiToKernel::DataSupply { data, .. },
                ..
            }] => assert_eq!(*data, PageData::Word(77)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unlock_returns_grant() {
        let mut p = FilePager::new(8192);
        p.create_file(MemObjId(1), 4, false);
        let mut d = no_disk();
        let out = p.handle(
            Time::ZERO,
            req(
                0,
                1,
                1,
                EmmiToPager::DataUnlock {
                    page: PageIdx(1),
                    access: Access::Write,
                },
            ),
            &mut d,
        );
        match &out[..] {
            [PagerOut {
                reply:
                    EmmiToKernel::LockRequest {
                        op: LockOp::Grant(Access::Write),
                        ..
                    },
                ..
            }] => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn files_get_disjoint_extents() {
        let mut p = FilePager::new(8192);
        p.create_file(MemObjId(1), 16, true);
        p.create_file(MemObjId(2), 16, true);
        let mut pos1 = 0;
        let mut d1 = |_op, pos, _len| {
            pos1 = pos;
            Time::ZERO
        };
        p.handle(
            Time::ZERO,
            req(
                0,
                1,
                2,
                EmmiToPager::DataRequest {
                    page: PageIdx(0),
                    access: Access::Read,
                },
            ),
            &mut d1,
        );
        assert_eq!(pos1, 16 * 8192);
    }
}
