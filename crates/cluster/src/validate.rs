//! Cross-node invariant checking for quiescent clusters.
//!
//! These checks encode the paper's structural invariants (§3.4–§3.6) and
//! are called by the integration tests after every run:
//!
//! * at most one owner per page, system-wide;
//! * the single-writer-XOR-multiple-readers rule;
//! * page state only for resident pages (state tied to physical memory);
//! * no stranded work: no pending requests, parked fills, queued lock
//!   waiters or manager transactions survive quiescence.

use machvm::MemObjId;

use crate::ssi::Ssi;

/// Checks every ASVM invariant on a quiescent cluster, for every object.
///
/// # Panics
///
/// Panics with a diagnostic if any invariant is violated.
pub fn check_asvm_invariants(ssi: &Ssi) {
    check_asvm_invariants_except(ssi, &[]);
}

/// [`check_asvm_invariants`] restricted to the surviving nodes: every node
/// in `dead` is skipped entirely. A permanently blacked-out node keeps
/// whatever state it had when the lights went out — including an owner bit
/// the survivors have since re-elected away from it — so fault tests check
/// convergence among the nodes that can still talk (`docs/RELIABILITY.md`).
///
/// # Panics
///
/// Panics with a diagnostic if any invariant is violated on a live node.
pub fn check_asvm_invariants_except(ssi: &Ssi, dead: &[svmsim::NodeId]) {
    let nodes: Vec<_> = ssi
        .world
        .machine()
        .mesh
        .node_ids()
        .filter(|id| !dead.contains(id))
        .collect();
    // Collect object ids from every node.
    let mut objects: Vec<MemObjId> = Vec::new();
    for id in &nodes {
        if let Some(a) = ssi.world.node(*id).asvm() {
            for o in a.objects() {
                if !objects.contains(&o.mobj) {
                    objects.push(o.mobj);
                }
            }
        }
    }
    for mobj in objects {
        let mut owners: Vec<(svmsim::NodeId, machvm::PageIdx)> = Vec::new();
        for id in &nodes {
            let node = ssi.world.node(*id);
            let Some(a) = node.asvm() else {
                continue;
            };
            if !a.has_object(mobj) {
                continue;
            }
            let o = a.object(mobj);
            assert!(
                o.pending.is_empty(),
                "{id}: {mobj:?} has pending requests at quiescence: {:?}",
                o.pending
            );
            assert!(
                o.fill_waiters.is_empty(),
                "{id}: {mobj:?} has parked requests at quiescence"
            );
            assert!(
                o.static_waiting.is_empty(),
                "{id}: {mobj:?} has requests stranded at the static manager"
            );
            assert!(
                o.static_filling.is_empty(),
                "{id}: {mobj:?} has pager fills that never completed"
            );
            assert!(
                o.pull_in_flight.is_empty(),
                "{id}: {mobj:?} has pulls that never completed"
            );
            assert!(
                o.copy_settles.is_empty(),
                "{id}: {mobj:?} has unsettled copy notifications"
            );
            // Ownership reconstruction must have run to completion; the
            // suspicion list itself may legitimately be non-empty (a dead
            // peer stays suspected forever).
            assert!(
                o.recover.is_empty(),
                "{id}: {mobj:?} has unfinished ownership reconstruction: {:?}",
                o.recover.keys().collect::<Vec<_>>()
            );
            for (page, pi) in &o.pages {
                assert!(
                    pi.busy.is_none(),
                    "{id}: {mobj:?} {page:?} still busy at quiescence: {:?}",
                    pi.busy
                );
                assert!(
                    pi.queued.is_empty(),
                    "{id}: {mobj:?} {page:?} has queued requests at quiescence"
                );
                // State tied to residency (paper §3.1/§3.4).
                assert!(
                    node.vm.object(o.vm_obj).resident(*page),
                    "{id}: {mobj:?} holds state for non-resident {page:?}"
                );
                if pi.owner {
                    owners.push((*id, *page));
                }
            }
        }
        // At most one owner per page.
        let mut seen = std::collections::BTreeSet::new();
        for (id, page) in &owners {
            assert!(
                seen.insert(*page),
                "two owners for {mobj:?} {page:?} (second on {id})"
            );
        }
        // Single writer XOR multiple readers: if any node holds write
        // access, nobody else holds the page.
        for id in &nodes {
            let node = ssi.world.node(*id);
            let Some(a) = node.asvm() else {
                continue;
            };
            if !a.has_object(mobj) {
                continue;
            }
            let o = a.object(mobj);
            for (page, pi) in &o.pages {
                if pi.access == machvm::Access::Write {
                    for other in &nodes {
                        if other == id {
                            continue;
                        }
                        let onode = ssi.world.node(*other);
                        let Some(oa) = onode.asvm() else {
                            continue;
                        };
                        if let Some(opi) = oa.page_info(mobj, *page) {
                            panic!(
                                "{id} holds {mobj:?} {page:?} writable while {other} \
                                 also holds it ({:?})",
                                opi.access
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Checks the XMM counterpart: no stranded manager transactions or
/// internal-pager work at quiescence.
///
/// # Panics
///
/// Panics with a diagnostic if any check fails.
pub fn check_xmm_invariants(ssi: &Ssi) {
    for id in ssi.world.machine().mesh.node_ids().collect::<Vec<_>>() {
        let node = ssi.world.node(id);
        let Some(x) = node.xmm() else { continue };
        assert_eq!(
            x.thread_queue_len(),
            0,
            "{id}: internal-pager requests still queued (deadlock?)"
        );
        assert_eq!(node.vm.pending_faults(), 0, "{id}: faults never completed");
    }
}
