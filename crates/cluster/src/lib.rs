//! `cluster` — single-system-image glue binding the Mach VM model, the
//! memory managers (ASVM / XMM), the pagers and the transports to the
//! simulated Paragon machine.
//!
//! The crate provides:
//!
//! * [`CoherenceEngine`] — the trait boundary every distributed memory
//!   manager implements ([`asvm::AsvmNode`] and [`xmm::XmmNode`]); each
//!   entry point returns an [`EngineFx`] consumed by the node's single
//!   effect interpreter, which owns transport choice, pager routing,
//!   per-message-kind statistics and the protocol trace ring;
//! * [`ClusterNode`] — one multicomputer node: kernel VM, engine instance,
//!   pager tasks (on I/O nodes), and the task driver that executes
//!   [`Program`]s step by step, suspending on faults and barriers;
//! * [`Msg`] — the unified message enum carried by the event loop, with
//!   ASVM traffic on STS and XMMI/EMMI/fork traffic on NORMA-IPC;
//! * remote fork with Mach inheritance semantics: `Share` regions map the
//!   same memory object, `Copy` regions become distributed delayed copies
//!   (ASVM §3.7) or internal-pager snapshots (XMM §2.3.3);
//! * [`Ssi`] — the facade harnesses use to assemble clusters, create
//!   memory objects and tasks, and run workloads to quiescence.

pub mod engine;
pub mod msg;
pub mod node;
pub mod program;
pub mod ssi;
pub mod validate;

pub use engine::{CoherenceEngine, EngineEffect, EngineFx, ProtoEvent, ProtocolMsg, TraceDir};
pub use msg::{ForkEntry, ForkMsg, Msg, ObjInfo};
pub use node::{ClusterNode, LinkFailure};
pub use program::{FnProgram, Program, ScriptProgram, Step, TaskEnv};
pub use ssi::{ManagerKind, Ssi};
pub use validate::{check_asvm_invariants, check_asvm_invariants_except, check_xmm_invariants};

#[cfg(test)]
mod tests;
