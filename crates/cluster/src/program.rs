//! Programs: the unit of application code the task driver executes.
//!
//! A [`Program`] is a resumable sequence of [`Step`]s. The driver executes
//! steps until one cannot complete (page fault, barrier, compute delay),
//! suspends the task, and re-executes the *same* step when the blocking
//! condition resolves — exactly how a faulting instruction restarts.

use machvm::{Access, TaskId};
use svmsim::{Dur, NodeId, Time};

/// Execution context handed to [`Program::step`].
#[derive(Debug)]
pub struct TaskEnv {
    /// The running task.
    pub task: TaskId,
    /// The node it runs on.
    pub node: NodeId,
    /// Current simulated time.
    pub now: Time,
    /// Stamp read by the most recent [`Step::Read`].
    pub last_read: Option<u64>,
}

/// One step of application behaviour.
pub enum Step {
    /// Burn compute time on the node's application processor.
    Compute(Dur),
    /// Touch a page with the given access (fault if needed, no data).
    Touch {
        /// Virtual page.
        va_page: u64,
        /// Access kind.
        access: Access,
    },
    /// Read the page's stamp into `env.last_read` (fault for read first).
    Read {
        /// Virtual page.
        va_page: u64,
    },
    /// Overwrite the page's stamp (fault for write first).
    Write {
        /// Virtual page.
        va_page: u64,
        /// New stamp.
        value: u64,
    },
    /// Wait until every participating task reaches barrier `id`.
    Barrier(u32),
    /// Acquire an exclusive lock on a page range of the mapped shared
    /// region (ASVM §6 future work); suspends until granted.
    LockRange {
        /// First virtual page of the range.
        va_page: u64,
        /// Length in pages.
        pages: u32,
    },
    /// Release a previously acquired range lock.
    UnlockRange {
        /// First virtual page of the range.
        va_page: u64,
        /// Length in pages.
        pages: u32,
    },
    /// Fork a child task onto another node (Mach `task_create` with
    /// inheritance semantics on every mapped region).
    Fork {
        /// The child's task id (caller-chosen, globally unique).
        child: TaskId,
        /// Destination node.
        node: NodeId,
        /// Program the child runs.
        program: Box<dyn Program>,
    },
    /// The program is finished.
    Done,
}

/// A resumable application program.
pub trait Program {
    /// Produces the next step. Called again only after the previous step
    /// fully completed; a step that faults is retried transparently by the
    /// driver without a new `step` call.
    fn step(&mut self, env: &mut TaskEnv) -> Step;
}

impl std::fmt::Debug for dyn Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<program>")
    }
}

/// A program built from a closure returning steps (handy in tests).
pub struct FnProgram<F: FnMut(&mut TaskEnv) -> Step>(pub F);

impl<F: FnMut(&mut TaskEnv) -> Step> Program for FnProgram<F> {
    fn step(&mut self, env: &mut TaskEnv) -> Step {
        (self.0)(env)
    }
}

/// A program that executes a fixed list of steps, then `Done`.
pub struct ScriptProgram {
    steps: std::vec::IntoIter<Step>,
}

impl ScriptProgram {
    /// Wraps a step list.
    pub fn new(steps: Vec<Step>) -> ScriptProgram {
        ScriptProgram {
            steps: steps.into_iter(),
        }
    }
}

impl Program for ScriptProgram {
    fn step(&mut self, _env: &mut TaskEnv) -> Step {
        self.steps.next().unwrap_or(Step::Done)
    }
}
