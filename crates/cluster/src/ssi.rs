//! Single-system-image facade: the public API harnesses and examples use
//! to build a cluster, create tasks and memory objects, and run programs.

use asvm::{AsvmConfig, AsvmNode};
use machvm::{Access, Inherit, MemObjId, TaskId, VmObjId, VmSystem};
use svmsim::{EventBudgetExceeded, Machine, MachineConfig, NodeId, Stats, Time, World};
use xmm::{XmmBacking, XmmNode};

use crate::engine::ProtoEvent;
use crate::msg::Msg;
use crate::node::ClusterNode;
use crate::program::Program;

/// Which distributed memory manager the cluster runs.
#[derive(Clone, Copy, Debug)]
pub enum ManagerKind {
    /// The paper's contribution, with its forwarding configuration.
    Asvm(AsvmConfig),
    /// The NMK13 baseline, with its internal-pager thread pool size.
    Xmm {
        /// Copy-pager threads per node.
        copy_threads: usize,
    },
}

impl ManagerKind {
    /// ASVM with default forwarding.
    pub fn asvm() -> ManagerKind {
        ManagerKind::Asvm(AsvmConfig::default())
    }

    /// XMM with the default thread pool.
    pub fn xmm() -> ManagerKind {
        ManagerKind::Xmm { copy_threads: 16 }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ManagerKind::Asvm(_) => "ASVM",
            ManagerKind::Xmm { .. } => "XMM",
        }
    }
}

/// A running single-system-image cluster.
///
/// # Examples
///
/// Two nodes share a memory object; a write on one is read on the other:
///
/// ```
/// use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
/// use machvm::{Access, Inherit};
/// use svmsim::NodeId;
///
/// let mut ssi = Ssi::new(2, ManagerKind::asvm(), 42);
/// let mobj = ssi.create_object(NodeId(0), 4, false);
/// let writer = ssi.alloc_task();
/// let reader = ssi.alloc_task();
/// ssi.map_shared(writer, NodeId(0), 0, mobj, NodeId(0), 4, Access::Write, Inherit::Share);
/// ssi.map_shared(reader, NodeId(1), 0, mobj, NodeId(0), 4, Access::Write, Inherit::Share);
/// ssi.finalize();
/// ssi.set_barrier_parties(2);
///
/// ssi.spawn(NodeId(0), writer, Box::new(ScriptProgram::new(vec![
///     Step::Write { va_page: 0, value: 7 },
///     Step::Barrier(1),
///     Step::Done,
/// ])));
/// ssi.spawn(NodeId(1), reader, Box::new(ScriptProgram::new(vec![
///     Step::Barrier(1),
///     Step::Read { va_page: 0 },
///     Step::Done,
/// ])));
///
/// ssi.run(1_000_000).unwrap();
/// assert!(ssi.all_done());
/// assert_eq!(ssi.node(NodeId(1)).vm.peek_task_page(reader, 0), Some(7));
/// ```
pub struct Ssi {
    /// The underlying simulation world.
    pub world: World<ClusterNode, Msg>,
    kind: ManagerKind,
    next_mobj: u32,
    next_task: u32,
    /// Stripe sets for striped objects (§6 future work).
    striped: std::collections::BTreeMap<MemObjId, Vec<NodeId>>,
    /// Per-object ASVM configuration overrides, applied at registration
    /// in place of the cluster-wide configuration.
    object_cfgs: std::collections::BTreeMap<MemObjId, AsvmConfig>,
    /// Nodes whose failure-detector heartbeat is already armed.
    hb_armed: std::collections::BTreeSet<NodeId>,
}

impl Ssi {
    /// Builds a Paragon-like cluster with `compute_nodes` compute nodes.
    pub fn new(compute_nodes: u16, kind: ManagerKind, seed: u64) -> Ssi {
        Ssi::with_machine(MachineConfig::paragon(compute_nodes), kind, seed)
    }

    /// Builds a cluster from an explicit machine configuration.
    pub fn with_machine(cfg: MachineConfig, kind: ManagerKind, seed: u64) -> Ssi {
        let machine = Machine::new(cfg);
        let world = World::new(machine, seed, |id, m| {
            let cost = m.config.cost.clone();
            let capacity = m.config.user_pages_per_node();
            let vm = VmSystem::new(m.config.page_size, capacity, cost.clone());
            let engine: Box<dyn crate::engine::CoherenceEngine> = match kind {
                ManagerKind::Asvm(_) => Box::new(AsvmNode::new(id, cost)),
                ManagerKind::Xmm { copy_threads } => Box::new(XmmNode::new(id, cost, copy_threads)),
            };
            let mut node = ClusterNode::new(id, vm, engine, m.kind(id), m.config.page_size);
            if let ManagerKind::Asvm(acfg) = kind {
                // Coalescing is a node-level transport concern (the frame
                // combiner sits under every object), configured from the
                // cluster-wide ASVM config.
                node.set_coalesce(acfg.coalesce);
            }
            node
        });
        Ssi {
            world,
            kind,
            next_mobj: 1,
            next_task: 1,
            striped: std::collections::BTreeMap::new(),
            object_cfgs: std::collections::BTreeMap::new(),
            hb_armed: std::collections::BTreeSet::new(),
        }
    }

    /// Overrides the ASVM configuration `mobj` is registered with — the
    /// paper's per-memory-object strategy hook (*"The ASVM system allows
    /// to disable either dynamic or static forwarding (or both) on a
    /// memory-object basis"*), extended to the full [`AsvmConfig`]
    /// surface: forwarding switches, cache capacities, prefetch,
    /// watchdog bounds, coalescing, and the online policy. Takes effect
    /// on every [`Ssi::map_shared`] after the call, so set it before the
    /// object's first map; other objects keep the cluster-wide
    /// configuration. ASVM only.
    pub fn set_object_config(&mut self, mobj: MemObjId, cfg: AsvmConfig) {
        assert!(
            matches!(self.kind, ManagerKind::Asvm(_)),
            "per-object configuration requires ASVM"
        );
        self.object_cfgs.insert(mobj, cfg);
    }

    /// The manager kind this cluster runs.
    pub fn kind(&self) -> ManagerKind {
        self.kind
    }

    /// Allocates a fresh task id.
    pub fn alloc_task(&mut self) -> TaskId {
        let t = TaskId(self.next_task);
        self.next_task += 1;
        t
    }

    /// Creates a memory object of `size_pages` homed on `home`, backed by a
    /// file on `home`'s I/O node (`populated` files have on-disk contents;
    /// unpopulated ones zero-fill without I/O). Returns its id.
    pub fn create_object(&mut self, home: NodeId, size_pages: u32, populated: bool) -> MemObjId {
        let mobj = MemObjId(self.next_mobj);
        self.next_mobj += 1;
        let io = self.world.machine().io_node_for(home);
        self.world
            .node_mut(io)
            .file_pager
            .as_mut()
            .expect("I/O node must have a file pager")
            .create_file(mobj, size_pages, populated);
        mobj
    }

    /// The I/O node and pager backing `mobj` created via
    /// [`Ssi::create_object`] from `home`.
    pub fn pager_node_for(&self, home: NodeId) -> NodeId {
        self.world.machine().io_node_for(home)
    }

    /// Creates a memory object striped round-robin over `stripes` I/O
    /// nodes (§6 future work: one pager per I/O node, used per page).
    /// Requires a machine with at least that many I/O nodes (ASVM only).
    pub fn create_striped_object(
        &mut self,
        size_pages: u32,
        populated: bool,
        stripes: u16,
    ) -> MemObjId {
        assert!(
            matches!(self.kind, ManagerKind::Asvm(_)),
            "striped objects require ASVM (XMM has a single pager per object)"
        );
        let io: Vec<NodeId> = self.world.machine().io_nodes().collect();
        assert!(
            stripes as usize <= io.len(),
            "need {stripes} I/O nodes, machine has {}",
            io.len()
        );
        let mobj = MemObjId(self.next_mobj);
        self.next_mobj += 1;
        let set: Vec<NodeId> = io.into_iter().take(stripes as usize).collect();
        for n in &set {
            self.world
                .node_mut(*n)
                .file_pager
                .as_mut()
                .expect("I/O node must have a file pager")
                .create_striped_file(mobj, size_pages, populated, stripes as u32);
        }
        self.striped.insert(mobj, set);
        mobj
    }

    /// Maps `mobj` into `task`'s address space on `node` (setup time).
    ///
    /// The local kernel and manager representations are created on first
    /// use; call [`Ssi::finalize`] once after all setup maps so membership
    /// lists are consistent before the simulation runs.
    #[allow(clippy::too_many_arguments)]
    pub fn map_shared(
        &mut self,
        task: TaskId,
        node: NodeId,
        va_page: u64,
        mobj: MemObjId,
        home: NodeId,
        size_pages: u32,
        prot: Access,
        inherit: Inherit,
    ) {
        let pager_node = self.world.machine().io_node_for(home);
        let mut kind = self.kind;
        if let (ManagerKind::Asvm(_), Some(cfg)) = (kind, self.object_cfgs.get(&mobj)) {
            kind = ManagerKind::Asvm(*cfg);
        }
        let stripe = self.striped.get(&mobj).cloned();
        let n = self.world.node_mut(node);
        if !n.vm.has_task(task) {
            n.vm.create_task(task);
        }
        let vo = Self::ensure_setup_object(n, kind, mobj, home, pager_node, size_pages);
        if let (Some(set), Some(a)) = (stripe, n.asvm_mut()) {
            a.object_mut(mobj).stripe = set;
        }
        n.vm.map_object(task, va_page, size_pages, vo, 0, prot, inherit);
    }

    fn ensure_setup_object(
        n: &mut ClusterNode,
        kind: ManagerKind,
        mobj: MemObjId,
        home: NodeId,
        pager_node: NodeId,
        size_pages: u32,
    ) -> VmObjId {
        match kind {
            ManagerKind::Asvm(cfg) => {
                let a = n.asvm_mut().expect("ASVM setup on XMM node");
                if let Some(o) = a.objects().find(|o| o.mobj == mobj) {
                    return o.vm_obj;
                }
                let vo =
                    n.vm.create_object(size_pages, machvm::Backing::External(mobj));
                // Setup-time registration: membership is fixed by finalize,
                // so the MapNotify effect is dropped.
                let mut afx = asvm::Fx::new();
                let a = n.asvm_mut().expect("ASVM setup on XMM node");
                a.register_object(mobj, vo, size_pages, home, pager_node, cfg, &mut afx);
                vo
            }
            ManagerKind::Xmm { .. } => {
                let x = n.xmm().expect("XMM setup on ASVM node");
                if x.has_object(mobj) {
                    return x.object(mobj).vm_obj;
                }
                let vo =
                    n.vm.create_object(size_pages, machvm::Backing::External(mobj));
                n.xmm_mut()
                    .expect("XMM setup on ASVM node")
                    .register_object(
                        mobj,
                        vo,
                        size_pages,
                        home,
                        XmmBacking::RealPager { node: pager_node },
                    );
                vo
            }
        }
    }

    /// Fixes up ASVM membership lists after setup-time mapping: every
    /// object's member set becomes exactly the nodes that registered it.
    pub fn finalize(&mut self) {
        if !matches!(self.kind, ManagerKind::Asvm(_)) {
            return;
        }
        // Collect membership per object.
        let mut members: std::collections::BTreeMap<MemObjId, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            let n = self.world.node(id);
            if let Some(a) = n.asvm() {
                for o in a.objects() {
                    members.entry(o.mobj).or_default().push(id);
                }
            }
        }
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            let n = self.world.node_mut(id);
            if let Some(a) = n.asvm_mut() {
                let objs: Vec<MemObjId> = a.objects().map(|o| o.mobj).collect();
                for m in objs {
                    if let Some(list) = members.get(&m) {
                        a.object_mut(m).nodes = list.clone();
                    }
                }
            }
        }
    }

    /// Installs a protocol trace ring of `cap` events on every node.
    /// Recording costs one slot write per message; dump the merged view
    /// with [`Ssi::trace_dump`] when a run fails.
    pub fn enable_trace(&mut self, cap: usize) {
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            self.world.node_mut(id).trace = Some(svmsim::TraceRing::new(cap));
        }
    }

    /// All retained trace events across the cluster, merged into
    /// chronological order, plus the count of events evicted from the rings.
    pub fn trace_dump(&self) -> (Vec<ProtoEvent>, u64) {
        let mut evs: Vec<ProtoEvent> = Vec::new();
        let mut dropped = 0u64;
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            if let Some(ring) = &self.world.node(id).trace {
                evs.extend(ring.iter().cloned());
                dropped += ring.dropped();
            }
        }
        evs.sort_by_key(|e| (e.time, e.node.0));
        (evs, dropped)
    }

    /// Switches the transport carrying ASVM protocol traffic (the
    /// transport ablation: identical state machines over NORMA-IPC).
    pub fn set_asvm_transport(&mut self, t: transport::Transport) {
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            self.world.node_mut(id).asvm_transport = t;
        }
    }

    /// Sets the retry/timeout policy of the ASVM frame channel on every
    /// node (only consulted while the machine's fault plan is active).
    pub fn set_retry_config(&mut self, cfg: asvm::RetryConfig) {
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            self.world.node_mut(id).retry_cfg = cfg;
        }
    }

    /// ASVM frames abandoned after retry exhaustion, across all nodes,
    /// in `(time, node, seq)` order. Empty in a healthy run.
    ///
    /// **Draining**: each call removes the failures it returns from the
    /// per-node buffers, so a second poll reports only failures that
    /// happened after the first — repeated polls never duplicate.
    pub fn link_failures(&mut self) -> Vec<crate::node::LinkFailure> {
        let mut fs: Vec<crate::node::LinkFailure> = Vec::new();
        for id in self.world.machine().mesh.node_ids().collect::<Vec<_>>() {
            fs.extend(std::mem::take(&mut self.world.node_mut(id).link_failures));
        }
        fs.sort_by_key(|f| (f.at, f.peer.0, f.seq));
        fs
    }

    /// Sets how many tasks participate in each barrier.
    pub fn set_barrier_parties(&mut self, parties: u32) {
        self.world.node_mut(NodeId(0)).barrier_parties = parties;
    }

    /// Installs `program` as task `task` on `node` and schedules it to
    /// start at time `at`.
    pub fn spawn_at(&mut self, at: Time, node: NodeId, task: TaskId, program: Box<dyn Program>) {
        let now = self.world.now();
        self.world.node_mut(node).install_task(task, program, now);
        self.world.post(at.max(now), node, Msg::Resume(task));
        // Arm the failure detector on the first spawn per node. Heartbeats
        // run only under an active fault plan (healthy runs stay
        // byte-identical to a build without them), and only on nodes that
        // actually host work — a task-less node beacons nothing and is
        // never falsely suspected for going silent.
        if matches!(self.kind, ManagerKind::Asvm(_))
            && self.world.machine().config.faults.is_active()
            && self.hb_armed.insert(node)
        {
            self.world.post(now, node, Msg::HbTick);
        }
    }

    /// Installs and starts `program` immediately.
    pub fn spawn(&mut self, node: NodeId, task: TaskId, program: Box<dyn Program>) {
        let now = self.world.now();
        self.spawn_at(now, node, task, program);
    }

    /// Runs the cluster until every event drains.
    pub fn run(&mut self, budget: u64) -> Result<Time, EventBudgetExceeded> {
        self.world.run_to_quiescence(budget)
    }

    /// Gathered statistics.
    pub fn stats(&self) -> &Stats {
        self.world.stats()
    }

    /// A node, for inspection.
    pub fn node(&self, id: NodeId) -> &ClusterNode {
        self.world.node(id)
    }

    /// True if every installed task on every node finished.
    pub fn all_done(&self) -> bool {
        self.world
            .machine()
            .mesh
            .node_ids()
            .all(|id| self.world.node(id).all_tasks_done())
    }
}
