//! The coherence-engine boundary: one trait, one effect vocabulary.
//!
//! The paper's central comparison — ASVM's distributed manager against
//! XMM's centralized one — used to be wired into [`crate::ClusterNode`]
//! through a `Manager` enum matched in every glue site. This module makes
//! the protocol a first-class, swappable layer instead:
//!
//! * [`CoherenceEngine`] is the single surface a manager presents to the
//!   node — EMMI ingress, inbound protocol messages, pager replies,
//!   eviction, copy notification, fault completion;
//! * every entry point returns an [`EngineFx`]: a CPU charge, an ordered
//!   list of [`EngineEffect`]s, and the VM effects to drain;
//! * exactly one interpreter loop (`ClusterNode::interpret`) consumes
//!   those effects, so transport choice, pager routing, per-message-kind
//!   statistics and the protocol trace live in one place.
//!
//! A new protocol variant is now a trait impl plus a `Box::new` in the
//! cluster factory — no new `match` arms anywhere.
//!
//! **Effect ordering is load-bearing.** Pager sends precede protocol sends
//! in the effect list: acknowledgements must never causally overtake the
//! writebacks they follow, or a forwarded request could reach the pager
//! first and be answered with stale contents. The conversions from the
//! managers' native effect structs preserve exactly the order the old
//! hand-rolled emitters used (pager → net → settled → lock grants → VM).
//!
//! # Delivery guarantees
//!
//! Engines emit protocol sends assuming reliable, but not ordered,
//! delivery; the interpreter chooses how to honor that contract. On a
//! fault-free machine every [`EngineEffect::Protocol`] send goes straight
//! to the wire. When the machine's fault plan
//! ([`svmsim::MachineConfig::faults`]) is active, ASVM sends instead ride
//! a per-link retry channel (`asvm::retry`) — sequence numbers, acks,
//! bounded exponential backoff, duplicate suppression — so the engines
//! themselves never see a dropped, duplicated or reordered message. XMMI
//! and pager traffic stay on NORMA-IPC, which models Mach's reliable
//! kernel-to-kernel IPC. The full model lives in `docs/RELIABILITY.md`.
//!
//! Retry pacing comes from [`asvm::RetryConfig`] (set cluster-wide with
//! [`crate::Ssi::set_retry_config`]):
//!
//! ```
//! use asvm::RetryConfig;
//! use svmsim::Dur;
//!
//! let cfg = RetryConfig::default();
//! // Bounded exponential backoff: 2, 4, 8, ... capped at 50 ms.
//! assert_eq!(cfg.timeout_for(0), Dur::from_millis(2));
//! assert!(cfg.timeout_for(10) <= Dur::from_millis(50));
//! ```

use asvm::{AsvmNode, PageRange};
use machvm::{EmmiToKernel, EmmiToPager, MemObjId, PageData, PageIdx, TaskId, VmObjId, VmSystem};
use svmsim::{Dur, NodeId, Time};
use xmm::XmmNode;

/// A protocol message in transit between two engine instances, transport
/// not yet chosen (that is the interpreter's job).
#[derive(Clone, Debug)]
pub enum ProtocolMsg {
    /// ASVM protocol traffic (STS by default).
    Asvm {
        /// The sending node.
        from: NodeId,
        /// The message.
        msg: asvm::AsvmMsg,
    },
    /// XMMI traffic (always NORMA-IPC).
    Xmm(xmm::XmmMsg),
}

impl ProtocolMsg {
    /// Per-message-kind statistics key (`asvm.msg.*` / `xmm.msg.*`).
    pub fn stat_key(&self) -> &'static str {
        match self {
            ProtocolMsg::Asvm { msg, .. } => msg.stat_key(),
            ProtocolMsg::Xmm(m) => m.stat_key(),
        }
    }

    /// The memory object the message concerns.
    pub fn mobj(&self) -> MemObjId {
        match self {
            ProtocolMsg::Asvm { msg, .. } => msg.mobj(),
            ProtocolMsg::Xmm(m) => m.mobj(),
        }
    }

    /// The page the message concerns, if it is page-level.
    pub fn page(&self) -> Option<PageIdx> {
        match self {
            ProtocolMsg::Asvm { msg, .. } => msg.page(),
            ProtocolMsg::Xmm(m) => m.page(),
        }
    }

    /// Payload bytes following the transport header.
    pub fn payload_bytes(&self, page_size: u32) -> u32 {
        match self {
            ProtocolMsg::Asvm { msg, .. } => msg.payload_bytes(page_size),
            ProtocolMsg::Xmm(m) => m.payload_bytes(page_size),
        }
    }
}

/// One effect requested by a coherence engine, interpreted by the node.
#[derive(Clone, Debug)]
pub enum EngineEffect {
    /// Send an EMMI request to a real pager task (NORMA-IPC).
    Pager {
        /// The I/O node hosting the pager.
        pager_node: NodeId,
        /// Node the pager's reply must go to (the request origin — not
        /// necessarily the node dispatching the request).
        reply_to: NodeId,
        /// The memory object addressed.
        mobj: MemObjId,
        /// Reply-routing VM object on `reply_to`.
        obj: VmObjId,
        /// The EMMI call.
        call: EmmiToPager,
    },
    /// Send a protocol message to a peer engine instance.
    Protocol {
        /// Destination node.
        dst: NodeId,
        /// The message.
        msg: ProtocolMsg,
    },
    /// A copy notification settled on every sharing node; forks waiting on
    /// `mobj` may complete.
    CopySettled(MemObjId),
    /// A range lock was granted; the waiting task may resume.
    LockGranted(MemObjId, PageRange),
}

/// What one engine entry point asks the interpreter to do.
///
/// `EngineFx` is a *reusable sink*: engine entry points write into a
/// caller-provided `&mut EngineFx`, and the interpreter drains it in
/// place. The cluster node keeps a small pool of drained shells, so in
/// steady state every vector here — and the native effect scratch buffers
/// the conversions recycle — retains its capacity across millions of
/// engine calls and the hot path allocates nothing.
#[derive(Debug, Default)]
pub struct EngineFx {
    /// Manager CPU consumed (charged to the message processor).
    pub cpu: Dur,
    /// Effects, in mandatory order (see the module docs).
    pub out: Vec<EngineEffect>,
    /// Kernel VM effects to drain after the sends.
    pub vm: machvm::Effects,
    /// Statistics counters to bump (the sans-IO engines have no stats
    /// handle; the interpreter applies these).
    pub bumps: Vec<&'static str>,
    /// Drained ASVM native-effect shell, lent out by [`EngineFx::take_asvm`]
    /// for the next engine call so its vectors keep their capacity.
    asvm_scratch: asvm::Fx,
    /// Drained XMM native-effect shell (see `asvm_scratch`).
    xmm_scratch: xmm::Fx,
}

impl EngineFx {
    /// An empty effect set.
    pub fn new() -> EngineFx {
        EngineFx::default()
    }

    /// Lends out the recycled ASVM effect sink for one native engine call;
    /// [`EngineFx::absorb_asvm`] takes it back.
    fn take_asvm(&mut self) -> asvm::Fx {
        std::mem::take(&mut self.asvm_scratch)
    }

    /// Lends out the recycled XMM effect sink (see [`EngineFx::take_asvm`]).
    fn take_xmm(&mut self) -> xmm::Fx {
        std::mem::take(&mut self.xmm_scratch)
    }

    /// Drains ASVM's native effect struct into this sink, preserving emit
    /// order, and keeps the emptied shell (vector capacities intact) as
    /// scratch for the next call.
    pub fn absorb_asvm(&mut self, me: NodeId, mut fx: asvm::Fx) {
        self.cpu += fx.cpu;
        fx.cpu = Dur::ZERO;
        self.out
            .reserve(fx.pager.len() + fx.net.len() + fx.settled.len() + fx.lock_granted.len());
        for p in fx.pager.drain(..) {
            self.out.push(EngineEffect::Pager {
                pager_node: p.pager_node,
                reply_to: p.reply_to,
                mobj: p.mobj,
                obj: p.obj,
                call: p.call,
            });
        }
        for ns in fx.net.drain(..) {
            self.out.push(EngineEffect::Protocol {
                dst: ns.dst,
                msg: ProtocolMsg::Asvm {
                    from: me,
                    msg: ns.msg,
                },
            });
        }
        for mobj in fx.settled.drain(..) {
            self.out.push(EngineEffect::CopySettled(mobj));
        }
        for (mobj, range) in fx.lock_granted.drain(..) {
            self.out.push(EngineEffect::LockGranted(mobj, range));
        }
        self.bumps.append(&mut fx.bumps);
        debug_assert!(
            self.vm.out.is_empty() && self.vm.cpu.is_zero(),
            "absorbing into a sink with undrained VM effects"
        );
        std::mem::swap(&mut self.vm, &mut fx.vm);
        self.asvm_scratch = fx;
    }

    /// Drains XMM's native effect struct, preserving emit order (see
    /// [`EngineFx::absorb_asvm`]).
    pub fn absorb_xmm(&mut self, mut fx: xmm::Fx) {
        self.cpu += fx.cpu;
        fx.cpu = Dur::ZERO;
        self.out.reserve(fx.pager.len() + fx.net.len());
        for p in fx.pager.drain(..) {
            self.out.push(EngineEffect::Pager {
                pager_node: p.pager_node,
                reply_to: p.reply_to,
                mobj: p.mobj,
                obj: p.obj,
                call: p.call,
            });
        }
        for xs in fx.net.drain(..) {
            self.out.push(EngineEffect::Protocol {
                dst: xs.dst,
                msg: ProtocolMsg::Xmm(xs.msg),
            });
        }
        debug_assert!(
            self.vm.out.is_empty() && self.vm.cpu.is_zero(),
            "absorbing into a sink with undrained VM effects"
        );
        std::mem::swap(&mut self.vm, &mut fx.vm);
        self.xmm_scratch = fx;
    }

    /// Converts ASVM's native effect struct, preserving emit order.
    pub fn from_asvm(me: NodeId, fx: asvm::Fx) -> EngineFx {
        let mut out = EngineFx::new();
        out.absorb_asvm(me, fx);
        out
    }

    /// Converts XMM's native effect struct, preserving emit order.
    pub fn from_xmm(fx: xmm::Fx) -> EngineFx {
        let mut out = EngineFx::new();
        out.absorb_xmm(fx);
        out
    }
}

/// A distributed-memory coherence protocol, as seen by the cluster node.
///
/// Implementations are sans-IO state machines: every entry point consumes
/// one stimulus and writes what must happen into a caller-provided
/// [`EngineFx`] sink — nothing here touches the event loop, the
/// transports or the pagers. The sink is reused across calls (the node
/// pools drained shells), which is what keeps the per-message hot path
/// allocation-free. [`AsvmNode`] (the paper's contribution) and
/// [`XmmNode`] (the NMK13 baseline) both implement it; the parity
/// property test drives the same workload through each via this exact
/// surface.
pub trait CoherenceEngine {
    /// Short engine name for traces and diagnostics.
    fn name(&self) -> &'static str;

    /// The memory object backing `obj`, if this engine manages it.
    fn mobj_of(&self, obj: VmObjId) -> Option<MemObjId>;

    /// Approximate bytes of protocol metadata this engine holds right now
    /// (copyset entries, hint caches, manager tables, in-flight request
    /// state). Purely a telemetry gauge for the bounded-memory claim —
    /// never consulted by the protocol itself.
    fn state_bytes(&self) -> u64;

    /// Handles an EMMI call from the local VM on a managed object.
    fn handle_emmi(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        call: EmmiToPager,
        out: &mut EngineFx,
    );

    /// Handles one inbound protocol message.
    fn handle_protocol(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        msg: ProtocolMsg,
        out: &mut EngineFx,
    );

    /// Handles a real pager's EMMI reply for a managed object.
    fn handle_pager_reply(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        reply: EmmiToKernel,
        out: &mut EngineFx,
    );

    /// Handles the kernel evicting a page of a managed object.
    #[allow(clippy::too_many_arguments)]
    fn handle_evict(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        page: PageIdx,
        data: PageData,
        dirty: bool,
        out: &mut EngineFx,
    );

    /// A delayed copy of `source` was created locally. Engines without
    /// distributed copy management ignore it.
    fn copy_created(
        &mut self,
        _now: Time,
        _vm: &mut VmSystem,
        _source: VmObjId,
        _out: &mut EngineFx,
    ) {
    }

    /// A fault completed. Returning `false` resumes the faulting task (the
    /// normal case); an engine that runs pseudo tasks (XMM's internal
    /// pagers) may claim the completion, returning `true` with follow-up
    /// effects in `out`.
    fn fault_completed(
        &mut self,
        _now: Time,
        _vm: &mut VmSystem,
        _task: TaskId,
        _fault: machvm::FaultId,
        _out: &mut EngineFx,
    ) -> bool {
        false
    }

    /// The failure detector suspects `peer` (see `docs/RELIABILITY.md`).
    /// Engines without recovery machinery ignore it — XMM deliberately
    /// stays the fragile baseline.
    fn peer_suspected(
        &mut self,
        _now: Time,
        _vm: &mut VmSystem,
        _peer: NodeId,
        _out: &mut EngineFx,
    ) {
    }

    /// The failure detector heard from a previously suspected `peer`.
    fn peer_cleared(&mut self, _now: Time, _vm: &mut VmSystem, _peer: NodeId, _out: &mut EngineFx) {
    }

    /// Periodic watchdog pass: re-issue requests stalled past their
    /// deadline. Driven by the heartbeat tick, only under active fault
    /// plans.
    fn on_watchdog(&mut self, _now: Time, _vm: &mut VmSystem, _out: &mut EngineFx) {}

    /// Downcast: the ASVM instance, if this engine is ASVM.
    fn as_asvm(&self) -> Option<&AsvmNode> {
        None
    }

    /// Downcast: mutable ASVM instance.
    fn as_asvm_mut(&mut self) -> Option<&mut AsvmNode> {
        None
    }

    /// Downcast: the XMM instance, if this engine is XMM.
    fn as_xmm(&self) -> Option<&XmmNode> {
        None
    }

    /// Downcast: mutable XMM instance.
    fn as_xmm_mut(&mut self) -> Option<&mut XmmNode> {
        None
    }
}

impl CoherenceEngine for AsvmNode {
    fn name(&self) -> &'static str {
        "asvm"
    }

    fn mobj_of(&self, obj: VmObjId) -> Option<MemObjId> {
        AsvmNode::mobj_of(self, obj)
    }

    fn state_bytes(&self) -> u64 {
        AsvmNode::state_bytes(self)
    }

    fn handle_emmi(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        call: EmmiToPager,
        out: &mut EngineFx,
    ) {
        let mut fx = out.take_asvm();
        AsvmNode::handle_emmi(self, now, vm, obj, call, &mut fx);
        out.absorb_asvm(self.me(), fx);
    }

    fn handle_protocol(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        msg: ProtocolMsg,
        out: &mut EngineFx,
    ) {
        match msg {
            ProtocolMsg::Asvm { from, msg } => {
                let mut fx = out.take_asvm();
                AsvmNode::handle_msg(self, now, vm, from, msg, &mut fx);
                out.absorb_asvm(self.me(), fx);
            }
            ProtocolMsg::Xmm(m) => {
                // Cannot happen in a well-formed cluster (every node runs
                // the same engine); drop rather than panic so a corrupt
                // message cannot take the whole simulation down.
                debug_assert!(false, "XMMI message delivered to ASVM engine: {m:?}");
            }
        }
    }

    fn handle_pager_reply(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        reply: EmmiToKernel,
        out: &mut EngineFx,
    ) {
        let mut fx = out.take_asvm();
        AsvmNode::on_pager_reply(self, now, vm, obj, reply, &mut fx);
        out.absorb_asvm(self.me(), fx);
    }

    fn handle_evict(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        page: PageIdx,
        data: PageData,
        dirty: bool,
        out: &mut EngineFx,
    ) {
        let mut fx = out.take_asvm();
        AsvmNode::evict_external(self, now, vm, obj, page, data, dirty, &mut fx);
        out.absorb_asvm(self.me(), fx);
    }

    fn copy_created(&mut self, now: Time, vm: &mut VmSystem, source: VmObjId, out: &mut EngineFx) {
        // Only copies of managed objects trigger the distributed version
        // bump (§3.7); anonymous shadow-chain internals stay local.
        let Some(mobj) = AsvmNode::mobj_of(self, source) else {
            return;
        };
        let mut fx = out.take_asvm();
        AsvmNode::copy_made_local(self, now, vm, mobj, &mut fx);
        out.absorb_asvm(self.me(), fx);
    }

    fn peer_suspected(&mut self, now: Time, vm: &mut VmSystem, peer: NodeId, out: &mut EngineFx) {
        let mut fx = out.take_asvm();
        AsvmNode::peer_suspected(self, now, vm, peer, &mut fx);
        out.absorb_asvm(self.me(), fx);
    }

    fn peer_cleared(&mut self, _now: Time, _vm: &mut VmSystem, peer: NodeId, _out: &mut EngineFx) {
        AsvmNode::peer_cleared(self, peer);
    }

    fn on_watchdog(&mut self, now: Time, vm: &mut VmSystem, out: &mut EngineFx) {
        let mut fx = out.take_asvm();
        AsvmNode::watchdog(self, now, vm, &mut fx);
        out.absorb_asvm(self.me(), fx);
    }

    fn as_asvm(&self) -> Option<&AsvmNode> {
        Some(self)
    }

    fn as_asvm_mut(&mut self) -> Option<&mut AsvmNode> {
        Some(self)
    }
}

impl CoherenceEngine for XmmNode {
    fn name(&self) -> &'static str {
        "xmm"
    }

    fn mobj_of(&self, obj: VmObjId) -> Option<MemObjId> {
        XmmNode::mobj_of(self, obj)
    }

    fn state_bytes(&self) -> u64 {
        XmmNode::state_bytes(self)
    }

    fn handle_emmi(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        call: EmmiToPager,
        out: &mut EngineFx,
    ) {
        let mut fx = out.take_xmm();
        XmmNode::handle_emmi(self, now, vm, obj, call, &mut fx);
        out.absorb_xmm(fx);
    }

    fn handle_protocol(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        msg: ProtocolMsg,
        out: &mut EngineFx,
    ) {
        match msg {
            ProtocolMsg::Xmm(m) => {
                let mut fx = out.take_xmm();
                XmmNode::handle_msg(self, now, vm, m, &mut fx);
                out.absorb_xmm(fx);
            }
            ProtocolMsg::Asvm { msg, .. } => {
                debug_assert!(false, "ASVM message delivered to XMM engine: {msg:?}");
            }
        }
    }

    fn handle_pager_reply(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        reply: EmmiToKernel,
        out: &mut EngineFx,
    ) {
        let mut fx = out.take_xmm();
        XmmNode::on_pager_reply(self, now, vm, obj, reply, &mut fx);
        out.absorb_xmm(fx);
    }

    fn handle_evict(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        obj: VmObjId,
        page: PageIdx,
        data: PageData,
        dirty: bool,
        out: &mut EngineFx,
    ) {
        let mut fx = out.take_xmm();
        XmmNode::evict_external(self, now, vm, obj, page, data, dirty, &mut fx);
        out.absorb_xmm(fx);
    }

    fn fault_completed(
        &mut self,
        now: Time,
        vm: &mut VmSystem,
        task: TaskId,
        fault: machvm::FaultId,
        out: &mut EngineFx,
    ) -> bool {
        // Internal-pager pseudo tasks never resume a program; their fault
        // completions feed the copy-pager state machine (§2.3.3).
        if !self.is_ip_task(task) {
            return false;
        }
        let mut fx = out.take_xmm();
        self.ip_fault_done(now, vm, task, fault, &mut fx);
        out.absorb_xmm(fx);
        true
    }

    fn as_xmm(&self) -> Option<&XmmNode> {
        Some(self)
    }

    fn as_xmm_mut(&mut self) -> Option<&mut XmmNode> {
        Some(self)
    }
}

/// Direction of a traced protocol event, relative to the recording node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceDir {
    /// The node sent the message.
    Send,
    /// The node received it.
    Recv,
}

/// One entry in the protocol trace ring: enough to reconstruct the message
/// interleaving around a failure without retaining page contents.
#[derive(Clone, Debug)]
pub struct ProtoEvent {
    /// Simulation time of the send or delivery.
    pub time: Time,
    /// The recording node.
    pub node: NodeId,
    /// The other end (destination for sends, sender's node for receives —
    /// XMMI messages do not carry a sender, so receives record the node
    /// itself there).
    pub peer: NodeId,
    /// Send or receive.
    pub dir: TraceDir,
    /// Message kind (the per-kind statistics key).
    pub kind: &'static str,
    /// The memory object.
    pub mobj: MemObjId,
    /// The page, for page-level messages.
    pub page: Option<PageIdx>,
}

impl std::fmt::Display for ProtoEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let arrow = match self.dir {
            TraceDir::Send => "->",
            TraceDir::Recv => "<-",
        };
        write!(
            f,
            "{:>14}  n{:<3} {} n{:<3} {:<28} {:?}",
            format!("{}", self.time),
            self.node.0,
            arrow,
            self.peer.0,
            self.kind,
            self.mobj,
        )?;
        if let Some(p) = self.page {
            write!(f, " page={}", p.0)?;
        }
        Ok(())
    }
}
