//! The unified message type of the simulated cluster.

use asvm::{AsvmConfig, AsvmMsg};
use machvm::{Access, EmmiToKernel, Inherit, MemObjId, TaskId, VmObjId};
use pager::PagerIn;
use svmsim::NodeId;
use xmm::XmmMsg;

use crate::program::Program;

/// Metadata a node needs to instantiate the local representation of a
/// memory object (carried in fork messages; known statically at setup).
#[derive(Clone, Copy, Debug)]
pub struct ObjInfo {
    /// Object length in pages.
    pub size_pages: u32,
    /// ASVM home node / XMM manager node.
    pub home: NodeId,
    /// I/O node hosting the backing pager.
    pub pager_node: NodeId,
    /// ASVM forwarding configuration.
    pub cfg: AsvmConfig,
    /// Distributed-copy peer node, if the object is a copy (ASVM).
    pub peer: Option<NodeId>,
    /// Distributed-copy source object, if any (ASVM).
    pub source: Option<MemObjId>,
}

/// One address-space region a forked child inherits.
#[derive(Debug)]
pub enum ForkEntry {
    /// Shared memory: the child maps the same memory object.
    Share {
        /// First virtual page.
        va_page: u64,
        /// Length in pages.
        pages: u32,
        /// Protection.
        prot: Access,
        /// Inheritance for further forks.
        inherit: Inherit,
        /// The object.
        mobj: MemObjId,
        /// Its metadata.
        info: ObjInfo,
    },
    /// ASVM delayed copy (§3.7): the child maps the source object shared,
    /// then creates a local copy object through the VM.
    CopyAsvm {
        /// First virtual page.
        va_page: u64,
        /// Length in pages.
        pages: u32,
        /// Protection.
        prot: Access,
        /// The (possibly just ASVM-ized) object being copied.
        source_mobj: MemObjId,
        /// Its metadata.
        info: ObjInfo,
    },
    /// XMM delayed copy (§2.3.3): the child maps a fresh object backed by
    /// an internal copy pager on the parent's node.
    CopyXmm {
        /// First virtual page.
        va_page: u64,
        /// Length in pages.
        pages: u32,
        /// Protection.
        prot: Access,
        /// The new internal-pager-backed object.
        mobj: MemObjId,
        /// Node running the internal pager (the fork snapshot).
        ip_node: NodeId,
    },
}

/// A remote fork in flight.
#[derive(Debug)]
pub struct ForkMsg {
    /// The child task to create.
    pub child: TaskId,
    /// Program the child runs.
    pub program: Box<dyn Program>,
    /// Inherited address space.
    pub entries: Vec<ForkEntry>,
    /// Node the forking parent runs on (fork-completion destination).
    pub parent_node: NodeId,
    /// The forking parent task (suspended until the fork settles).
    pub parent_task: TaskId,
}

/// Every message a cluster node can receive.
pub enum Msg {
    /// ASVM protocol traffic (STS).
    Asvm {
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: AsvmMsg,
    },
    /// ASVM protocol traffic framed on the per-link retry channel — used
    /// instead of [`Msg::Asvm`] whenever the machine's fault plan is
    /// active (see `asvm::retry` and `docs/RELIABILITY.md`).
    AsvmFrame {
        /// Sending node.
        from: NodeId,
        /// Per-`(from, dst)` sequence number.
        seq: u64,
        /// The framed protocol message.
        msg: AsvmMsg,
    },
    /// A *coalesced* ASVM frame on the reliable path: several protocol
    /// subframes (plus piggybacked owner hints) sharing one wire message.
    /// Only emitted when the node's [`asvm::CoalesceCfg`] is enabled —
    /// the classic [`Msg::Asvm`] path is untouched otherwise.
    AsvmBatch {
        /// Sending node.
        from: NodeId,
        /// Subframes and hints.
        body: asvm::FrameBody,
    },
    /// A coalesced ASVM frame on the per-link retry channel: the whole
    /// body is **one sequenced ARQ unit** — its subframes share loss,
    /// retransmission and duplicate-suppression fate.
    AsvmBatchFrame {
        /// Sending node.
        from: NodeId,
        /// Per-`(from, dst)` sequence number.
        seq: u64,
        /// Subframes and hints.
        body: asvm::FrameBody,
    },
    /// Acknowledgement of an [`Msg::AsvmFrame`] or [`Msg::AsvmBatchFrame`]
    /// (STS, header-only).
    AsvmAck {
        /// The acknowledging node (the frame's receiver).
        from: NodeId,
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Sender-side retry timer for the frame `seq` on the link to `dst`
    /// (self-posted; stale ticks are ignored).
    RetryTick {
        /// The link's destination node.
        dst: NodeId,
        /// The in-flight frame the timer covers.
        seq: u64,
    },
    /// Failure-detector liveness beacon, sent on the lossy STS path so a
    /// blacked-out link actually silences it (see `docs/RELIABILITY.md`).
    Heartbeat {
        /// The beaconing node.
        from: NodeId,
    },
    /// Self-posted heartbeat/watchdog timer (active fault plans only).
    HbTick,
    /// Reliable "I finished my work" broadcast: receivers stop expecting
    /// heartbeats from `from`, so a gracefully idle node is never falsely
    /// suspected.
    Farewell {
        /// The node whose tasks all completed.
        from: NodeId,
    },
    /// A one-sided remote read posted by `from`'s RNIC (RDMA backend
    /// only): the carried [`AsvmMsg::PageReq`] is served against this
    /// node's protocol state **without occupying its event handler** —
    /// the reply, when the owner can serve a plain copy, goes back as
    /// [`Msg::RdmaReadReply`] with zero host CPU charged here.
    RdmaRead {
        /// The requesting node.
        from: NodeId,
        /// The read request (always an `AsvmMsg::PageReq`).
        msg: AsvmMsg,
    },
    /// Completion of a one-sided read: the page copy DMA'd back into the
    /// requester's registered buffer. Handled exactly like the equivalent
    /// [`Msg::Asvm`] grant so protocol state stays backend-independent.
    RdmaReadReply {
        /// The serving node (the page owner).
        from: NodeId,
        /// The reply (always an `AsvmMsg::Grant`).
        msg: AsvmMsg,
    },
    /// XMMI traffic (NORMA-IPC).
    Xmm(XmmMsg),
    /// EMMI request to a pager task on this I/O node (NORMA-IPC).
    PagerReq(PagerIn),
    /// EMMI reply from a pager task (NORMA-IPC).
    PagerReply {
        /// Destination VM object on this node.
        obj: VmObjId,
        /// The reply.
        reply: EmmiToKernel,
    },
    /// Resume a task (fault completed, compute finished, barrier released).
    Resume(TaskId),
    /// Remote fork request (NORMA-IPC). Boxed: forks are rare but fat
    /// (program + inherited address map), and the envelope size of the
    /// *largest* variant is what every queued event pays for.
    Fork(Box<ForkMsg>),
    /// The fork completed on the child side (all copy notifications
    /// settled); the suspended parent resumes — `fork()` is synchronous.
    ForkDone {
        /// The parent task to resume.
        parent_task: TaskId,
    },
    /// A task reached barrier `id` (sent to the coordinator, node 0).
    Barrier {
        /// Barrier identifier.
        id: u32,
    },
    /// The coordinator releases barrier `id`.
    BarrierGo {
        /// Barrier identifier.
        id: u32,
    },
}

// The event queue's slot arena stores one `Msg` (inside its delivery
// envelope) per pending event, and `World::step` moves envelopes by value
// on every deliver/requeue — so the size of the *largest* variant is a
// hot-path constant. These assertions fail the build if a new variant
// (or a grown payload type) silently fattens every event in the system;
// box the offender instead (see `Msg::Fork`).
const _: () = assert!(
    std::mem::size_of::<Msg>() <= 80,
    "cluster::Msg grew past 80 bytes; box the fat variant"
);
const _: () = assert!(
    std::mem::size_of::<asvm::AsvmMsg>() <= 64,
    "asvm::AsvmMsg grew past 64 bytes; shrink or box the fat payload"
);
