//! End-to-end tests driving full clusters through the public facade.

use machvm::{Access, Inherit, TaskId};
use svmsim::NodeId;

use crate::program::{ScriptProgram, Step};
use crate::ssi::{ManagerKind, Ssi};

const BUDGET: u64 = 2_000_000;

fn setup_shared(
    kind: ManagerKind,
    nodes: u16,
    size_pages: u32,
) -> (Ssi, machvm::MemObjId, Vec<TaskId>) {
    let mut ssi = Ssi::new(nodes, kind, 42);
    let mobj = ssi.create_object(NodeId(0), size_pages, false);
    let mut tasks = Vec::new();
    for n in 0..nodes {
        let t = ssi.alloc_task();
        ssi.map_shared(
            t,
            NodeId(n),
            0,
            mobj,
            NodeId(0),
            size_pages,
            Access::Write,
            Inherit::Share,
        );
        tasks.push(t);
    }
    ssi.finalize();
    (ssi, mobj, tasks)
}

fn write_then_read(kind: ManagerKind) {
    let (mut ssi, _mobj, tasks) = setup_shared(kind, 2, 8);
    ssi.set_barrier_parties(2);
    // Task 0 on node 0 writes page 3, then hits the barrier.
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 3,
                value: 0xBEEF,
            },
            Step::Barrier(1),
            Step::Done,
        ])),
    );
    // Task 1 on node 1 waits, then reads page 3.
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(1),
            Step::Read { va_page: 3 },
            Step::Done,
        ])),
    );
    ssi.run(BUDGET).expect("must quiesce");
    assert!(ssi.all_done(), "all tasks must finish");
    // Verify the read observed the write: re-read node 1's VM state.
    let n1 = ssi.node(NodeId(1));
    assert!(n1.vm.can_access(tasks[1], 3, Access::Read));
}

#[test]
fn asvm_write_then_read_across_nodes() {
    write_then_read(ManagerKind::asvm());
}

#[test]
fn xmm_write_then_read_across_nodes() {
    write_then_read(ManagerKind::xmm());
}

fn coherence_ping_pong(kind: ManagerKind) {
    let (mut ssi, _mobj, tasks) = setup_shared(kind, 2, 4);
    ssi.set_barrier_parties(2);
    // Node 0: write v1, barrier, barrier, write v2, barrier.
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Barrier(1),
            Step::Barrier(2),
            Step::Write {
                va_page: 0,
                value: 2,
            },
            Step::Barrier(3),
            Step::Done,
        ])),
    );
    // Node 1: barrier, read (must be 1), barrier, barrier, read (must be 2).
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(1),
            Step::Read { va_page: 0 },
            Step::Barrier(2),
            Step::Barrier(3),
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
    );
    ssi.run(BUDGET).expect("must quiesce");
    assert!(ssi.all_done());
    let n1 = ssi.node(NodeId(1));
    let v = n1.vm.peek_task_page(tasks[1], 0);
    assert_eq!(v, Some(2), "reader must observe the second write");
}

#[test]
fn asvm_strong_coherence_ping_pong() {
    coherence_ping_pong(ManagerKind::asvm());
}

#[test]
fn xmm_strong_coherence_ping_pong() {
    coherence_ping_pong(ManagerKind::xmm());
}

#[test]
fn asvm_many_readers_one_writer() {
    let n = 8u16;
    let (mut ssi, mobj, tasks) = setup_shared(ManagerKind::asvm(), n, 4);
    ssi.set_barrier_parties(n as u32);
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 1,
                value: 77,
            },
            Step::Barrier(1),
            Step::Barrier(2),
            Step::Done,
        ])),
    );
    for i in 1..n {
        ssi.spawn(
            NodeId(i),
            tasks[i as usize],
            Box::new(ScriptProgram::new(vec![
                Step::Barrier(1),
                Step::Read { va_page: 1 },
                Step::Barrier(2),
                Step::Done,
            ])),
        );
    }
    ssi.run(BUDGET).expect("must quiesce");
    assert!(ssi.all_done());
    // Exactly one owner; every reader is in its reader list.
    let mut owners = 0;
    let mut readers = 0;
    for i in 0..n {
        let node = ssi.node(NodeId(i));
        if let Some(pi) = node
            .asvm()
            .and_then(|a| a.page_info(mobj, machvm::PageIdx(1)))
        {
            if pi.owner {
                owners += 1;
                readers = pi.readers.len();
            }
        }
    }
    assert_eq!(owners, 1, "exactly one owner per page");
    assert!(readers >= (n as usize) - 2, "owner tracks the readers");
    for i in 1..n {
        assert_eq!(
            ssi.node(NodeId(i)).vm.peek_task_page(tasks[i as usize], 1),
            Some(77)
        );
    }
}

#[test]
fn asvm_write_invalidates_readers() {
    let n = 4u16;
    let (mut ssi, mobj, tasks) = setup_shared(ManagerKind::asvm(), n, 4);
    ssi.set_barrier_parties(n as u32);
    // Everyone reads; then node 3 writes; then everyone re-reads.
    for i in 0..n {
        let mut steps = vec![Step::Read { va_page: 0 }, Step::Barrier(1)];
        if i == 3 {
            steps.push(Step::Write {
                va_page: 0,
                value: 5,
            });
        }
        steps.push(Step::Barrier(2));
        steps.push(Step::Read { va_page: 0 });
        steps.push(Step::Done);
        ssi.spawn(
            NodeId(i),
            tasks[i as usize],
            Box::new(ScriptProgram::new(steps)),
        );
    }
    ssi.run(BUDGET).expect("must quiesce");
    assert!(ssi.all_done());
    for i in 0..n {
        assert_eq!(
            ssi.node(NodeId(i)).vm.peek_task_page(tasks[i as usize], 0),
            Some(5),
            "node {i} must see the write"
        );
    }
    // Single-writer-or-multiple-readers: after the final reads, the owner
    // must hold the page read-only (it granted read copies).
    let owners: Vec<_> = (0..n)
        .filter_map(|i| {
            ssi.node(NodeId(i))
                .asvm()
                .and_then(|a| a.page_info(mobj, machvm::PageIdx(0)))
                .filter(|pi| pi.owner)
                .map(|pi| (i, pi.access))
        })
        .collect();
    assert_eq!(owners.len(), 1);
}

#[test]
fn asvm_fault_latency_in_expected_range() {
    // Sanity check against Table 1's order of magnitude: a remote write
    // fault should cost single-digit milliseconds, not micro or hundreds.
    let (mut ssi, _mobj, tasks) = setup_shared(ManagerKind::asvm(), 2, 4);
    ssi.set_barrier_parties(2);
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Barrier(1),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(1),
            Step::Write {
                va_page: 0,
                value: 2,
            },
            Step::Done,
        ])),
    );
    ssi.run(BUDGET).expect("must quiesce");
    let tally = ssi.stats().tally("fault.ms").expect("faults happened");
    assert!(tally.count >= 2);
    let mean_ms = tally.mean().as_millis_f64();
    assert!(
        mean_ms > 0.2 && mean_ms < 50.0,
        "fault latency {mean_ms} ms out of plausible range"
    );
}

#[test]
fn xmm_first_remote_read_pays_paging_space_write() {
    // The paper: "XMM writes a dirty page to the paging space when it is
    // requested for the first time by another node" — so the first remote
    // read of a dirty page costs tens of ms (disk), later ones do not.
    let (mut ssi, _mobj, tasks) = setup_shared(ManagerKind::xmm(), 3, 4);
    ssi.set_barrier_parties(3);
    ssi.spawn(
        NodeId(0),
        tasks[0],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 9,
            },
            Step::Barrier(1),
            Step::Barrier(2),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(1),
            Step::Read { va_page: 0 }, // first remote request: disk write
            Step::Barrier(2),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(2),
        tasks[2],
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(1),
            Step::Barrier(2),
            Step::Read { va_page: 0 }, // second remote request: no disk
            Step::Done,
        ])),
    );
    ssi.run(BUDGET).expect("must quiesce");
    assert!(ssi.all_done());
    assert_eq!(ssi.node(NodeId(1)).vm.peek_task_page(tasks[1], 0), Some(9));
    assert_eq!(ssi.node(NodeId(2)).vm.peek_task_page(tasks[2], 0), Some(9));
    // At least one paging-space (file) disk write happened on the I/O node.
    assert!(ssi.stats().counter("disk.writes") >= 1);
}

/// A program that forks a child inheriting shared memory, then both sides
/// communicate through it.
#[test]
fn fork_with_shared_region_connects_parent_and_child() {
    for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
        let mut ssi = Ssi::new(2, kind, 4);
        let mobj = ssi.create_object(NodeId(0), 4, false);
        let parent = ssi.alloc_task();
        ssi.map_shared(
            parent,
            NodeId(0),
            0,
            mobj,
            NodeId(0),
            4,
            Access::Write,
            Inherit::Share,
        );
        ssi.finalize();
        ssi.set_barrier_parties(2);

        let child_task = machvm::TaskId(7001);
        // Parent: write, fork (Share inheritance), barrier, read child's
        // reply.
        ssi.spawn(
            NodeId(0),
            parent,
            Box::new(ScriptProgram::new(vec![
                Step::Write {
                    va_page: 0,
                    value: 0xA,
                },
                Step::Fork {
                    child: child_task,
                    node: NodeId(1),
                    program: Box::new(ScriptProgram::new(vec![
                        Step::Read { va_page: 0 },
                        Step::Write {
                            va_page: 1,
                            value: 0xB,
                        },
                        Step::Barrier(1),
                        Step::Done,
                    ])),
                },
                Step::Barrier(1),
                Step::Read { va_page: 1 },
                Step::Done,
            ])),
        );
        ssi.run(50_000_000).expect("quiesces");
        assert!(ssi.all_done(), "{}: fork+share completes", kind.label());
        // Parent observed the child's write through the shared object.
        assert_eq!(
            ssi.node(NodeId(0)).vm.peek_task_page(parent, 1),
            Some(0xB),
            "{}: parent must see the child's shared write",
            kind.label()
        );
        assert_eq!(
            ssi.node(NodeId(1)).vm.peek_task_page(child_task, 0),
            Some(0xA),
            "{}: child must see the parent's shared write",
            kind.label()
        );
    }
}

#[test]
fn barriers_are_reusable_across_many_rounds() {
    let n = 3u16;
    let (mut ssi, _mobj, tasks) = setup_shared(ManagerKind::asvm(), n, 2);
    ssi.set_barrier_parties(n as u32);
    for i in 0..n {
        let steps: Vec<Step> = (0..20).map(Step::Barrier).chain([Step::Done]).collect();
        ssi.spawn(
            NodeId(i),
            tasks[i as usize],
            Box::new(ScriptProgram::new(steps)),
        );
    }
    ssi.run(10_000_000).expect("quiesces");
    assert!(ssi.all_done(), "20 barrier rounds complete");
}

#[test]
fn two_objects_do_not_interfere() {
    let mut ssi = Ssi::new(2, ManagerKind::asvm(), 6);
    let m1 = ssi.create_object(NodeId(0), 4, false);
    let m2 = ssi.create_object(NodeId(1), 4, false);
    let t0 = ssi.alloc_task();
    let t1 = ssi.alloc_task();
    for (t, node) in [(t0, NodeId(0)), (t1, NodeId(1))] {
        ssi.map_shared(t, node, 0, m1, NodeId(0), 4, Access::Write, Inherit::Share);
        ssi.map_shared(
            t,
            node,
            100,
            m2,
            NodeId(1),
            4,
            Access::Write,
            Inherit::Share,
        );
    }
    ssi.finalize();
    ssi.set_barrier_parties(2);
    ssi.spawn(
        NodeId(0),
        t0,
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Write {
                va_page: 100,
                value: 2,
            },
            Step::Barrier(1),
            Step::Done,
        ])),
    );
    ssi.spawn(
        NodeId(1),
        t1,
        Box::new(ScriptProgram::new(vec![
            Step::Barrier(1),
            Step::Read { va_page: 0 },
            Step::Read { va_page: 100 },
            Step::Done,
        ])),
    );
    ssi.run(10_000_000).expect("quiesces");
    assert!(ssi.all_done());
    let node1 = ssi.node(NodeId(1));
    assert_eq!(node1.vm.peek_task_page(t1, 0), Some(1));
    assert_eq!(node1.vm.peek_task_page(t1, 100), Some(2));
}

#[test]
fn mixed_inheritance_fork_shares_and_copies_correctly() {
    // One shared region (Share) and one private region (Copy) in the same
    // fork: the child communicates through the first and snapshots the
    // second.
    let mut ssi = Ssi::new(2, ManagerKind::asvm(), 12);
    let shared = ssi.create_object(NodeId(0), 2, false);
    let parent = ssi.alloc_task();
    ssi.map_shared(
        parent,
        NodeId(0),
        0,
        shared,
        NodeId(0),
        2,
        Access::Write,
        Inherit::Share,
    );
    {
        let n = ssi.world.node_mut(NodeId(0));
        let obj = n.vm.create_object(2, machvm::Backing::Anonymous);
        n.vm.map_object(parent, 50, 2, obj, 0, Access::Write, Inherit::Copy);
    }
    ssi.finalize();

    let child = machvm::TaskId(7002);
    ssi.spawn(
        NodeId(0),
        parent,
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 50,
                value: 0x51AB,
            },
            Step::Fork {
                child,
                node: NodeId(1),
                program: Box::new(ScriptProgram::new(vec![
                    Step::Read { va_page: 50 }, // snapshot of the private page
                    Step::Write {
                        va_page: 0,
                        value: 0xC0DE,
                    }, // via shared
                    Step::Done,
                ])),
            },
            // Overwrite the private page after the fork: must not leak.
            Step::Write {
                va_page: 50,
                value: 0x0BAD,
            },
            Step::Done,
        ])),
    );
    ssi.run(50_000_000).expect("quiesces");
    assert!(ssi.all_done());
    let n1 = ssi.node(NodeId(1));
    assert_eq!(n1.vm.peek_task_page(child, 50), Some(0x51AB), "snapshot");
    // Parent can read the child's shared write.
    let n0 = ssi.node(NodeId(0));
    // The write invalidated nothing at the parent (parent never read page
    // 0 of the shared object); fetch through the protocol by peeking the
    // child side instead.
    assert_eq!(n1.vm.peek_task_page(child, 0), Some(0xC0DE));
    let _ = n0;
}
