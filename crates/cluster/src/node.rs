//! The cluster node: kernel VM + coherence engine + pagers + task driver,
//! bound to the simulation event loop.
//!
//! Protocol work is delegated to the node's [`CoherenceEngine`]; everything
//! the engine wants done comes back as [`EngineFx`] and flows through one
//! interpreter (`ClusterNode::interpret`), which is the only place that
//! chooses transports, routes pager traffic, counts per-message-kind
//! statistics and records the protocol trace.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use asvm::{AsvmMsg, AsvmNode, FrameBody, LinkReceiver, LinkSender, RetryConfig, TimeoutVerdict};
use machvm::{
    Access, EmmiToKernel, EmmiToPager, Inherit, MemObjId, PageData, TaskId, VmEffect, VmObjId,
    VmSystem,
};
use pager::{DefaultPager, FilePager, PagerIn};
use svmsim::{Ctx, Dur, NodeBehavior, NodeId, NodeKind, Time, TraceRing};
use transport::Transport;
use xmm::{XmmBacking, XmmNode};

use crate::engine::{CoherenceEngine, EngineEffect, EngineFx, ProtoEvent, ProtocolMsg, TraceDir};
use crate::msg::{ForkEntry, ForkMsg, Msg, ObjInfo};
use crate::program::{Program, Step, TaskEnv};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TaskStatus {
    Running,
    WaitingFault,
    WaitingBarrier(u32),
    WaitingFork,
    WaitingLock,
    Done,
}

/// A child-side fork waiting for its copy notifications to settle.
struct DeferredFork {
    child: TaskId,
    program: Box<dyn Program>,
    waiting: std::collections::BTreeSet<MemObjId>,
    parent_node: NodeId,
    parent_task: TaskId,
}

/// One (re)transmission of an ASVM frame on the retry channel. The body
/// holds one subframe on the classic path and the whole coalesced batch
/// when [`asvm::CoalesceCfg`] is enabled — either way it is one sequenced
/// ARQ unit.
struct FrameTx {
    seq: u64,
    body: FrameBody,
    payload: u32,
    kind: &'static str,
    timeout: Dur,
}

/// One ASVM frame that exhausted its retries: the link is considered
/// dead and the failure is surfaced instead of hanging the protocol.
#[derive(Clone, Copy, Debug)]
pub struct LinkFailure {
    /// The unreachable peer.
    pub peer: NodeId,
    /// Sequence number of the abandoned frame.
    pub seq: u64,
    /// Statistics key of the abandoned protocol message.
    pub kind: &'static str,
    /// When the sender gave up.
    pub at: Time,
}

struct TaskState {
    program: Box<dyn Program>,
    repeat: Option<Step>,
    status: TaskStatus,
    last_read: Option<u64>,
    started: Time,
    finished: Option<Time>,
}

/// One node of the simulated multicomputer.
pub struct ClusterNode {
    /// This node's id.
    pub id: NodeId,
    /// The kernel VM system.
    pub vm: VmSystem,
    /// The coherence engine (ASVM or XMM behind one trait).
    pub engine: Box<dyn CoherenceEngine>,
    /// File pager (I/O nodes only).
    pub file_pager: Option<FilePager>,
    /// Default pager (I/O nodes only).
    pub default_pager: Option<DefaultPager>,
    tasks: BTreeMap<TaskId, TaskState>,
    /// Barrier coordination (node 0 only).
    pub barrier_parties: u32,
    barrier_counts: BTreeMap<u32, u32>,
    barrier_waiting: BTreeMap<u32, Vec<TaskId>>,
    next_mobj: u32,
    next_pseudo_task: u32,
    deferred_forks: Vec<DeferredFork>,
    /// Tasks waiting for a range-lock grant, keyed by (object, range).
    lock_waiters: BTreeMap<(MemObjId, u32, u32), TaskId>,
    /// Transport carrying ASVM protocol messages (STS by default; NORMA
    /// for the transport ablation — the state machines are identical).
    pub asvm_transport: Transport,
    /// Tasks that have finished on this node.
    pub tasks_done: u32,
    /// Protocol event trace, recorded only when installed
    /// ([`crate::Ssi::enable_trace`]).
    pub trace: Option<TraceRing<ProtoEvent>>,
    /// Retry/timeout policy of the ASVM frame channel (used only while
    /// the machine's fault plan is active).
    pub retry_cfg: RetryConfig,
    /// Sender halves of the per-peer ASVM retry channels. Each sequenced
    /// unit is a [`FrameBody`]: a singleton on the classic path, a whole
    /// coalesced batch when coalescing is on.
    link_tx: BTreeMap<NodeId, LinkSender<FrameBody>>,
    /// Receiver halves of the per-peer ASVM retry channels.
    link_rx: BTreeMap<NodeId, LinkReceiver<FrameBody>>,
    /// Message coalescing configuration (default off; set by the harness
    /// through [`ClusterNode::set_coalesce`]).
    coalesce: asvm::CoalesceCfg,
    /// Per-destination frame combiner, drained at the end of every
    /// scheduling step while coalescing is enabled.
    combiner: asvm::FrameCombiner,
    /// Peers this node already paid one-time link setup for (RDMA queue
    /// pair + memory registration; empty on connectionless backends).
    rdma_links: BTreeSet<NodeId>,
    /// Frames abandoned after retry exhaustion, in order of occurrence.
    pub link_failures: Vec<LinkFailure>,
    /// Failure detector: when each compute peer was last heard from
    /// (heartbeat arrivals; lazily baselined at our first tick).
    last_heard: BTreeMap<NodeId, Time>,
    /// Compute peers this node currently suspects dead.
    pub suspects: BTreeSet<NodeId>,
    /// Peers that announced graceful completion — silence from them is
    /// expected, not evidence.
    farewelled: BTreeSet<NodeId>,
    /// Drained [`EngineFx`] shells reused across engine calls, so the
    /// per-message hot path allocates nothing in steady state. A pool
    /// (not a single slot) because `interpret` re-enters through
    /// `fault_completed`.
    fx_pool: Vec<EngineFx>,
    /// Drained VM-effect sinks (same recycling discipline).
    effects_pool: Vec<machvm::Effects>,
    /// Drained drain-loop work queues.
    vmq_pool: Vec<VecDeque<machvm::Effects>>,
}

/// Failure-detector beacon period (active fault plans only).
const HB_PERIOD: Dur = Dur::from_millis(5);
/// Silence beyond this (8 missed beacons) turns into suspicion. Generous
/// against 10% loss: eight consecutive independent drops have probability
/// 1e-8 per peer-window.
const HB_SUSPECT_AFTER: Dur = Dur::from_millis(40);

impl ClusterNode {
    /// Builds a node.
    pub fn new(
        id: NodeId,
        vm: VmSystem,
        engine: Box<dyn CoherenceEngine>,
        kind: NodeKind,
        page_size: u32,
    ) -> Self {
        let (file_pager, default_pager) = match kind {
            NodeKind::Io => (
                Some(FilePager::new(page_size)),
                Some(DefaultPager::new(page_size, 1 << 40)),
            ),
            NodeKind::Compute => (None, None),
        };
        ClusterNode {
            id,
            vm,
            engine,
            file_pager,
            default_pager,
            tasks: BTreeMap::new(),
            barrier_parties: 0,
            barrier_counts: BTreeMap::new(),
            barrier_waiting: BTreeMap::new(),
            next_mobj: 1,
            next_pseudo_task: 1,
            deferred_forks: Vec::new(),
            lock_waiters: BTreeMap::new(),
            asvm_transport: Transport::STS,
            tasks_done: 0,
            trace: None,
            retry_cfg: RetryConfig::default(),
            link_tx: BTreeMap::new(),
            link_rx: BTreeMap::new(),
            coalesce: asvm::CoalesceCfg::default(),
            combiner: asvm::FrameCombiner::default(),
            rdma_links: BTreeSet::new(),
            link_failures: Vec::new(),
            last_heard: BTreeMap::new(),
            suspects: BTreeSet::new(),
            farewelled: BTreeSet::new(),
            fx_pool: Vec::new(),
            effects_pool: Vec::new(),
            vmq_pool: Vec::new(),
        }
    }

    /// The ASVM instance, if this node runs ASVM.
    pub fn asvm(&self) -> Option<&AsvmNode> {
        self.engine.as_asvm()
    }

    /// Mutable ASVM instance, if this node runs ASVM.
    pub fn asvm_mut(&mut self) -> Option<&mut AsvmNode> {
        self.engine.as_asvm_mut()
    }

    /// The XMM instance, if this node runs XMM.
    pub fn xmm(&self) -> Option<&XmmNode> {
        self.engine.as_xmm()
    }

    /// Mutable XMM instance, if this node runs XMM.
    pub fn xmm_mut(&mut self) -> Option<&mut XmmNode> {
        self.engine.as_xmm_mut()
    }

    /// Installs a task with its program (does not start it; post a
    /// [`Msg::Resume`] to kick it off).
    pub fn install_task(&mut self, task: TaskId, program: Box<dyn Program>, now: Time) {
        if !self.vm.has_task(task) {
            self.vm.create_task(task);
        }
        self.tasks.insert(
            task,
            TaskState {
                program,
                repeat: None,
                status: TaskStatus::Running,
                last_read: None,
                started: now,
                finished: None,
            },
        );
    }

    /// True if every installed task has finished.
    pub fn all_tasks_done(&self) -> bool {
        self.tasks.values().all(|t| t.status == TaskStatus::Done)
    }

    /// Completion time of `task`, if it finished.
    pub fn task_finished(&self, task: TaskId) -> Option<Time> {
        self.tasks.get(&task).and_then(|t| t.finished)
    }

    /// Wall-clock runtime of `task` (install to finish), if it finished.
    pub fn task_runtime(&self, task: TaskId) -> Option<svmsim::Dur> {
        let t = self.tasks.get(&task)?;
        Some(t.finished?.since(t.started))
    }

    /// Allocates a runtime memory object id unique to this node.
    fn alloc_mobj(&mut self) -> MemObjId {
        let m = MemObjId(((self.id.0 as u32 + 1) << 20) | self.next_mobj);
        self.next_mobj += 1;
        m
    }

    fn alloc_pseudo_task(&mut self) -> TaskId {
        let t = TaskId(0x8000_0000 | ((self.id.0 as u32) << 16) | self.next_pseudo_task);
        self.next_pseudo_task += 1;
        t
    }

    // --- The effect interpreter --------------------------------------------

    /// Records a protocol event if a trace ring is installed.
    fn record_trace(&mut self, now: Time, dir: TraceDir, peer: NodeId, msg: &ProtocolMsg) {
        if let Some(ring) = &mut self.trace {
            ring.push(ProtoEvent {
                time: now,
                node: self.id,
                peer,
                dir,
                kind: msg.stat_key(),
                mobj: msg.mobj(),
                page: msg.page(),
            });
        }
    }

    /// [`ClusterNode::record_trace`] for a bare ASVM message — used where
    /// subframes of a coalesced frame are traced individually without
    /// rebuilding a `ProtocolMsg` per subframe.
    fn record_trace_asvm(&mut self, now: Time, dir: TraceDir, peer: NodeId, msg: &AsvmMsg) {
        if let Some(ring) = &mut self.trace {
            ring.push(ProtoEvent {
                time: now,
                node: self.id,
                peer,
                dir,
                kind: msg.stat_key(),
                mobj: msg.mobj(),
                page: msg.page(),
            });
        }
    }

    /// Installs the coalescing configuration (harness setup, before any
    /// traffic), sizing the combiner to the configured frame capacity.
    pub fn set_coalesce(&mut self, cfg: asvm::CoalesceCfg) {
        self.coalesce = cfg;
        self.combiner = asvm::FrameCombiner::new(cfg.max_subframes);
    }

    /// The single pager-request send site: every EMMI request to a real
    /// pager — manager-issued or anonymous-memory — leaves through here,
    /// tagged with its per-call-kind counter.
    fn send_pager_req(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        pager_node: NodeId,
        reply_to: NodeId,
        mobj: MemObjId,
        obj: VmObjId,
        call: EmmiToPager,
    ) {
        let payload = pager_payload(&call, self.vm.page_size());
        let kind = call.stat_key();
        let pin = PagerIn {
            from_node: reply_to,
            obj,
            mobj,
            call,
        };
        Transport::NORMA.send_tagged(ctx, pager_node, payload, kind, Msg::PagerReq(pin));
    }

    /// Sends one protocol message, choosing the transport and counting the
    /// per-message-kind statistic.
    fn send_protocol(&mut self, ctx: &mut Ctx<'_, Msg>, dst: NodeId, msg: ProtocolMsg) {
        self.record_trace(ctx.now(), TraceDir::Send, dst, &msg);
        let ps = self.vm.page_size();
        let payload = msg.payload_bytes(ps);
        let kind = msg.stat_key();
        match msg {
            ProtocolMsg::Asvm { from, msg } => {
                // Remote sends take, in order of preference: a one-sided
                // read posting (RDMA backend, eligible request), the frame
                // combiner (coalescing enabled — buffered per destination
                // and flushed as one wire frame per peer at the end of
                // this scheduling step), the per-link retry channel (an
                // active fault plan, on backends whose reliability is in
                // software), or the classic direct path, byte-identical
                // to pre-fault builds. Loopback always goes direct. NORMA
                // (XMMI, EMMI, fork) stays on the reliable path in all
                // cases — it models Mach's guaranteed kernel-to-kernel
                // IPC.
                if dst != self.id
                    && self.asvm_transport.one_sided_reads()
                    && msg.one_sided_read_candidate(self.id)
                {
                    // Post the read as a one-sided pull: header-only on
                    // the wire, served by the target's NIC with zero host
                    // occupancy there. Travels the fault seam un-ARQ'd —
                    // a lost posting stalls only the requester, whose
                    // watchdog re-issues it (marked `recovering`, which
                    // forces the two-sided path on the retry).
                    self.charge_link_setup(ctx, dst);
                    if msg.is_speculative_req() {
                        // Speculative reads ride the same one-sided path;
                        // the counter keeps the prefetcher's share of NIC
                        // traffic visible.
                        ctx.stats().bump("transport.rdma.prefetch_read");
                    }
                    self.asvm_transport
                        .send_one_sided(ctx, dst, kind, || Msg::RdmaRead {
                            from,
                            msg: msg.clone(),
                        });
                } else if dst != self.id
                    && self.coalesce_enabled_for(msg.mobj())
                    && self.asvm_transport.supports_coalescing()
                {
                    if let Some(full) = self.combiner.push(dst, msg) {
                        // Frame hit its subframe capacity: send it now so
                        // order is preserved.
                        self.send_frame_body(ctx, dst, full);
                    }
                } else if dst != self.id
                    && ctx.machine().config.faults.is_active()
                    && self.asvm_transport.per_link_arq()
                {
                    let body = FrameBody::single(msg);
                    let seq =
                        self.link_tx
                            .entry(dst)
                            .or_default()
                            .enqueue(body.clone(), payload, kind);
                    let timeout = self.retry_cfg.timeout_for(0);
                    self.transmit_frame(
                        ctx,
                        dst,
                        FrameTx {
                            seq,
                            body,
                            payload,
                            kind,
                            timeout,
                        },
                    );
                } else {
                    // Two-sided control traffic on a fabric-reliable
                    // backend (`per_link_arq() == false`) also lands
                    // here under an active fault plan: hardware
                    // retransmission makes the link lossless, so it
                    // takes the reliable path by construction.
                    if dst != self.id {
                        self.charge_link_setup(ctx, dst);
                    }
                    self.asvm_transport.send_tagged(
                        ctx,
                        dst,
                        payload,
                        kind,
                        Msg::Asvm { from, msg },
                    );
                }
            }
            ProtocolMsg::Xmm(m) => {
                Transport::NORMA.send_tagged(ctx, dst, payload, kind, Msg::Xmm(m));
            }
        }
    }

    /// Whether protocol sends for `mobj` should go through the frame
    /// combiner: the object's own configuration where the engine has one
    /// (so per-object overrides and runtime policy switches take effect),
    /// the node-level default otherwise (XMM, or an object not registered
    /// here). Identical to the node-level switch whenever every object was
    /// registered with the cluster-wide configuration.
    fn coalesce_enabled_for(&self, mobj: MemObjId) -> bool {
        match self.engine.as_asvm().and_then(|a| a.object_cfg(mobj)) {
            Some(cfg) => cfg.coalesce.enabled,
            None => self.coalesce.enabled,
        }
    }

    /// Charges the backend's one-time per-peer link setup (queue pair
    /// creation + memory registration) on first contact with `dst`. Free
    /// on the connectionless Paragon transports, so the classic paths are
    /// untouched.
    fn charge_link_setup(&mut self, ctx: &mut Ctx<'_, Msg>, dst: NodeId) {
        let setup = self
            .asvm_transport
            .link_setup_cpu(&ctx.machine().config.cost);
        if setup.is_zero() || !self.rdma_links.insert(dst) {
            return;
        }
        ctx.stats().bump("transport.rdma.link_setup");
        ctx.charge_msg_cpu(setup);
    }

    /// Resolves a one-sided read after the engine processed it.
    ///
    /// The NIC can complete the read by itself exactly when the engine's
    /// entire answer is one plain copy-grant back to the requester (no
    /// ownership handover, no forwarding hop, no pager dispatch, no
    /// invalidation fan-out). In that case the host's protocol-handler
    /// CPU is cancelled — the request was served out of registered memory
    /// without this node's event handler running — and the grant leaves
    /// as a zero-send-CPU [`Msg::RdmaReadReply`]. Any VM work the engine
    /// queued (downgrading a writable mapping so the registered copy is
    /// stable) still runs on the host *before* the reply departs: DMA
    /// cannot outrun the shootdown.
    ///
    /// Every other outcome falls back to the two-sided path: the NIC
    /// raises the request to the host (charging the interrupt-driven
    /// receive cost its delivery envelope skipped) and the effects are
    /// interpreted normally, so protocol state stays identical across
    /// backends.
    fn finish_rdma_read(&mut self, ctx: &mut Ctx<'_, Msg>, requester: NodeId, fx: &mut EngineFx) {
        let nic_served = fx.out.len() == 1
            && matches!(
                &fx.out[0],
                EngineEffect::Protocol {
                    dst,
                    msg: ProtocolMsg::Asvm {
                        msg: AsvmMsg::Grant {
                            ownership: false,
                            pull_snapshot: false,
                            ..
                        },
                        ..
                    },
                } if *dst == requester
            );
        if !nic_served {
            ctx.stats().bump("transport.rdma.read_fallback");
            let recv = ctx.machine().config.cost.rdma_ctrl_recv_cpu;
            ctx.charge_msg_cpu(recv);
            self.run_fx(ctx, fx);
            return;
        }
        let Some(EngineEffect::Protocol { dst, msg: pm }) = fx.out.pop() else {
            unreachable!("nic_served matched a single Protocol effect");
        };
        fx.cpu = Dur::ZERO;
        ctx.stats().bump("transport.rdma.read_served");
        // Drain the residual effects first (hint bumps, the mapping
        // downgrade): the reply may not depart before the host finished
        // making the page stable.
        self.run_fx(ctx, fx);
        self.record_trace(ctx.now(), TraceDir::Send, dst, &pm);
        let ProtocolMsg::Asvm { from, msg } = pm else {
            unreachable!("nic_served matched an ASVM grant");
        };
        let payload = msg.payload_bytes(self.vm.page_size());
        let kind = msg.stat_key();
        let transport = self.asvm_transport;
        transport.send_one_sided_reply(ctx, dst, payload, kind, || Msg::RdmaReadReply {
            from,
            msg: msg.clone(),
        });
    }

    /// Puts one (re)transmission of frame `seq` on the lossy wire and arms
    /// its retry timer. With coalescing off the wire format is the classic
    /// single-message [`Msg::AsvmFrame`] (byte-identical to pre-coalescing
    /// builds); with it on, the whole body travels as one
    /// [`Msg::AsvmBatchFrame`] — one fault decision, one sequence number.
    fn transmit_frame(&mut self, ctx: &mut Ctx<'_, Msg>, dst: NodeId, frame: FrameTx) {
        let from = self.id;
        let FrameTx {
            seq,
            body,
            payload,
            kind,
            timeout,
        } = frame;
        // Wire-format choice: a body that actually coalesced anything —
        // several subframes, or piggybacked hints — must travel as a
        // batch frame even when the node-level switch is off (per-object
        // coalescing). With everything off, bodies are always hint-less
        // singletons and the classic format is byte-identical to
        // pre-coalescing builds.
        if self.coalesce.enabled || body.subframes() > 1 || !body.hints.is_empty() {
            let subframes = body.subframes();
            self.asvm_transport
                .send_coalesced_lossy(ctx, dst, subframes, payload, || Msg::AsvmBatchFrame {
                    from,
                    seq,
                    body: body.clone(),
                });
        } else {
            let msg = &body.msgs[0];
            self.asvm_transport
                .send_lossy(ctx, dst, payload, kind, || Msg::AsvmFrame {
                    from,
                    seq,
                    msg: msg.clone(),
                });
        }
        let at = ctx.now() + timeout;
        ctx.post_self(at, Msg::RetryTick { dst, seq });
    }

    /// Sends one coalesced frame body to `dst`: attaches piggybacked
    /// owner hints, counts the logical per-kind and `asvm.coalesce.*`
    /// statistics, and puts the frame on the wire — through the ARQ
    /// channel as one sequenced unit when the fault plan is active,
    /// directly otherwise.
    fn send_frame_body(&mut self, ctx: &mut Ctx<'_, Msg>, dst: NodeId, mut body: FrameBody) {
        // Every data/ack subframe piggybacks the sender's current owner
        // view for its page, so the receiver's dynamic hint cache stays
        // warm without dedicated OwnerHint traffic. Computed at flush
        // time — after the engine finished handling the event — so the
        // hints reflect post-transition truth. Telling the destination
        // about itself is useless; skip those.
        if self.coalesce.piggyback_hints {
            if let Some(eng) = self.engine.as_asvm() {
                let mut hints = Vec::new();
                for m in &body.msgs {
                    if !(m.carries_data() || m.is_ack_class()) {
                        continue;
                    }
                    if let Some(page) = m.page() {
                        let mobj = m.mobj();
                        if let Some(owner) = eng.owner_view(mobj, page) {
                            if owner != dst {
                                hints.push((mobj, page, owner));
                            }
                        }
                    }
                }
                for h in hints {
                    body.push_hint(h);
                }
                // Prefetch hint tier: beyond the pages this frame already
                // addresses, attach the sender's owner view for the pages
                // it predicts `dst` will fault on *next* (per-peer demand
                // stream detector), so the peer's dynamic hint cache is
                // warm before the fault even happens. Zero extra frames —
                // only hint bytes on a frame already flowing.
                let mut window = Vec::new();
                let mut seen: Vec<MemObjId> = Vec::new();
                for m in &body.msgs {
                    let mobj = m.mobj();
                    if seen.contains(&mobj) {
                        continue;
                    }
                    seen.push(mobj);
                    eng.prefetch_hint_window(mobj, dst, &mut window);
                }
                if !window.is_empty() {
                    ctx.stats().add("asvm.prefetch.hint", window.len() as u64);
                    for h in window {
                        body.push_hint(h);
                    }
                }
            }
        }
        let ps = self.vm.page_size();
        let payload = body.payload_bytes(ps);
        let subframes = body.subframes();
        // Logical accounting is per *subframe* — the asvm.msg.* counters
        // mean the same thing with coalescing on or off. The frame itself
        // and the coalescing wins get their own counters; messages per
        // fault is (Σ asvm.msg.* − merged) / faults.completed.
        for m in &body.msgs {
            ctx.stats().bump(m.stat_key());
        }
        ctx.stats().bump("asvm.frames");
        if subframes > 1 {
            ctx.stats()
                .add("asvm.coalesce.merged", (subframes - 1) as u64);
        }
        let acks = body.acks_riding_data();
        if acks > 0 {
            ctx.stats().add("asvm.coalesce.piggyback_ack", acks as u64);
        }
        if !body.hints.is_empty() {
            ctx.stats()
                .add("asvm.coalesce.piggyback_hint", body.hints.len() as u64);
        }
        let from = self.id;
        if ctx.machine().config.faults.is_active() {
            let kind = body.msgs[0].stat_key();
            let seq = self
                .link_tx
                .entry(dst)
                .or_default()
                .enqueue(body.clone(), payload, kind);
            let timeout = self.retry_cfg.timeout_for(0);
            self.transmit_frame(
                ctx,
                dst,
                FrameTx {
                    seq,
                    body,
                    payload,
                    kind,
                    timeout,
                },
            );
        } else {
            self.asvm_transport.send_coalesced(
                ctx,
                dst,
                subframes,
                payload,
                Msg::AsvmBatch { from, body },
            );
        }
    }

    /// Drains the frame combiner at the end of a scheduling step: one
    /// coalesced frame per destination, in destination order.
    fn flush_coalesced(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.combiner.is_empty() {
            return;
        }
        for (dst, body) in self.combiner.drain() {
            self.send_frame_body(ctx, dst, body);
        }
    }

    /// Delivers one arriving frame body: applies piggybacked owner hints
    /// (first — a subframe carrying fresher truth overwrites them), then
    /// handles every subframe in order, exactly like the equivalent
    /// sequence of singleton frames.
    fn deliver_body(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, body: FrameBody) {
        if !body.hints.is_empty() {
            if let Some(eng) = self.engine.as_asvm_mut() {
                let mut applied = 0u64;
                for (mobj, page, owner) in &body.hints {
                    if eng.apply_owner_hint(*mobj, *page, *owner) {
                        applied += 1;
                    }
                }
                if applied > 0 {
                    ctx.stats().add("asvm.coalesce.hint_applied", applied);
                }
            }
        }
        for m in body.msgs {
            let pm = ProtocolMsg::Asvm { from, msg: m };
            self.record_trace(ctx.now(), TraceDir::Recv, from, &pm);
            let mut fx = self.take_fx();
            self.engine
                .handle_protocol(ctx.now(), &mut self.vm, pm, &mut fx);
            self.run_fx(ctx, &mut fx);
            self.put_fx(fx);
        }
    }

    /// Handles a sender-side retry timer firing for frame `seq` to `dst`.
    fn on_retry_tick(&mut self, ctx: &mut Ctx<'_, Msg>, dst: NodeId, seq: u64) {
        let cfg = self.retry_cfg;
        let verdict = self.link_tx.entry(dst).or_default().on_timeout(seq, &cfg);
        match verdict {
            TimeoutVerdict::Stale => {}
            TimeoutVerdict::Resend {
                msg: body,
                payload,
                kind,
                next_timeout,
            } => {
                ctx.stats().bump("asvm.retry.timeout");
                ctx.stats().bump("asvm.retry.resent");
                let now = ctx.now();
                for m in &body.msgs {
                    self.record_trace_asvm(now, TraceDir::Send, dst, m);
                }
                self.transmit_frame(
                    ctx,
                    dst,
                    FrameTx {
                        seq,
                        body,
                        payload,
                        kind,
                        timeout: next_timeout,
                    },
                );
            }
            TimeoutVerdict::Exhausted { kind } => {
                ctx.stats().bump("asvm.retry.exhausted");
                self.link_failures.push(LinkFailure {
                    peer: dst,
                    seq,
                    kind,
                    at: ctx.now(),
                });
                // Retry exhaustion is direct evidence the peer is gone —
                // stronger and often earlier than heartbeat silence.
                self.suspect_peer(ctx, dst);
            }
        }
    }

    // --- Failure detector (docs/RELIABILITY.md) -----------------------------

    /// One heartbeat/watchdog period: beacon to every compute peer over
    /// the lossy path, suspect peers silent too long, and let the engine
    /// re-issue stalled requests. Self-rescheduling while work remains;
    /// armed by the harness only when the fault plan is active.
    fn on_hb_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let me = self.id;
        let peers: Vec<NodeId> = ctx.machine().compute_nodes().filter(|n| *n != me).collect();
        for n in &peers {
            self.asvm_transport
                .send_lossy(ctx, *n, 0, "cluster.hb", || Msg::Heartbeat { from: me });
        }
        let mut newly = Vec::new();
        for n in &peers {
            if self.farewelled.contains(n) || self.suspects.contains(n) {
                continue;
            }
            // Lazily baseline at our first tick, so suspicion always
            // means "silent for the full window while we listened". Not
            // `now.since(at)`: arrival stamps carry receive-side CPU
            // charges, so they can sit slightly past this tick's delivery
            // time.
            let at = *self.last_heard.entry(*n).or_insert(now);
            if now > at + HB_SUSPECT_AFTER {
                newly.push(*n);
            }
        }
        for n in newly {
            self.suspect_peer(ctx, n);
        }
        let mut fx = self.take_fx();
        self.engine.on_watchdog(now, &mut self.vm, &mut fx);
        self.run_fx(ctx, &mut fx);
        self.put_fx(fx);
        if !self.all_tasks_done() {
            ctx.post_self(now + HB_PERIOD, Msg::HbTick);
        }
    }

    /// Marks `peer` suspected and lets the engine unwind everything that
    /// waits on it. Idempotent.
    fn suspect_peer(&mut self, ctx: &mut Ctx<'_, Msg>, peer: NodeId) {
        if peer == self.id || !self.suspects.insert(peer) {
            return;
        }
        ctx.stats().bump("cluster.suspect.count");
        if let Some(ring) = &mut self.trace {
            ring.push(ProtoEvent {
                time: ctx.now(),
                node: self.id,
                peer,
                dir: TraceDir::Recv,
                kind: "cluster.suspect",
                mobj: MemObjId(0),
                page: None,
            });
        }
        let mut fx = self.take_fx();
        self.engine
            .peer_suspected(ctx.now(), &mut self.vm, peer, &mut fx);
        self.run_fx(ctx, &mut fx);
        self.put_fx(fx);
    }

    /// Interprets one engine effect batch in place: charges CPU, performs
    /// the sends and completions in order, and queues the VM effects for
    /// draining. The sink comes back drained (vector capacities intact)
    /// so the caller can return it to the shell pool.
    fn interpret(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        fx: &mut EngineFx,
        q: &mut VecDeque<machvm::Effects>,
    ) {
        if !fx.cpu.is_zero() {
            ctx.charge_msg_cpu(fx.cpu);
            fx.cpu = Dur::ZERO;
        }
        for k in fx.bumps.drain(..) {
            ctx.stats().bump(k);
        }
        for eff in fx.out.drain(..) {
            match eff {
                EngineEffect::Pager {
                    pager_node,
                    reply_to,
                    mobj,
                    obj,
                    call,
                } => self.send_pager_req(ctx, pager_node, reply_to, mobj, obj, call),
                EngineEffect::Protocol { dst, msg } => self.send_protocol(ctx, dst, msg),
                EngineEffect::CopySettled(mobj) => self.copy_settled(ctx, mobj),
                EngineEffect::LockGranted(mobj, range) => {
                    let key = (mobj, range.first.0, range.count);
                    if let Some(task) = self.lock_waiters.remove(&key) {
                        if let Some(st) = self.tasks.get_mut(&task) {
                            if st.status == TaskStatus::WaitingLock {
                                st.status = TaskStatus::Running;
                            }
                        }
                        let now = ctx.now();
                        ctx.post_self(now, Msg::Resume(task));
                    }
                }
            }
        }
        let vm = std::mem::replace(&mut fx.vm, self.effects_pool.pop().unwrap_or_default());
        q.push_back(vm);
    }

    /// A drained [`EngineFx`] shell to write the next engine call into.
    fn take_fx(&mut self) -> EngineFx {
        self.fx_pool.pop().unwrap_or_default()
    }

    /// Returns a drained shell to the pool.
    fn put_fx(&mut self, fx: EngineFx) {
        debug_assert!(fx.out.is_empty() && fx.bumps.is_empty() && fx.cpu.is_zero());
        self.fx_pool.push(fx);
    }

    /// A recycled empty VM-effect sink (capacity retained from prior use).
    fn take_effects(&mut self) -> machvm::Effects {
        self.effects_pool.pop().unwrap_or_default()
    }

    /// Interprets an effect batch and drains everything it triggers.
    fn run_fx(&mut self, ctx: &mut Ctx<'_, Msg>, fx: &mut EngineFx) {
        let mut q = self.vmq_pool.pop().unwrap_or_default();
        self.interpret(ctx, fx, &mut q);
        self.drain_queue(ctx, &mut q);
        self.vmq_pool.push(q);
    }

    /// Processes a batch of VM effects (and everything they trigger) to
    /// completion.
    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>, first: machvm::Effects) {
        let mut q = self.vmq_pool.pop().unwrap_or_default();
        q.push_back(first);
        self.drain_queue(ctx, &mut q);
        self.vmq_pool.push(q);
    }

    fn drain_queue(&mut self, ctx: &mut Ctx<'_, Msg>, q: &mut VecDeque<machvm::Effects>) {
        while let Some(mut fx) = q.pop_front() {
            if !fx.cpu.is_zero() {
                ctx.charge_msg_cpu(fx.cpu);
                fx.cpu = Dur::ZERO;
            }
            for eff in fx.out.drain(..) {
                self.apply_vm_effect(ctx, eff, q);
            }
            self.effects_pool.push(fx);
        }
    }

    fn apply_vm_effect(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        eff: VmEffect,
        q: &mut VecDeque<machvm::Effects>,
    ) {
        match eff {
            VmEffect::FaultDone {
                task,
                fault,
                started,
            } => {
                let latency = ctx.now().since(started);
                ctx.stats().sample("fault.ms", latency);
                ctx.stats().record("fault.latency", latency);
                ctx.stats().bump("faults.completed");
                let mut fx = self.take_fx();
                if self
                    .engine
                    .fault_completed(ctx.now(), &mut self.vm, task, fault, &mut fx)
                {
                    self.interpret(ctx, &mut fx, q);
                } else {
                    let now = ctx.now();
                    ctx.post_self(now, Msg::Resume(task));
                }
                self.put_fx(fx);
            }
            VmEffect::ToPager { obj, backing, call } => match backing {
                machvm::Backing::External(mobj) => {
                    if self.engine.mobj_of(obj).is_none() {
                        panic!("EMMI for unmanaged external object {obj:?} ({mobj:?})");
                    }
                    let mut fx = self.take_fx();
                    self.engine
                        .handle_emmi(ctx.now(), &mut self.vm, obj, call, &mut fx);
                    self.interpret(ctx, &mut fx, q);
                    self.put_fx(fx);
                }
                machvm::Backing::Anonymous => {
                    // Node-private anonymous memory pages out to the default
                    // pager on this node's I/O node.
                    let io = ctx.machine().io_node_for(self.id);
                    let me = self.id;
                    self.send_pager_req(ctx, io, me, MemObjId(0), obj, call);
                }
            },
            VmEffect::CopyCreated { source, .. } => {
                let mut fx = self.take_fx();
                self.engine
                    .copy_created(ctx.now(), &mut self.vm, source, &mut fx);
                self.interpret(ctx, &mut fx, q);
                self.put_fx(fx);
            }
            VmEffect::EvictExternal {
                obj,
                page,
                data,
                dirty,
                ..
            } => {
                let mut fx = self.take_fx();
                self.engine
                    .handle_evict(ctx.now(), &mut self.vm, obj, page, data, dirty, &mut fx);
                self.interpret(ctx, &mut fx, q);
                self.put_fx(fx);
            }
        }
    }

    /// A copy notification settled: release any fork waiting on it.
    fn copy_settled(&mut self, ctx: &mut Ctx<'_, Msg>, mobj: MemObjId) {
        let mut ready = Vec::new();
        for df in &mut self.deferred_forks {
            df.waiting.remove(&mobj);
            if df.waiting.is_empty() {
                ready.push(df.child);
            }
        }
        let done: Vec<DeferredFork> = {
            let mut rest = Vec::new();
            let mut done = Vec::new();
            for df in self.deferred_forks.drain(..) {
                if ready.contains(&df.child) {
                    done.push(df);
                } else {
                    rest.push(df);
                }
            }
            self.deferred_forks = rest;
            done
        };
        for df in done {
            self.complete_fork(ctx, df);
        }
    }

    /// Installs the child task and tells the parent its fork returned.
    fn complete_fork(&mut self, ctx: &mut Ctx<'_, Msg>, df: DeferredFork) {
        self.install_task(df.child, df.program, ctx.now());
        let now = ctx.now();
        ctx.post_self(now, Msg::Resume(df.child));
        Transport::NORMA.send(
            ctx,
            df.parent_node,
            0,
            Msg::ForkDone {
                parent_task: df.parent_task,
            },
        );
    }

    // --- Task driver ----------------------------------------------------------

    fn run_task(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId) {
        loop {
            let Some(st) = self.tasks.get_mut(&task) else {
                return;
            };
            if st.status != TaskStatus::Running {
                return;
            }
            let step = match st.repeat.take() {
                Some(s) => s,
                None => {
                    let mut env = TaskEnv {
                        task,
                        node: self.id,
                        now: ctx.now(),
                        last_read: st.last_read,
                    };
                    st.program.step(&mut env)
                }
            };
            match step {
                Step::Compute(d) => {
                    let done = ctx.charge_compute(d);
                    ctx.post_self(done, Msg::Resume(task));
                    return;
                }
                Step::Touch { va_page, access } => {
                    if !self.ensure_access(
                        ctx,
                        task,
                        va_page,
                        access,
                        Step::Touch { va_page, access },
                    ) {
                        return;
                    }
                }
                Step::Read { va_page } => {
                    // Fused access-check + read: one translation walk on the
                    // (overwhelmingly common) hit path instead of two.
                    if let Some(data) = self.vm.try_read_page(ctx.now(), task, va_page) {
                        self.tasks.get_mut(&task).unwrap().last_read = Some(data.word());
                        self.note_hit_access(ctx, task, va_page, false);
                    } else if self.fault_for(
                        ctx,
                        task,
                        va_page,
                        Access::Read,
                        Step::Read { va_page },
                    ) {
                        // The fault resolved locally (zero-fill / copy-up).
                        let v = self.vm.read_page(ctx.now(), task, va_page).word();
                        self.tasks.get_mut(&task).unwrap().last_read = Some(v);
                    } else {
                        return;
                    }
                }
                Step::Write { va_page, value } => {
                    if self
                        .vm
                        .try_write_page(ctx.now(), task, va_page, PageData::Word(value))
                    {
                        self.note_hit_access(ctx, task, va_page, true);
                    } else {
                        if !self.fault_for(
                            ctx,
                            task,
                            va_page,
                            Access::Write,
                            Step::Write { va_page, value },
                        ) {
                            return;
                        }
                        self.vm
                            .write_page(ctx.now(), task, va_page, PageData::Word(value));
                    }
                }
                Step::LockRange { va_page, pages } => {
                    let (mobj, range) = self.resolve_range(task, va_page, pages);
                    let me = self.id;
                    let mut afx = asvm::Fx::new();
                    self.engine
                        .as_asvm_mut()
                        .expect("range locks require an ASVM cluster")
                        .lock_range(mobj, range, &mut afx);
                    let granted = afx
                        .lock_granted
                        .iter()
                        .any(|(m, r)| *m == mobj && *r == range);
                    if !granted {
                        self.lock_waiters
                            .insert((mobj, range.first.0, range.count), task);
                        let st = self.tasks.get_mut(&task).unwrap();
                        st.status = TaskStatus::WaitingLock;
                    }
                    let mut fx = EngineFx::from_asvm(me, afx);
                    self.run_fx(ctx, &mut fx);
                    if !granted {
                        return;
                    }
                }
                Step::UnlockRange { va_page, pages } => {
                    let (mobj, range) = self.resolve_range(task, va_page, pages);
                    let me = self.id;
                    let mut afx = asvm::Fx::new();
                    self.engine
                        .as_asvm_mut()
                        .expect("range locks require an ASVM cluster")
                        .unlock_range(mobj, range, &mut afx);
                    let mut fx = EngineFx::from_asvm(me, afx);
                    self.run_fx(ctx, &mut fx);
                }
                Step::Barrier(id) => {
                    let st = self.tasks.get_mut(&task).unwrap();
                    st.status = TaskStatus::WaitingBarrier(id);
                    self.barrier_waiting.entry(id).or_default().push(task);
                    let coord = NodeId(0);
                    Transport::STS.send(ctx, coord, 0, Msg::Barrier { id });
                    return;
                }
                Step::Fork {
                    child,
                    node,
                    program,
                } => {
                    // fork() is synchronous: the parent suspends until the
                    // child's address space (and the copy notifications it
                    // triggers) settle.
                    self.fork_to(ctx, task, child, node, program);
                    let st = self.tasks.get_mut(&task).unwrap();
                    st.status = TaskStatus::WaitingFork;
                    return;
                }
                Step::Done => {
                    let st = self.tasks.get_mut(&task).unwrap();
                    st.status = TaskStatus::Done;
                    st.finished = Some(ctx.now());
                    self.tasks_done += 1;
                    ctx.stats().bump("tasks.done");
                    // Our heartbeats stop with the tick loop; a reliable
                    // farewell keeps peers from reading that as death.
                    if self.all_tasks_done()
                        && ctx.machine().config.faults.is_active()
                        && self.engine.as_asvm().is_some()
                    {
                        let me = self.id;
                        for n in ctx.machine().compute_nodes().collect::<Vec<_>>() {
                            if n != me {
                                Transport::STS.send(ctx, n, 0, Msg::Farewell { from: me });
                            }
                        }
                    }
                    return;
                }
            }
        }
    }

    /// Tells the ASVM prefetcher about a demand access that hit in local
    /// memory (no fault): a speculative fill covering the page settles —
    /// as a prefetch hit when read, as wasted when a write clobbered it
    /// unread — and detector-gated streams top their window back up on
    /// read hits. Gated on `wants_access_notes` so runs without any
    /// prefetch-configured object pay exactly one boolean test per hit.
    fn note_hit_access(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId, va_page: u64, write: bool) {
        if !self
            .engine
            .as_asvm()
            .is_some_and(|a| a.wants_access_notes())
        {
            return;
        }
        let Some(entry) = self.vm.address_map(task).lookup(va_page) else {
            return;
        };
        let (obj, page) = (entry.object, entry.object_page(va_page));
        let me = self.id;
        let mut afx = asvm::Fx::new();
        self.engine.as_asvm_mut().unwrap().prefetch_note_access(
            ctx.now(),
            &mut self.vm,
            obj,
            page,
            write,
            &mut afx,
        );
        let mut fx = EngineFx::from_asvm(me, afx);
        self.run_fx(ctx, &mut fx);
    }

    /// Translates a task-relative page range to `(object, object range)`.
    fn resolve_range(&self, task: TaskId, va_page: u64, pages: u32) -> (MemObjId, asvm::PageRange) {
        let entry = self
            .vm
            .address_map(task)
            .lookup(va_page)
            .expect("lock range outside mappings");
        let first = entry.object_page(va_page);
        let mobj = self
            .engine
            .mobj_of(entry.object)
            .expect("range locks need a managed region");
        (
            mobj,
            asvm::PageRange {
                first,
                count: pages,
            },
        )
    }

    /// Ensures `task` can access `va_page`; on a miss, starts the fault and
    /// suspends. Returns true if the access may proceed now.
    fn ensure_access(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        task: TaskId,
        va_page: u64,
        access: Access,
        retry: Step,
    ) -> bool {
        if self.vm.can_access(task, va_page, access) {
            self.note_hit_access(ctx, task, va_page, access == Access::Write);
            return true;
        }
        self.fault_for(ctx, task, va_page, access, retry)
    }

    /// The fault half of [`ClusterNode::ensure_access`], for callers that
    /// have already established the access misses (via the fused
    /// `try_read_page`/`try_write_page` ops). Returns `true` if the fault
    /// resolved immediately and the step can proceed now.
    fn fault_for(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        task: TaskId,
        va_page: u64,
        access: Access,
        retry: Step,
    ) -> bool {
        ctx.stats().bump("faults.raised");
        let mut fx = self.take_effects();
        let outcome = self.vm.fault(ctx.now(), task, va_page, access, &mut fx);
        match outcome {
            machvm::FaultOutcome::Hit => {
                self.drain(ctx, fx);
                true
            }
            machvm::FaultOutcome::Pending(_) => {
                let st = self.tasks.get_mut(&task).unwrap();
                st.repeat = Some(retry);
                st.status = TaskStatus::WaitingFault;
                self.drain(ctx, fx);
                false
            }
        }
    }

    // --- Fork ----------------------------------------------------------------------

    fn fork_to(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        parent: TaskId,
        child: TaskId,
        node: NodeId,
        program: Box<dyn Program>,
    ) {
        ctx.stats().bump("forks");
        let entries: Vec<machvm::MapEntry> = self.vm.address_map(parent).entries().to_vec();
        let fes = if self.engine.as_asvm().is_some() {
            self.fork_entries_asvm(ctx, &entries)
        } else {
            self.fork_entries_xmm(ctx, parent, &entries)
        };
        Transport::NORMA.send(
            ctx,
            node,
            256,
            Msg::Fork(Box::new(ForkMsg {
                child,
                program,
                entries: fes,
                parent_node: self.id,
                parent_task: parent,
            })),
        );
    }

    fn fork_entries_asvm(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        entries: &[machvm::MapEntry],
    ) -> Vec<ForkEntry> {
        let mut fes = Vec::new();
        for e in entries {
            match e.inherit {
                Inherit::None => {}
                Inherit::Share => {
                    let mobj = self
                        .engine
                        .mobj_of(e.object)
                        .expect("Share-inherited region must be ASVM-managed");
                    let info = self.obj_info_asvm(mobj);
                    fes.push(ForkEntry::Share {
                        va_page: e.va_page,
                        pages: e.pages,
                        prot: e.prot,
                        inherit: e.inherit,
                        mobj,
                        info,
                    });
                }
                Inherit::Copy => {
                    let mobj = self.asvmize(ctx, e.object);
                    let info = self.obj_info_asvm(mobj);
                    fes.push(ForkEntry::CopyAsvm {
                        va_page: e.va_page,
                        pages: e.pages,
                        prot: e.prot,
                        source_mobj: mobj,
                        info,
                    });
                }
            }
        }
        fes
    }

    fn fork_entries_xmm(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        parent: TaskId,
        entries: &[machvm::MapEntry],
    ) -> Vec<ForkEntry> {
        // Snapshot the parent's address space into a pseudo task;
        // internal pagers serve the copies (paper §2.3.3).
        let pseudo = self.alloc_pseudo_task();
        let mut fx = machvm::Effects::new();
        self.vm.fork_local(ctx.now(), parent, pseudo, &mut fx);
        self.drain(ctx, fx);
        let mut fes = Vec::new();
        for e in entries {
            match e.inherit {
                Inherit::None => {}
                Inherit::Share => {
                    let x = self.engine.as_xmm().expect("XMM fork path");
                    let mobj = x
                        .mobj_of(e.object)
                        .expect("Share-inherited region must be XMM-managed");
                    let xo = x.object(mobj);
                    let XmmBacking::RealPager { node: pn } = xo.backing else {
                        panic!("shared mapping of internal-pager object")
                    };
                    let info = ObjInfo {
                        size_pages: xo.size_pages,
                        home: xo.manager,
                        pager_node: pn,
                        cfg: asvm::AsvmConfig::default(),
                        peer: None,
                        source: None,
                    };
                    fes.push(ForkEntry::Share {
                        va_page: e.va_page,
                        pages: e.pages,
                        prot: e.prot,
                        inherit: e.inherit,
                        mobj,
                        info,
                    });
                }
                Inherit::Copy => {
                    let x = self.engine.as_xmm().expect("XMM fork path");
                    if let Some(m) = x.mobj_of(e.object) {
                        // Inherited-memory *chains* are fine (the
                        // object is backed by an internal pager);
                        // combining truly shared (real-pager)
                        // memory with inheritance is NMK13's
                        // semantic gap and unsupported.
                        assert!(
                            matches!(x.object(m).backing, XmmBacking::InternalPager { .. }),
                            "NMK13 XMM cannot combine shared and inherited memory \
                             (the semantic gap the paper notes)"
                        );
                    }
                    let mobj = self.alloc_mobj();
                    self.engine
                        .as_xmm_mut()
                        .expect("XMM fork path")
                        .register_internal_pager(mobj, pseudo, e.va_page);
                    fes.push(ForkEntry::CopyXmm {
                        va_page: e.va_page,
                        pages: e.pages,
                        prot: e.prot,
                        mobj,
                        ip_node: self.id,
                    });
                }
            }
        }
        fes
    }

    fn obj_info_asvm(&self, mobj: MemObjId) -> ObjInfo {
        let o = self.asvm().expect("ASVM fork path").object(mobj);
        ObjInfo {
            size_pages: o.size_pages,
            home: o.home,
            pager_node: o.pager_node,
            cfg: o.cfg,
            peer: o.peer,
            source: o.source,
        }
    }

    /// Ensures a VM object is ASVM-managed, assigning it a memory object id
    /// and adopting its resident pages as owned here.
    fn asvmize(&mut self, ctx: &mut Ctx<'_, Msg>, obj: VmObjId) -> MemObjId {
        if let Some(m) = self.engine.mobj_of(obj) {
            return m;
        }
        let mobj = self.alloc_mobj();
        let me = self.id;
        let size = self.vm.object(obj).size_pages;
        let source_mobj = self
            .vm
            .object(obj)
            .shadow
            .and_then(|s| self.engine.mobj_of(s));
        let pager_node = ctx.machine().io_node_for(me);
        self.vm.associate(obj, mobj);
        let mut afx = asvm::Fx::new();
        let a = self.engine.as_asvm_mut().expect("asvmize on ASVM cluster");
        a.register_object(
            mobj,
            obj,
            size,
            me,
            pager_node,
            asvm::AsvmConfig::default(),
            &mut afx,
        );
        // Adopt resident pages: this node owns everything it already has.
        let resident: Vec<(machvm::PageIdx, Access)> = self
            .vm
            .object(obj)
            .pages
            .iter()
            .map(|(p, rp)| (p, rp.prot))
            .collect();
        {
            let a = self.engine.as_asvm_mut().expect("asvmize on ASVM cluster");
            asvm::declare_copy_link(a, mobj, source_mobj, source_mobj.map(|_| me));
            let o = a.object_mut(mobj);
            for (p, prot) in resident {
                let mut pi = asvm::PageInfo::new(prot, true, o.version);
                pi.dirty = true;
                o.pages.insert(p, pi);
            }
        }
        if let Some(sm) = source_mobj {
            let a = self.engine.as_asvm_mut().expect("asvmize on ASVM cluster");
            let src = a.object_mut(sm);
            if !src.copies.contains(&mobj) {
                src.copies.push(mobj);
            }
        }
        let mut fx = EngineFx::from_asvm(me, afx);
        self.run_fx(ctx, &mut fx);
        mobj
    }

    /// Child-side fork processing.
    fn do_fork_child(&mut self, ctx: &mut Ctx<'_, Msg>, fm: ForkMsg) {
        let child = fm.child;
        let mut waiting: std::collections::BTreeSet<MemObjId> = Default::default();
        self.vm.create_task(child);
        for fe in fm.entries {
            match fe {
                ForkEntry::Share {
                    va_page,
                    pages,
                    prot,
                    inherit,
                    mobj,
                    info,
                } => {
                    let vo = self.ensure_object(ctx, mobj, &info);
                    self.vm
                        .map_object(child, va_page, pages, vo, 0, prot, inherit);
                }
                ForkEntry::CopyAsvm {
                    va_page,
                    pages,
                    prot,
                    source_mobj,
                    info,
                } => {
                    // Paper §3.7: establish a shared mapping of the source,
                    // then create a local copy through the VM; the resulting
                    // CopyCreated effect broadcasts the version bump, and
                    // the fork completes only when every member settled it.
                    let src_vo = self.ensure_object(ctx, source_mobj, &info);
                    let mut fx = machvm::Effects::new();
                    let copy = self.vm.copy_delayed(src_vo, &mut fx);
                    self.vm
                        .map_object(child, va_page, pages, copy, 0, prot, Inherit::Copy);
                    waiting.insert(source_mobj);
                    self.drain(ctx, fx);
                }
                ForkEntry::CopyXmm {
                    va_page,
                    pages,
                    prot,
                    mobj,
                    ip_node,
                } => {
                    let vo = self
                        .vm
                        .create_object(pages, machvm::Backing::External(mobj));
                    self.engine
                        .as_xmm_mut()
                        .expect("CopyXmm entry on XMM cluster")
                        .register_object(
                            mobj,
                            vo,
                            pages,
                            ip_node,
                            XmmBacking::InternalPager { node: ip_node },
                        );
                    self.vm
                        .map_object(child, va_page, pages, vo, 0, prot, Inherit::Copy);
                }
            }
        }
        let df = DeferredFork {
            child,
            program: fm.program,
            waiting,
            parent_node: fm.parent_node,
            parent_task: fm.parent_task,
        };
        if df.waiting.is_empty() {
            self.complete_fork(ctx, df);
        } else {
            self.deferred_forks.push(df);
        }
    }

    /// Ensures the local representation of `mobj` exists; returns its VM
    /// object.
    fn ensure_object(&mut self, ctx: &mut Ctx<'_, Msg>, mobj: MemObjId, info: &ObjInfo) -> VmObjId {
        if self.engine.as_asvm().is_some() {
            if let Some(o) = self
                .asvm()
                .and_then(|a| a.objects().find(|o| o.mobj == mobj))
            {
                return o.vm_obj;
            }
            let vo = self
                .vm
                .create_object(info.size_pages, machvm::Backing::External(mobj));
            let me = self.id;
            let mut afx = asvm::Fx::new();
            let a = self.engine.as_asvm_mut().expect("ASVM ensure_object");
            a.register_object(
                mobj,
                vo,
                info.size_pages,
                info.home,
                info.pager_node,
                info.cfg,
                &mut afx,
            );
            asvm::declare_copy_link(a, mobj, info.source, info.peer);
            let mut fx = EngineFx::from_asvm(me, afx);
            self.run_fx(ctx, &mut fx);
            vo
        } else {
            let x = self.engine.as_xmm().expect("XMM ensure_object");
            if x.has_object(mobj) {
                return x.object(mobj).vm_obj;
            }
            let vo = self
                .vm
                .create_object(info.size_pages, machvm::Backing::External(mobj));
            self.engine
                .as_xmm_mut()
                .expect("XMM ensure_object")
                .register_object(
                    mobj,
                    vo,
                    info.size_pages,
                    info.home,
                    XmmBacking::RealPager {
                        node: info.pager_node,
                    },
                );
            vo
        }
    }

    // --- Pageout --------------------------------------------------------------------

    fn pageout(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut guard = 0u32;
        while self.vm.over_capacity() > 0 {
            guard += 1;
            if guard > 4096 {
                break; // Nothing evictable right now; try after the next event.
            }
            let Some((obj, page)) = self.vm.select_victim() else {
                break;
            };
            ctx.stats().bump("pageouts");
            let mut fx = self.take_effects();
            self.vm.evict(ctx.now(), obj, page, &mut fx);
            self.drain(ctx, fx);
        }
    }
}

/// Payload size of an EMMI call on the wire.
fn pager_payload(call: &EmmiToPager, page_size: u32) -> u32 {
    match call {
        EmmiToPager::DataReturn { .. } => page_size,
        _ => 0,
    }
}

impl NodeBehavior<Msg> for ClusterNode {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, msg: Msg) {
        match msg {
            Msg::Asvm { from, msg } => {
                let pm = ProtocolMsg::Asvm { from, msg };
                self.record_trace(ctx.now(), TraceDir::Recv, from, &pm);
                let mut fx = self.take_fx();
                self.engine
                    .handle_protocol(ctx.now(), &mut self.vm, pm, &mut fx);
                self.run_fx(ctx, &mut fx);
                self.put_fx(fx);
            }
            Msg::RdmaRead { from, msg } => {
                // One-sided read posting: the engine computes the same
                // state transition an `Msg::Asvm` PageReq would (parity
                // across backends), but delivery charged zero host CPU
                // here — whether that holds depends on what the engine
                // wanted done, resolved by `finish_rdma_read`.
                let pm = ProtocolMsg::Asvm { from, msg };
                self.record_trace(ctx.now(), TraceDir::Recv, from, &pm);
                let mut fx = self.take_fx();
                self.engine
                    .handle_protocol(ctx.now(), &mut self.vm, pm, &mut fx);
                self.finish_rdma_read(ctx, from, &mut fx);
                self.put_fx(fx);
            }
            Msg::RdmaReadReply { from, msg } => {
                // Completion of a one-sided read: the grant lands in the
                // requester's registered buffer and is handled exactly
                // like its two-sided twin (the completion CPU was part of
                // the delivery envelope).
                let pm = ProtocolMsg::Asvm { from, msg };
                self.record_trace(ctx.now(), TraceDir::Recv, from, &pm);
                let mut fx = self.take_fx();
                self.engine
                    .handle_protocol(ctx.now(), &mut self.vm, pm, &mut fx);
                self.run_fx(ctx, &mut fx);
                self.put_fx(fx);
            }
            Msg::AsvmFrame { from, seq, msg } => {
                // Ack every arrival — including duplicates, whose original
                // ack may itself have been lost. The ack travels the same
                // lossy wire; a lost ack simply provokes a retransmission.
                let me = self.id;
                self.asvm_transport
                    .send_lossy(ctx, from, 0, "asvm.retry.ack", || Msg::AsvmAck {
                        from: me,
                        seq,
                    });
                let accepted = self
                    .link_rx
                    .entry(from)
                    .or_default()
                    .accept(seq, FrameBody::single(msg));
                if accepted.duplicate {
                    ctx.stats().bump("asvm.retry.dup_drop");
                } else if accepted.deliver.is_empty() {
                    ctx.stats().bump("asvm.retry.buffered");
                }
                for b in accepted.deliver {
                    self.deliver_body(ctx, from, b);
                }
            }
            Msg::AsvmBatch { from, body } => {
                self.deliver_body(ctx, from, body);
            }
            Msg::AsvmBatchFrame { from, seq, body } => {
                // Same ack-everything discipline as the singleton frame
                // channel: the whole batch is one sequenced unit.
                let me = self.id;
                self.asvm_transport
                    .send_lossy(ctx, from, 0, "asvm.retry.ack", || Msg::AsvmAck {
                        from: me,
                        seq,
                    });
                let accepted = self.link_rx.entry(from).or_default().accept(seq, body);
                if accepted.duplicate {
                    ctx.stats().bump("asvm.retry.dup_drop");
                } else if accepted.deliver.is_empty() {
                    ctx.stats().bump("asvm.retry.buffered");
                }
                for b in accepted.deliver {
                    self.deliver_body(ctx, from, b);
                }
            }
            Msg::AsvmAck { from, seq } => {
                if self.link_tx.entry(from).or_default().ack(seq) {
                    ctx.stats().bump("asvm.retry.acked");
                }
            }
            Msg::RetryTick { dst, seq } => {
                self.on_retry_tick(ctx, dst, seq);
            }
            Msg::Heartbeat { from } => {
                self.last_heard.insert(from, ctx.now());
                if self.suspects.remove(&from) {
                    ctx.stats().bump("cluster.suspect.cleared");
                    let mut fx = self.take_fx();
                    self.engine
                        .peer_cleared(ctx.now(), &mut self.vm, from, &mut fx);
                    self.run_fx(ctx, &mut fx);
                    self.put_fx(fx);
                }
            }
            Msg::HbTick => {
                self.on_hb_tick(ctx);
            }
            Msg::Farewell { from } => {
                // Graceful completion: stop expecting heartbeats. Existing
                // suspicion (from retry exhaustion) deliberately stands —
                // a farewell does not make the link reachable again.
                self.farewelled.insert(from);
                self.last_heard.remove(&from);
            }
            Msg::Xmm(m) => {
                let pm = ProtocolMsg::Xmm(m);
                // XMMI messages carry no sender; record the node itself.
                let me = self.id;
                self.record_trace(ctx.now(), TraceDir::Recv, me, &pm);
                let mut fx = self.take_fx();
                self.engine
                    .handle_protocol(ctx.now(), &mut self.vm, pm, &mut fx);
                self.run_fx(ctx, &mut fx);
                self.put_fx(fx);
            }
            Msg::PagerReq(pin) => {
                let cost = ctx.machine().config.cost.pager_handle;
                ctx.charge_msg_cpu(cost);
                let ps = self.vm.page_size();
                let outs = {
                    // The disk closure borrows ctx; split pagers out first.
                    let now = ctx.now();
                    if pin.mobj == MemObjId(0) {
                        let pgr = self
                            .default_pager
                            .as_mut()
                            .expect("default pager request on compute node");
                        let mut disk = |op, pos, len| ctx.disk_access(op, pos, len);
                        pgr.handle(now, pin, &mut disk)
                    } else {
                        let pgr = self
                            .file_pager
                            .as_mut()
                            .expect("file pager request on compute node");
                        let mut disk = |op, pos, len| ctx.disk_access(op, pos, len);
                        pgr.handle(now, pin, &mut disk)
                    }
                };
                for out in outs {
                    let payload = match &out.reply {
                        EmmiToKernel::DataSupply { .. } => ps,
                        _ => 0,
                    };
                    let costs = Transport::NORMA.costs(&ctx.machine().config.cost, payload);
                    ctx.stats().bump(Transport::NORMA.stat_key());
                    ctx.stats().bump(out.reply.stat_key());
                    if payload > 0 {
                        ctx.stats().bump("norma.page_messages");
                    }
                    ctx.send_after(
                        out.ready_at,
                        out.to_node,
                        costs,
                        Msg::PagerReply {
                            obj: out.obj,
                            reply: out.reply,
                        },
                    );
                }
            }
            Msg::PagerReply { obj, reply } => {
                if self.engine.mobj_of(obj).is_some() {
                    let mut fx = self.take_fx();
                    self.engine
                        .handle_pager_reply(ctx.now(), &mut self.vm, obj, reply, &mut fx);
                    self.run_fx(ctx, &mut fx);
                    self.put_fx(fx);
                } else {
                    // Plain anonymous memory refetched from the default pager.
                    let mut fx = self.take_effects();
                    self.vm.kernel_call(ctx.now(), obj, reply, &mut fx);
                    self.drain(ctx, fx);
                }
            }
            Msg::Resume(task) => {
                if let Some(st) = self.tasks.get_mut(&task) {
                    if st.status == TaskStatus::WaitingFault {
                        st.status = TaskStatus::Running;
                    }
                    self.run_task(ctx, task);
                }
            }
            Msg::Fork(fm) => {
                self.do_fork_child(ctx, *fm);
            }
            Msg::ForkDone { parent_task } => {
                if let Some(st) = self.tasks.get_mut(&parent_task) {
                    if st.status == TaskStatus::WaitingFork {
                        st.status = TaskStatus::Running;
                    }
                    self.run_task(ctx, parent_task);
                }
            }
            Msg::Barrier { id } => {
                assert_eq!(self.id, NodeId(0), "barrier messages go to node 0");
                let c = self.barrier_counts.entry(id).or_insert(0);
                *c += 1;
                if *c >= self.barrier_parties {
                    self.barrier_counts.remove(&id);
                    for n in ctx.machine().compute_nodes().collect::<Vec<_>>() {
                        if n == self.id {
                            let now = ctx.now();
                            ctx.post_self(now, Msg::BarrierGo { id });
                        } else {
                            Transport::STS.send(ctx, n, 0, Msg::BarrierGo { id });
                        }
                    }
                }
            }
            Msg::BarrierGo { id } => {
                let tasks = self.barrier_waiting.remove(&id).unwrap_or_default();
                for t in tasks {
                    if let Some(st) = self.tasks.get_mut(&t) {
                        if st.status == TaskStatus::WaitingBarrier(id) {
                            st.status = TaskStatus::Running;
                        }
                    }
                    self.run_task(ctx, t);
                }
            }
        }
        self.pageout(ctx);
        // End of the scheduling step: everything the engines emitted
        // while handling this event (pageout included) leaves as one
        // coalesced frame per destination. No-op with coalescing off.
        self.flush_coalesced(ctx);
    }
}
