//! Stdout byte-parity regression: the table binaries' standard output —
//! the reproduced paper tables — must match the committed goldens
//! byte for byte.
//!
//! The simulator promises bit-for-bit determinism, and the sweep harness
//! promises that stdout is independent of thread count; together those
//! make the printed tables a regression artifact. Any change that shifts
//! an event ordering, a protocol message, or a cost model shows up here
//! as a diff — exactly what the allocation-lean hot-path work must *not*
//! do.
//!
//! `table1` is small enough to run in debug test builds. `table3` runs
//! the full EM3D grid (tens of millions of events) and is `#[ignore]`d by
//! default; CI runs it against the release binary via
//! `ci/check_stdout_parity.sh`.

use std::path::PathBuf;
use std::process::Command;

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../goldens")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read golden {path:?}: {e}"))
}

fn run_serial(bin: &str) -> String {
    let out = Command::new(bin)
        .arg("--serial")
        .output()
        .unwrap_or_else(|e| panic!("run {bin}: {e}"));
    assert!(out.status.success(), "{bin} exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

#[test]
fn table1_stdout_matches_golden() {
    let got = run_serial(env!("CARGO_BIN_EXE_table1"));
    let want = golden("table1.stdout.txt");
    assert!(
        got == want,
        "table1 stdout diverged from goldens/table1.stdout.txt.\n\
         If the change is intentional, regenerate with:\n\
         cargo run -p bench --bin table1 --release -- --serial > goldens/table1.stdout.txt"
    );
}

/// The full Table 3 grid — minutes in a debug build, so ignored by
/// default. CI runs the release binary through `ci/check_stdout_parity.sh`;
/// locally: `cargo test -p bench --release -- --ignored`.
#[test]
#[ignore = "slow in debug builds; CI checks the release binary"]
fn table3_stdout_matches_golden() {
    let got = run_serial(env!("CARGO_BIN_EXE_table3"));
    let want = golden("table3.stdout.txt");
    assert!(
        got == want,
        "table3 stdout diverged from goldens/table3.stdout.txt.\n\
         If the change is intentional, regenerate with:\n\
         cargo run -p bench --bin table3 --release -- --serial > goldens/table3.stdout.txt"
    );
}
