//! Parallel sweep harness for the benchmark binaries.
//!
//! Every table/figure reproduction sweeps a grid of simulation cells
//! (manager kind × node count × problem size). The cells are independent
//! deterministic simulations, so they parallelize trivially — except that
//! [`cluster::Ssi`]'s `World` is `!Send` (page contents are `Rc`-shared).
//! The harness therefore never moves a world between threads: each cell is
//! a `FnOnce` closure that *constructs and runs* its world entirely on the
//! worker thread that claims it, returning plain `Send` results.
//!
//! Output discipline: `run` prints nothing, and results come back in
//! cell-index order, so a table printed from the report is **byte-identical**
//! between serial and parallel runs. Timing goes to stderr and, with
//! `--json`, to a `BENCH_<name>.json` trajectory file — never stdout.
//!
//! Thread count: `--threads N` > `--serial` > `ASVM_BENCH_THREADS` >
//! available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How a sweep should execute, resolved from CLI args and environment.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Worker thread count (1 = serial).
    pub threads: usize,
    /// Write a `BENCH_<name>.json` trajectory file after the sweep.
    pub json: bool,
    /// Zero out host wall-clock fields in the JSON so two runs of a
    /// deterministic sweep produce byte-identical files (`--stable-json`
    /// or `ASVM_BENCH_STABLE_JSON=1`; used by the fault-sweep determinism
    /// check).
    pub stable_json: bool,
}

impl SweepConfig {
    /// Resolves the configuration from `std::env` (process args + the
    /// `ASVM_BENCH_THREADS` variable).
    pub fn from_env() -> SweepConfig {
        let mut threads: Option<usize> = std::env::var("ASVM_BENCH_THREADS")
            .ok()
            .and_then(|v| v.parse().ok());
        let mut json = false;
        let mut stable_json = std::env::var("ASVM_BENCH_STABLE_JSON").is_ok_and(|v| v == "1");
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--serial" => threads = Some(1),
                "--threads" => {
                    let n = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--threads needs a positive integer");
                    threads = Some(n)
                }
                "--json" => json = true,
                "--stable-json" => {
                    json = true;
                    stable_json = true;
                }
                other => panic!(
                    "unknown benchmark flag: {other} \
                     (expected --serial | --threads N | --json | --stable-json)"
                ),
            }
        }
        let threads = threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .max(1);
        SweepConfig {
            threads,
            json,
            stable_json,
        }
    }

    /// A fixed-thread-count configuration (used by the determinism tests).
    pub fn with_threads(threads: usize) -> SweepConfig {
        SweepConfig {
            threads: threads.max(1),
            json: false,
            stable_json: false,
        }
    }
}

/// Named counters a cell reports alongside its value (per-message-kind
/// statistics in the benchmark binaries).
pub type CellCounters = Vec<(String, u64)>;

type Job<T> = Box<dyn FnOnce() -> (T, u64, CellCounters) + Send>;

/// One finished cell before labelling: value, events, counters, wall time.
type TimedCell<T> = (T, u64, CellCounters, Duration);

/// A sweep under construction: named, configured, accumulating cells.
pub struct Sweep<T> {
    name: &'static str,
    config: SweepConfig,
    labels: Vec<String>,
    jobs: Vec<Job<T>>,
}

/// One finished cell: the job's value plus the harness's accounting.
#[derive(Clone, Debug)]
pub struct CellResult<T> {
    /// The cell's label (for the JSON trajectory).
    pub label: String,
    /// What the job returned.
    pub value: T,
    /// Simulator events the job reported processing.
    pub events: u64,
    /// Named counters the job reported (empty unless the cell was added
    /// with [`Sweep::cell_with_counters`]).
    pub counters: CellCounters,
    /// Wall-clock time the job took on its worker thread.
    pub wall: Duration,
}

/// A completed sweep, cells in submission order regardless of how many
/// threads ran them.
pub struct SweepReport<T> {
    /// The sweep's name (`BENCH_<name>.json`).
    pub name: &'static str,
    config: SweepConfig,
    /// Finished cells, in the order they were added.
    pub cells: Vec<CellResult<T>>,
    /// Wall-clock duration of the whole sweep.
    pub total_wall: Duration,
}

impl<T: Send> Sweep<T> {
    /// A sweep configured from process args and environment — what the
    /// benchmark binaries use.
    pub fn from_env(name: &'static str) -> Sweep<T> {
        Sweep::with_config(name, SweepConfig::from_env())
    }

    /// A sweep with an explicit configuration (tests).
    pub fn with_config(name: &'static str, config: SweepConfig) -> Sweep<T> {
        Sweep {
            name,
            config,
            labels: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// Adds one cell. The closure must construct *and* run its simulation:
    /// worlds are `!Send`, so nothing world-shaped may cross threads. It
    /// returns its result plus the number of simulator events processed.
    pub fn cell(
        &mut self,
        label: impl Into<String>,
        job: impl FnOnce() -> (T, u64) + Send + 'static,
    ) {
        self.cell_with_counters(label, move || {
            let (value, events) = job();
            (value, events, Vec::new())
        });
    }

    /// Adds one cell whose job also reports named counters (e.g. protocol
    /// messages broken down by kind); they land in the cell's JSON record.
    pub fn cell_with_counters(
        &mut self,
        label: impl Into<String>,
        job: impl FnOnce() -> (T, u64, CellCounters) + Send + 'static,
    ) {
        self.labels.push(label.into());
        self.jobs.push(Box::new(job));
    }

    /// Runs every cell and returns the report, results in cell order.
    /// Prints nothing (see the module docs on output discipline).
    pub fn run(self) -> SweepReport<T> {
        let Sweep {
            name,
            config,
            labels,
            jobs,
        } = self;
        let n = jobs.len();
        let threads = config.threads.min(n.max(1));
        let started = Instant::now();

        let timed: Vec<TimedCell<T>> = if threads <= 1 {
            jobs.into_iter()
                .map(|job| {
                    let t0 = Instant::now();
                    let (value, events, counters) = job();
                    (value, events, counters, t0.elapsed())
                })
                .collect()
        } else {
            // Work-stealing over an atomic cursor: each worker claims the
            // next unclaimed cell, runs it locally, and deposits the result
            // in that cell's slot. Slot order — not completion order —
            // determines the report, which is what keeps parallel output
            // byte-identical to serial.
            let slots: Vec<Mutex<Option<TimedCell<T>>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            let pending: Vec<Mutex<Option<Job<T>>>> =
                jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let job = pending[i].lock().unwrap().take().unwrap();
                        let t0 = Instant::now();
                        let (value, events, counters) = job();
                        *slots[i].lock().unwrap() = Some((value, events, counters, t0.elapsed()));
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("worker deposited result"))
                .collect()
        };

        let cells = labels
            .into_iter()
            .zip(timed)
            .map(|(label, (value, events, counters, wall))| CellResult {
                label,
                value,
                events,
                counters,
                wall,
            })
            .collect();
        SweepReport {
            name,
            config,
            cells,
            total_wall: started.elapsed(),
        }
    }
}

impl<T> SweepReport<T> {
    /// Total simulator events across all cells.
    pub fn total_events(&self) -> u64 {
        self.cells.iter().map(|c| c.events).sum()
    }

    /// Sweep-level throughput: events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.total_wall.as_secs_f64();
        if secs > 0.0 {
            self.total_events() as f64 / secs
        } else {
            0.0
        }
    }

    /// The cell values in order (for printing the table).
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.cells.iter().map(|c| &c.value)
    }

    /// Emits the timing summary to stderr and, in `--json` mode, writes the
    /// `BENCH_<name>.json` trajectory file. Stdout is untouched.
    pub fn finish(&self) {
        eprintln!(
            "[{}] {} cells on {} thread{} in {:.3}s — {} events, {:.0} events/s",
            self.name,
            self.cells.len(),
            self.config.threads,
            if self.config.threads == 1 { "" } else { "s" },
            self.total_wall.as_secs_f64(),
            self.total_events(),
            self.events_per_sec(),
        );
        if self.config.json {
            let path = format!("BENCH_{}.json", self.name);
            std::fs::write(&path, self.to_json()).expect("write benchmark JSON");
            eprintln!("[{}] wrote {}", self.name, path);
        }
    }

    /// The JSON trajectory document (hand-rolled; the workspace has no
    /// serde). With `stable_json`, host wall-clock fields are written as
    /// zero so a deterministic sweep serializes byte-identically on every
    /// run.
    pub fn to_json(&self) -> String {
        let stable = self.config.stable_json;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"name\": {},\n", json_str(self.name)));
        s.push_str(&format!("  \"threads\": {},\n", self.config.threads));
        s.push_str(&format!(
            "  \"total_wall_secs\": {:.6},\n",
            if stable {
                0.0
            } else {
                self.total_wall.as_secs_f64()
            }
        ));
        s.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        s.push_str(&format!(
            "  \"events_per_sec\": {:.2},\n",
            if stable { 0.0 } else { self.events_per_sec() }
        ));
        s.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let secs = if stable { 0.0 } else { c.wall.as_secs_f64() };
            let eps = if secs > 0.0 {
                c.events as f64 / secs
            } else {
                0.0
            };
            let mut counters = String::new();
            if !c.counters.is_empty() {
                counters.push_str(", \"counters\": {");
                for (j, (k, v)) in c.counters.iter().enumerate() {
                    if j > 0 {
                        counters.push_str(", ");
                    }
                    counters.push_str(&format!("{}: {}", json_str(k), v));
                }
                counters.push('}');
            }
            s.push_str(&format!(
                "    {{\"label\": {}, \"wall_secs\": {:.6}, \"events\": {}, \"events_per_sec\": {:.2}{}}}{}\n",
                json_str(&c.label),
                secs,
                c.events,
                eps,
                counters,
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(threads: usize) -> SweepReport<u64> {
        let mut sweep = Sweep::with_config("squares", SweepConfig::with_threads(threads));
        for i in 0..17u64 {
            sweep.cell(format!("cell{i}"), move || (i * i, i));
        }
        sweep.run()
    }

    #[test]
    fn results_come_back_in_cell_order() {
        for threads in [1, 4] {
            let report = squares(threads);
            let values: Vec<u64> = report.values().copied().collect();
            assert_eq!(values, (0..17u64).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(report.total_events(), (0..17u64).sum::<u64>());
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let a: Vec<u64> = squares(1).values().copied().collect();
        let b: Vec<u64> = squares(8).values().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_cells_is_fine() {
        let mut sweep = Sweep::with_config("tiny", SweepConfig::with_threads(64));
        sweep.cell("only", || (42u64, 1));
        let report = sweep.run();
        assert_eq!(report.cells.len(), 1);
        assert_eq!(report.cells[0].value, 42);
    }

    #[test]
    fn counters_appear_in_json() {
        let mut sweep = Sweep::with_config("ctr", SweepConfig::with_threads(1));
        sweep.cell_with_counters("probe", || {
            (1u64, 5, vec![("asvm.msg.grant".to_string(), 3u64)])
        });
        sweep.cell("plain", || (2u64, 1));
        let report = sweep.run();
        assert_eq!(report.cells[0].counters.len(), 1);
        assert!(report.cells[1].counters.is_empty());
        let json = report.to_json();
        assert!(
            json.contains(r#""counters": {"asvm.msg.grant": 3}"#),
            "{json}"
        );
        assert!(!json.contains(r#""plain", "wall_secs": 0.000000, "events": 1, "counters""#));
    }

    #[test]
    fn json_escapes_labels() {
        let mut sweep = Sweep::with_config("esc", SweepConfig::with_threads(1));
        sweep.cell("a \"b\"\n\\c", || (0u64, 0));
        let json = sweep.run().to_json();
        assert!(json.contains(r#""a \"b\"\n\\c""#), "{json}");
    }
}
