//! `bench` — harness regenerating every table and figure of the paper.
//!
//! One binary per experiment:
//!
//! | binary                | reproduces                         |
//! |-----------------------|------------------------------------|
//! | `table1`              | Table 1 — page fault latencies     |
//! | `figure10`            | Figure 10 — write fault vs readers |
//! | `figure11`            | Figure 11 — copy-chain faults      |
//! | `table2`              | Table 2 / Figures 12–13 — file I/O |
//! | `table3`              | Table 3 — EM3D timings             |
//! | `ablation_transport`  | §3.1 — NORMA vs STS, 5 vs 3 msgs   |
//! | `ablation_memory`     | §3.1 — manager memory requirements |
//! | `ablation_forwarding` | §3.4 — forwarding strategy mix     |
//! | `ablation_paging`     | §3.6 — internode paging behaviour  |
//!
//! Each binary prints paper-reported values next to measured ones.
//! Absolute match is not the goal — the machine is a simulator — but the
//! *shape* (who wins, by what factor, where crossovers fall) must hold.
//! `EXPERIMENTS.md` records a full run.
//!
//! All binaries run their cells through the [`sweep`] harness: parallel
//! across worker threads by default, `--serial` / `ASVM_BENCH_THREADS=1`
//! for one thread, `--json` for a `BENCH_<name>.json` trajectory file.
//! Stdout is byte-identical regardless of thread count.

pub mod sweep;

/// Formats a paper-vs-measured pair.
pub fn pair(paper: f64, measured: f64) -> String {
    format!("{paper:>7.2}/{measured:<7.2}")
}

/// Relative error of a measured value against the paper's, in percent.
pub fn rel_err(paper: f64, measured: f64) -> f64 {
    if paper == 0.0 {
        return 0.0;
    }
    (measured - paper) / paper * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_is_signed_percent() {
        assert_eq!(rel_err(10.0, 12.0), 20.0);
        assert_eq!(rel_err(10.0, 8.0), -20.0);
        assert_eq!(rel_err(0.0, 5.0), 0.0);
    }
}
