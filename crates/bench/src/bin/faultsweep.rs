//! Fault sweep: completion time and retry traffic of a fixed ASVM
//! workload as per-message loss ramps from 0 to 10 percent, with a
//! duplication/delay mix riding along.
//!
//! Every cell runs the same migratory-ownership pattern (the most
//! retry-sensitive shape in the suite: every page changes owner every
//! round) on 8 nodes under a seeded [`svmsim::FaultPlan`]; the retry
//! channel (`asvm::retry`) must absorb the injected faults for the run to
//! complete. Each cell reports its slowdown relative to the loss-free
//! cell plus the `transport.fault.*` / `asvm.retry.*` counters, which land
//! in `BENCH_faultsweep.json` under `--json` (schema in EXPERIMENTS.md,
//! reliability model in docs/RELIABILITY.md).
//!
//! Determinism: the plan seed is fixed per cell, so two invocations with
//! the same flags produce byte-identical JSON.

use bench::sweep::Sweep;
use cluster::ManagerKind;
use svmsim::{Dur, FaultPlan};
use workloads::{run_pattern_faulted, Pattern};

/// Per-message loss rates swept, in parts per million.
const LOSS_PPM: [u32; 6] = [0, 1_000, 5_000, 10_000, 50_000, 100_000];

const NODES: u16 = 8;
const PAGES: u32 = 16;
const ROUNDS: u32 = 4;
const PLAN_SEED: u64 = 1996;

fn run_cell(loss_ppm: u32) -> (f64, u64, Vec<(String, u64)>) {
    let plan = if loss_ppm == 0 {
        FaultPlan::none()
    } else {
        // A loss-dominated mix: duplication at a fifth of the loss rate,
        // mild extra delay at a tenth, inside a 2 ms window.
        FaultPlan::seeded(PLAN_SEED ^ loss_ppm as u64)
            .with_drop_ppm(loss_ppm)
            .with_dup_ppm(loss_ppm / 5)
            .with_delay(loss_ppm / 10, Dur::from_millis(2))
    };
    let out = run_pattern_faulted(
        ManagerKind::asvm(),
        NODES,
        PAGES,
        Pattern::Migratory { rounds: ROUNDS },
        plan,
    );
    assert!(
        out.completed,
        "sweep cell at {loss_ppm} ppm must complete (exhausted={})",
        out.exhausted
    );
    let counters = vec![
        ("fault.dropped".to_string(), out.dropped),
        ("fault.duplicated".to_string(), out.duplicated),
        ("fault.delayed".to_string(), out.delayed),
        ("retry.resent".to_string(), out.resent),
        ("retry.exhausted".to_string(), out.exhausted),
        ("page.faults".to_string(), out.outcome.faults),
        ("protocol.messages".to_string(), out.outcome.messages),
    ];
    (out.outcome.elapsed_s, out.outcome.events, counters)
}

fn main() {
    let mut sweep = Sweep::from_env("faultsweep");
    for ppm in LOSS_PPM {
        sweep.cell_with_counters(format!("loss {:.1}%", ppm as f64 / 10_000.0), move || {
            run_cell(ppm)
        });
    }
    let report = sweep.run();

    println!("Fault sweep: migratory pattern, {NODES} nodes x {PAGES} pages x {ROUNDS} rounds");
    let elapsed: Vec<f64> = report.values().copied().collect();
    let base = elapsed[0];
    println!("{:>8} {:>12} {:>10}", "loss", "elapsed s", "slowdown");
    for (ppm, e) in LOSS_PPM.iter().zip(&elapsed) {
        println!(
            "{:>7.1}% {:>12.4} {:>9.2}x",
            *ppm as f64 / 10_000.0,
            e,
            e / base
        );
    }
    report.finish();
}
