//! Multi-tenant consolidation sweep: per-object adaptive strategy
//! selection vs every uniform configuration.
//!
//! A consolidated host runs *mixed tenants at once* — many Zipf-popular
//! memory objects, some sequential-scan read-mostly (analytics), some
//! hot-page write-heavy (OLTP), with tasks arriving and departing
//! (`workloads::tenants`). No uniform configuration suits both classes:
//! readahead + coalescing cut a scan's faults by more than half but are
//! pure frame cost on write-heavy objects (prefetched neighbours are
//! invalidated unread, and wider copysets make every write's
//! invalidation fan-out dearer), while the forwarding ablation's
//! static-vs-dynamic trade cuts the other way. This sweep runs
//!
//! * four uniform arms — `plain` (dynamic forwarding, no speculation),
//!   `accel` (dynamic + readahead + coalescing), `static` (the fixed
//!   distributed manager), `global` (zero-hint-state walk),
//! * the **adaptive** arm (`asvm::policy`): every object starts in the
//!   conservative Static mode with speculation stripped, and each node
//!   upgrades its replica to accelerated Dynamic only on observed read
//!   evidence — so write-heavy objects never pay the speculation tax
//!   and scan objects earn it back within a window or two, and
//! * an **oracle** arm that registers every object with its class-ideal
//!   configuration up front (`Ssi::set_object_config`) — the bound the
//!   policy chases without being told the classes,
//!
//! across workload mixes and the three transport backends.
//!
//! The headline metric is **total fault stall** (faults × mean latency):
//! scans are bandwidth-bound at the owner, so prefetch mostly converts
//! many short stalls into few long ones — mean fault latency alone would
//! call that a regression while total page-wait time and protocol work
//! (faults, frames) improve.
//!
//! The **churn** row is the honest counter-case: tenants flip their
//! read/write mix faster than the policy's window × hysteresis, so the
//! adaptive arm pays `asvm.policy.switch` churn without a stall win —
//! raise the window or disable the policy for such tenants.
//!
//! Environment knobs (CI smoke): `ASVM_TENANTS_OBJECTS`,
//! `ASVM_TENANTS_TASKS`, `ASVM_TENANTS_OPS`, `ASVM_TENANTS_SEED`.
//!
//! Determinism: fully seeded; `--json --stable-json` regenerates
//! `BENCH_tenants.json` byte-identically.

use asvm::AsvmConfig;
use bench::sweep::Sweep;
use transport::Transport;
use workloads::tenants::{run_tenants, TenantsOutcome, TenantsSpec};

/// Readahead depth of the accelerated arms (the committed `futurework`
/// sweep's depth; deep enough to stream a 16-page scan).
const RA: u32 = 4;

/// The policy window used by the adaptive arm: short enough that a scan
/// object earns its upgrade within one pass, long enough that one
/// anomalous burst cannot flip a mode by itself (hysteresis stays at the
/// default 2).
const WINDOW: u32 = 8;

fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Ok(v) => v.parse().unwrap_or_else(|_| panic!("{key}: u64")),
        Err(_) => default,
    }
}

/// The base mixed-tenant shape (the generator's defaults); the workload
/// rows perturb it.
fn base_spec() -> TenantsSpec {
    TenantsSpec {
        objects: env_u64("ASVM_TENANTS_OBJECTS", 96) as u32,
        tasks: env_u64("ASVM_TENANTS_TASKS", 24) as u32,
        ops_per_task: env_u64("ASVM_TENANTS_OPS", 400) as u32,
        seed: env_u64("ASVM_TENANTS_SEED", 1996),
        ..TenantsSpec::default()
    }
}

/// The accelerated uniform configuration (and the accelerant base the
/// adaptive and oracle arms restore on read-mostly objects).
fn accel() -> AsvmConfig {
    AsvmConfig::with_readahead(RA).coalesced()
}

/// The five configuration arms, in table-column order. The adaptive arm
/// starts conservative: static forwarding with the accelerants stripped
/// at object creation (the policy's Static mode), upgrading per replica
/// on read evidence.
fn configs() -> [(&'static str, AsvmConfig); 5] {
    let mut adaptive = AsvmConfig::fixed_distributed().coalesced().adaptive();
    adaptive.prefetch = asvm::PrefetchCfg::readahead(RA);
    adaptive.policy.window = WINDOW;
    [
        ("plain", AsvmConfig::default()),
        ("accel", accel()),
        ("static", AsvmConfig::fixed_distributed()),
        ("global", AsvmConfig::global_only()),
        ("adaptive", adaptive),
    ]
}

/// Workload rows: label × spec perturbation.
fn workloads() -> [(&'static str, TenantsSpec); 4] {
    let base = base_spec();
    let mut read_mostly = base.clone();
    read_mostly.read_mostly_pct = 90;
    let mut write_heavy = base.clone();
    write_heavy.read_mostly_pct = 10;
    let mut churn = base.clone();
    // Flip period well under WINDOW * hysteresis observations per object:
    // the policy keeps chasing a moving target.
    churn.phase_flip = 40;
    [
        ("mixed", base),
        ("read-mostly", read_mostly),
        ("write-heavy", write_heavy),
        ("churn", churn),
    ]
}

fn cell(
    cfg: AsvmConfig,
    transport: Transport,
    spec: TenantsSpec,
    oracle: bool,
) -> (TenantsOutcome, u64, Vec<(String, u64)>) {
    let o = run_tenants(cfg, transport, &spec, oracle);
    let counters = vec![
        ("page.faults".to_string(), o.faults),
        ("stall_ms".to_string(), o.stall_ms.round() as u64),
        (
            "fault_us_mean".to_string(),
            (o.mean_fault_ms * 1000.0).round() as u64,
        ),
        ("asvm.msgs".to_string(), o.asvm_msgs),
        ("asvm.frames".to_string(), o.asvm_frames),
        ("coalesce.merged".to_string(), o.coalesce_merged),
        ("policy.observe".to_string(), o.policy_observe),
        ("policy.switch".to_string(), o.policy_switch),
        ("modes.dynamic".to_string(), o.modes[0]),
        ("modes.static".to_string(), o.modes[1]),
        ("modes.global".to_string(), o.modes[2]),
    ];
    let events = o.events;
    (o, events, counters)
}

fn main() {
    let mut sweep = Sweep::from_env("tenants");
    // STS: every workload row × every configuration column.
    for (wl, spec) in workloads() {
        for (arm, cfg) in configs() {
            let spec = spec.clone();
            sweep.cell_with_counters(format!("sts / {wl} / {arm}"), move || {
                cell(cfg, Transport::STS, spec, false)
            });
        }
    }
    // The oracle bound on the headline mixed row (class-ideal per-object
    // configs, accelerants restored on the read-mostly class).
    {
        let spec = base_spec();
        sweep.cell_with_counters("sts / mixed / oracle", move || {
            cell(accel(), Transport::STS, spec, true)
        });
    }
    // Backend generality: the headline row on NORMA-IPC and RDMA.
    for (bl, backend) in [("norma", Transport::NORMA), ("rdma", Transport::RDMA)] {
        for (arm, cfg) in configs() {
            let spec = base_spec();
            sweep.cell_with_counters(format!("{bl} / mixed / {arm}"), move || {
                cell(cfg, backend, spec, false)
            });
        }
    }
    let report = sweep.run();

    let spec = base_spec();
    println!(
        "Multi-tenant sweep ({} nodes, {} objects x {} pages, {} tasks x {} ops, \
         object skew {}, readahead {RA}, policy window {WINDOW})",
        spec.nodes,
        spec.objects,
        spec.pages_per_object,
        spec.tasks,
        spec.ops_per_task,
        spec.object_skew
    );
    println!(
        "total fault stall in ms (faults x mean latency); best/worst over the four \
         uniform arms"
    );
    println!(
        "{:<22}{:>10}{:>10}{:>10}{:>9}{:>9}{:>9}{:>7}{:>10}",
        "workload",
        "best",
        "worst",
        "adaptive",
        "vs best",
        "flt-best",
        "flt-adpt",
        "switch",
        "modes"
    );
    println!("{}", "-".repeat(96));
    let mut cells = report.values();
    let print_row = |label: &str, cells: &mut dyn Iterator<Item = &TenantsOutcome>| {
        let uniform: Vec<&TenantsOutcome> = (0..4)
            .map(|_| cells.next().expect("uniform cell"))
            .collect();
        let adaptive = cells.next().expect("adaptive cell");
        let best = uniform
            .iter()
            .map(|o| o.stall_ms)
            .fold(f64::INFINITY, f64::min);
        let worst = uniform.iter().map(|o| o.stall_ms).fold(0.0, f64::max);
        let delta = 100.0 * (adaptive.stall_ms / best - 1.0);
        let flt_best = uniform.iter().map(|o| o.faults).min().unwrap();
        println!(
            "{:<22}{:>10.0}{:>10.0}{:>10.0}{:>+8.1}%{:>9}{:>9}{:>7}  {:>3}/{:<3}/{:<3}",
            label,
            best,
            worst,
            adaptive.stall_ms,
            delta,
            flt_best,
            adaptive.faults,
            adaptive.policy_switch,
            adaptive.modes[0],
            adaptive.modes[1],
            adaptive.modes[2],
        );
    };
    for (wl, _) in workloads() {
        print_row(&format!("sts / {wl}"), &mut cells);
    }
    let oracle = cells.next().expect("oracle cell");
    println!(
        "{:<22}{:>10.0}   (per-object class-ideal configs via set_object_config)",
        "sts / mixed / oracle", oracle.stall_ms
    );
    for (bl, _) in [("norma", ()), ("rdma", ())] {
        print_row(&format!("{bl} / mixed"), &mut cells);
    }
    println!();
    println!("churn is the counter-case: the mix flips faster than the policy can");
    println!("re-learn, so switches climb without a stall win — raise the window or");
    println!("disable the policy for such tenants.");
    report.finish();
}
