//! Regenerates **Table 2: File Transfer Rates (MB/s)** and its graphical
//! forms, **Figure 12** (read) and **Figure 13** (write).
//!
//! A 4 MB memory-mapped file is accessed by 1–64 nodes in parallel,
//! bypassing the file server exactly as the paper does. Writes target
//! disjoint sections of a fresh file (bounded by zero-fill supply); reads
//! scan the whole populated file on every node (bounded by the pager — or,
//! under ASVM, served from peer caches after the first copy).

use bench::sweep::Sweep;
use cluster::ManagerKind;
use workloads::{file_scan, FileScanSpec, ScanDir};

const NODES: [u16; 7] = [1, 2, 4, 8, 16, 32, 64];
const PAPER_ASVM_WRITE: [f64; 7] = [2.80, 2.60, 2.05, 1.22, 0.62, 0.30, 0.15];
const PAPER_XMM_WRITE: [f64; 7] = [2.15, 1.77, 0.90, 0.49, 0.24, 0.12, 0.06];
const PAPER_ASVM_READ: [f64; 7] = [1.57, 1.53, 1.14, 0.91, 0.70, 0.66, 0.66];
const PAPER_XMM_READ: [f64; 7] = [1.18, 0.38, 0.25, 0.11, 0.05, 0.02, 0.01];

fn main() {
    let file_pages = 512; // 4 MB
    let mut sweep = Sweep::from_env("table2");
    for n in NODES {
        for (kind, dir) in [
            (ManagerKind::asvm(), ScanDir::Write),
            (ManagerKind::xmm(), ScanDir::Write),
            (ManagerKind::asvm(), ScanDir::Read),
            (ManagerKind::xmm(), ScanDir::Read),
        ] {
            let spec = FileScanSpec {
                kind,
                nodes: n,
                file_pages,
                dir,
            };
            sweep.cell(format!("{} {:?} {}n", kind.label(), dir, n), move || {
                let out = file_scan(spec);
                (out.rate_mb_s, out.events)
            });
        }
    }
    let report = sweep.run();

    println!("Table 2: File Transfer Rates (MB/s) — paper/measured");
    println!(
        "{:>6}{:>18}{:>18}{:>18}{:>18}",
        "nodes", "ASVM write", "XMM write", "ASVM read", "XMM read"
    );
    println!("{}", "-".repeat(78));
    let mut cells = report.values();
    for (i, n) in NODES.iter().enumerate() {
        let aw = *cells.next().expect("asvm write");
        let xw = *cells.next().expect("xmm write");
        let ar = *cells.next().expect("asvm read");
        let xr = *cells.next().expect("xmm read");
        println!(
            "{:>6}{:>18}{:>18}{:>18}{:>18}",
            n,
            bench::pair(PAPER_ASVM_WRITE[i], aw),
            bench::pair(PAPER_XMM_WRITE[i], xw),
            bench::pair(PAPER_ASVM_READ[i], ar),
            bench::pair(PAPER_XMM_READ[i], xr),
        );
    }
    println!();
    println!("Figure 12 is the read series, Figure 13 the write series, plotted");
    println!("per node; the table above contains both.");
    report.finish();
}
