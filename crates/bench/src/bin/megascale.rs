//! Megascale sweep: simulator throughput (events/s) and per-node
//! protocol-state bytes at 128–1024 nodes, ASVM vs. XMM.
//!
//! Three cell families per node count and manager:
//!
//! * `eventloop` — one compute-only task per node burning short bursts:
//!   every event is a bare resume on the event hot path (queue pop,
//!   dispatch, reschedule), so this cell measures the DES engine itself
//!   at cluster scale, free of protocol cost.
//! * `em3d` — the paper's EM3D kernel, weak-scaled (fixed cells per
//!   node) so per-node work stays constant while the cluster grows.
//! * `prodcons` / `hotspot` — synthetic sharing patterns with fan-out
//!   that grows with the cluster (one writer invalidating up to 1023
//!   readers).
//!
//! Every cell reports the [`workloads::megascale`] state probe: the
//! maximum and mean per-node protocol state in bytes, read from the
//! coherence engines after the run. The paper's bounded-memory argument
//! is directly visible in the output table — ASVM's per-node state stays
//! flat as the cluster grows, while the XMM manager's lock table grows
//! with (pages × using nodes).
//!
//! Environment knobs (the sweep flags `--serial`/`--threads`/`--json`/
//! `--stable-json` work as everywhere else):
//!
//! * `ASVM_MEGASCALE_NODES` — comma-separated node counts to run
//!   (default `128,256,512,1024`; CI smoke sets `128`).
//! * `ASVM_MEGASCALE_SEED` — workload-generation seed (default 1996).
//!   Same seed ⇒ byte-identical `--stable-json` output; the CI job runs
//!   two seeds to check both determinism and seed sensitivity.

use bench::sweep::Sweep;
use cluster::ManagerKind;
use svmsim::Dur;
use workloads::megascale::StateProbe;
use workloads::{em3d_run_probed, run_eventloop, run_pattern_mega, Em3dSpec, Pattern};

/// Compute bursts per node in the event-loop cells. Sized so the cheap
/// resume events dominate the sweep's event mix: the aggregate events/s
/// figure then reflects the event hot path the envelope/pooling work
/// optimized, with the protocol cells riding along for the state gauges.
const EVENTLOOP_STEPS: u32 = 32_768;

/// EM3D cells per node (weak scaling) and computation iterations.
const EM3D_CELLS_PER_NODE: u64 = 200;
const EM3D_ITERS: u32 = 3;

/// Pages and rounds of the sharing patterns.
const PATTERN_PAGES: u32 = 32;
const PRODCONS_ROUNDS: u32 = 2;
const HOTSPOT_ROUNDS: u32 = 4;
const HOTSPOT_WRITE_EVERY: u32 = 2;

fn env_nodes() -> Vec<u16> {
    match std::env::var("ASVM_MEGASCALE_NODES") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("ASVM_MEGASCALE_NODES: comma-separated node counts")
            })
            .collect(),
        Err(_) => vec![128, 256, 512, 1024],
    }
}

fn env_seed() -> u64 {
    std::env::var("ASVM_MEGASCALE_SEED")
        .ok()
        .map(|v| v.parse().expect("ASVM_MEGASCALE_SEED: u64"))
        .unwrap_or(1996)
}

/// What every cell returns: simulated seconds plus the state probe.
type CellValue = (f64, StateProbe);

fn probe_counters(probe: &StateProbe) -> Vec<(String, u64)> {
    vec![
        ("state.max_bytes".to_string(), probe.state_max_bytes),
        ("state.mean_bytes".to_string(), probe.state_mean_bytes),
        ("state.total_bytes".to_string(), probe.state_total_bytes),
        ("queue.peak".to_string(), probe.queue_peak),
        ("queue.grow".to_string(), probe.queue_grow),
    ]
}

fn em3d_spec(kind: ManagerKind, nodes: u16, seed: u64) -> Em3dSpec {
    Em3dSpec {
        kind,
        nodes,
        cells: EM3D_CELLS_PER_NODE * nodes as u64,
        edges_per_cell: 6,
        pct_remote: 0.20,
        iterations: EM3D_ITERS,
        window: 100,
        seed,
        mem_32mb: false,
    }
}

fn main() {
    let nodes = env_nodes();
    let seed = env_seed();
    let mut sweep: Sweep<CellValue> = Sweep::from_env("megascale");

    for &n in &nodes {
        sweep.cell_with_counters(format!("eventloop {n}n"), move || {
            let (out, probe) = run_eventloop(
                ManagerKind::asvm(),
                n,
                EVENTLOOP_STEPS,
                Dur::from_nanos(500),
            );
            ((out.elapsed_s, probe), out.events, probe_counters(&probe))
        });
        for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
            sweep.cell_with_counters(format!("em3d {} {n}n", kind.label()), move || {
                let (out, probe) = em3d_run_probed(em3d_spec(kind, n, seed));
                let mut counters = probe_counters(&probe);
                counters.push(("page.faults".to_string(), out.faults));
                ((out.elapsed_secs, probe), out.events, counters)
            });
            sweep.cell_with_counters(format!("prodcons {} {n}n", kind.label()), move || {
                let (out, probe) = run_pattern_mega(
                    kind,
                    n,
                    PATTERN_PAGES,
                    Pattern::ProducerConsumer {
                        rounds: PRODCONS_ROUNDS,
                    },
                );
                let mut counters = probe_counters(&probe);
                counters.push(("page.faults".to_string(), out.faults));
                ((out.elapsed_s, probe), out.events, counters)
            });
            sweep.cell_with_counters(format!("hotspot {} {n}n", kind.label()), move || {
                let (out, probe) = run_pattern_mega(
                    kind,
                    n,
                    PATTERN_PAGES,
                    Pattern::Hotspot {
                        rounds: HOTSPOT_ROUNDS,
                        write_every: HOTSPOT_WRITE_EVERY,
                    },
                );
                let mut counters = probe_counters(&probe);
                counters.push(("page.faults".to_string(), out.faults));
                ((out.elapsed_s, probe), out.events, counters)
            });
        }
    }

    let report = sweep.run();

    println!("Megascale sweep: per-node protocol state and event throughput (seed {seed})");
    println!(
        "{:<22} {:>10} {:>12} {:>16} {:>16} {:>12} {:>8}",
        "cell", "sim s", "events", "state max B/node", "state mean B/node", "queue peak", "grows"
    );
    for c in &report.cells {
        let (sim_s, probe) = c.value;
        println!(
            "{:<22} {:>10.3} {:>12} {:>16} {:>16} {:>12} {:>8}",
            c.label,
            sim_s,
            c.events,
            probe.state_max_bytes,
            probe.state_mean_bytes,
            probe.queue_peak,
            probe.queue_grow,
        );
    }

    // The bounded-memory table: worst-case per-node protocol state as the
    // cluster grows, ASVM vs. XMM per workload family.
    println!();
    println!("Bounded-memory check: max per-node protocol state (bytes)");
    print!("{:<10} {:>6}", "workload", "mgr");
    for n in &nodes {
        print!(" {:>10}", format!("{n}n"));
    }
    println!();
    for family in ["em3d", "prodcons", "hotspot"] {
        for mgr in ["ASVM", "XMM"] {
            print!("{family:<10} {mgr:>6}");
            for n in &nodes {
                let label = format!("{family} {mgr} {n}n");
                let bytes = report
                    .cells
                    .iter()
                    .find(|c| c.label == label)
                    .map(|c| c.value.1.state_max_bytes)
                    .unwrap_or(0);
                print!(" {bytes:>10}");
            }
            println!();
        }
    }
    report.finish();
}
