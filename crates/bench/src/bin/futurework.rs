//! §6 Future Work, implemented and measured.
//!
//! The paper closes by sketching how to combine UFS's caching with PFS's
//! striping: (1) range-lock primitives replacing the NORMA token server,
//! (2) multiple pagers per object used round-robin (striping), and
//! (3) clustering of page-in requests. All three are implemented behind
//! `AsvmConfig`/`Ssi` switches; this harness measures what they buy.

use bench::sweep::Sweep;
use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{MachineConfig, NodeId};

const STRIPES: [u16; 3] = [1, 2, 4];
const READAHEADS: [u32; 3] = [0, 4, 8];

/// Sequential cold read of a populated file; returns MB/s seen by node 0.
fn read_rate(stripes: u16, readahead: u32, pages: u32) -> (f64, u64) {
    let mut cfg = MachineConfig::paragon(2);
    cfg.io_nodes = stripes.max(1);
    let kind = ManagerKind::Asvm(asvm::AsvmConfig::with_readahead(readahead));
    let mut ssi = Ssi::with_machine(cfg, kind, 7);
    let mobj = if stripes > 1 {
        ssi.create_striped_object(pages, true, stripes)
    } else {
        ssi.create_object(NodeId(0), pages, true)
    };
    let t = ssi.alloc_task();
    ssi.map_shared(
        t,
        NodeId(0),
        0,
        mobj,
        NodeId(0),
        pages,
        Access::Write,
        Inherit::Share,
    );
    ssi.finalize();
    let steps: Vec<Step> = (0..pages)
        .map(|p| Step::Read { va_page: p as u64 })
        .chain([Step::Done])
        .collect();
    ssi.spawn(NodeId(0), t, Box::new(ScriptProgram::new(steps)));
    ssi.run(u64::MAX / 2).expect("quiesces");
    let secs = ssi
        .node(NodeId(0))
        .task_runtime(t)
        .expect("finished")
        .as_secs_f64();
    let rate = pages as f64 * 8192.0 / secs / (1024.0 * 1024.0);
    (rate, ssi.world.events_processed())
}

fn main() {
    let pages = 512; // a 4 MB file, as in Table 2
    let mut sweep = Sweep::from_env("futurework");
    for stripes in STRIPES {
        for ra in READAHEADS {
            sweep.cell(format!("{stripes}s ra{ra}"), move || {
                read_rate(stripes, ra, pages)
            });
        }
    }
    let report = sweep.run();

    println!("cold sequential read of a 4 MB mapped file, one node (MB/s):");
    println!(
        "{:<12}{:>14}{:>14}{:>14}",
        "stripes", "ra=0", "ra=4", "ra=8"
    );
    println!("{}", "-".repeat(54));
    let mut cells = report.values();
    for stripes in STRIPES {
        print!("{stripes:<12}");
        for _ in READAHEADS {
            print!("{:>14.2}", cells.next().expect("one result per cell"));
        }
        println!();
    }
    println!();
    println!("baseline (1 stripe, no clustering) matches Table 2's single-node");
    println!("read; striping adds disk parallelism, read clustering overlaps the");
    println!("per-page protocol round trips — together they approach the media");
    println!("bandwidth of all stripes, the UFS+PFS combination §6 argues for.");
    println!();
    println!("range locks: see tests/futurework.rs — multi-page updates become");
    println!("atomic under concurrent writers/readers with no token server.");
    report.finish();
}
