//! Ablation for §3.6: internode paging.
//!
//! The memory of all nodes mapping an object acts as a cache for it. When
//! a node under memory pressure evicts an owned page, ownership first moves
//! to a surviving reader (no contents transferred), then the page migrates
//! to a node with free memory (the adaptive cycling counter), and only as
//! a last resort does it go to the pager's disk. This harness squeezes one
//! node's memory and reports where its pages ended up — and what a
//! re-touch costs compared with a disk refault.
//!
//! Unlike the grid sweeps, this is a single two-phase experiment on one
//! shared world, so it runs as one sweep cell; the phases stay sequential.

use std::fmt::Write as _;

use bench::sweep::Sweep;
use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{MachineConfig, NodeId};

fn experiment() -> (String, u64) {
    let mut out = String::new();
    // A machine with tiny memories so pressure is easy to create.
    let nodes = 4u16;
    let mut cfg = MachineConfig::paragon(nodes);
    cfg.user_mem_bytes_per_node = 256 * 8192; // 256 user pages per node
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::asvm(), 31);
    let home = NodeId(0);
    // Node 0 initializes a region 1.5x its own memory; the other nodes are
    // idle and nearly empty — their memory should absorb the overflow.
    let region_pages = 384u32;
    let mobj = ssi.create_object(home, region_pages, false);
    let tasks: Vec<_> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                region_pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();

    // Phase 1: node 0 writes the whole region, overflowing its memory.
    let steps: Vec<Step> = (0..region_pages)
        .map(|p| Step::Write {
            va_page: p as u64,
            value: 7000 + p as u64,
        })
        .chain([Step::Done])
        .collect();
    ssi.spawn(NodeId(0), tasks[0], Box::new(ScriptProgram::new(steps)));
    ssi.run(u64::MAX / 2).expect("phase 1 quiesces");

    writeln!(
        out,
        "after initializing {region_pages} pages on node 0 (capacity 256):"
    )
    .unwrap();
    let mut resident = Vec::new();
    for n in 0..nodes {
        let node = ssi.node(NodeId(n));
        let owned = node
            .asvm()
            .expect("paging ablation runs ASVM")
            .object(mobj)
            .pages
            .values()
            .filter(|pi| pi.owner)
            .count();
        resident.push(owned);
        writeln!(
            out,
            "  node {n}: {owned:>4} owned pages resident ({} total resident)",
            node.vm.resident_total()
        )
        .unwrap();
    }
    let disk_writes = ssi.stats().counter("disk.writes");
    writeln!(out, "  pages written to the pager's disk: {disk_writes}").unwrap();
    writeln!(
        out,
        "  page transfers accepted by peers:  {}",
        ssi.stats().counter("net.messages").min(99999)
    )
    .unwrap();
    assert!(
        resident[1] + resident[2] + resident[3] > 0,
        "peers must have absorbed overflow pages"
    );

    // Phase 2: node 0 re-reads everything. Pages absorbed by peers come
    // back over the mesh (fast); only disk-resident pages pay the pager.
    ssi.world.stats_mut().reset();
    let steps: Vec<Step> = (0..region_pages)
        .map(|p| Step::Read { va_page: p as u64 })
        .chain([Step::Done])
        .collect();
    let now = ssi.world.now();
    ssi.world
        .node_mut(NodeId(0))
        .install_task(tasks[0], Box::new(ScriptProgram::new(steps)), now);
    ssi.world
        .post(now, NodeId(0), cluster::Msg::Resume(tasks[0]));
    ssi.run(u64::MAX / 2).expect("phase 2 quiesces");

    let t = ssi.stats().tally("fault.ms").expect("refaults happened");
    writeln!(out).unwrap();
    writeln!(out, "node 0 re-reads the region:").unwrap();
    writeln!(
        out,
        "  refaults: {}, mean {:.2} ms (disk refault would be ~30 ms)",
        t.count,
        t.mean().as_millis_f64()
    )
    .unwrap();
    writeln!(
        out,
        "  disk reads during re-scan: {}",
        ssi.stats().counter("disk.reads")
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "ownership (and pages) spread across the peers' free memory instead of"
    )
    .unwrap();
    writeln!(
        out,
        "hitting the disk — §3.6's internode paging plus §5's load balancing."
    )
    .unwrap();

    // Verify data survived the entire eviction/transfer dance.
    let node0 = ssi.node(NodeId(0));
    for p in [0u32, 100, 200, region_pages - 1] {
        if let Some(v) = node0.vm.peek_task_page(tasks[0], p as u64) {
            assert_eq!(v, 7000 + p as u64, "page {p} corrupted by internode paging");
        }
    }
    writeln!(
        out,
        "data integrity verified across eviction, transfer and refault."
    )
    .unwrap();
    (out, ssi.world.events_processed())
}

fn main() {
    let mut sweep = Sweep::from_env("ablation_paging");
    sweep.cell("squeeze+rescan", experiment);
    let report = sweep.run();
    print!("{}", report.values().next().expect("one cell"));
    report.finish();
}
