//! Prefetch ablation: access-pattern-driven owner-hint prefetch and
//! cross-node page readahead (§6 future work, "read clustering"), off vs
//! hint-only vs hint+data.
//!
//! Each node runs a per-object stream detector over its local demand
//! faults; once a stride survives `min_run` faults the engine (a) lets
//! peers piggyback **owner hints** for the predicted window on frames
//! already flowing back (zero extra frames, a few hint bytes), and (b)
//! pulls **speculative read copies** of the window through the normal
//! protocol, bounded by an in-flight budget and cancelled on a stride
//! break. This harness sweeps the streaming patterns where that should
//! hide demand faults — `filescan` (pure stride-1 read scan), `chain`
//! (writer hands a region to the next reader), `prodcons` (one writer
//! fanning out to readers) — plus `migratory` as the honest counter-case
//! (write-token hops; speculative read copies are invalidated unread and
//! show up under `asvm.prefetch.wasted`).
//!
//! Headline metrics: **faults per kilo-access** (demand faults /
//! analytic access count × 1000) and **demand-fault latency**. Honest
//! accounting rides along: `asvm.prefetch.{issued,hit,late,wasted}` and
//! wasted transfer kilobytes.
//!
//! All arms run coalescing (the hint tier's carrier) and identical
//! per-touch think time, so the only difference between arms is the
//! prefetch engine. Backend rows: the scan on RDMA (speculative reads go
//! one-sided, `transport.rdma.prefetch_read`) and prodcons on NORMA-IPC.
//!
//! Environment knobs (CI smoke): `ASVM_PREFETCH_SEED`.
//!
//! Determinism: fully seeded; `--json --stable-json` regenerates
//! `BENCH_prefetch.json` byte-identically.

use asvm::{AsvmConfig, PrefetchCfg};
use bench::sweep::Sweep;
use cluster::ManagerKind;
use svmsim::{Dur, FaultPlan};
use transport::Transport;
use workloads::{run_pattern_backend_seeded, Pattern, PatternOutcome};

const NODES: u16 = 4;
const PAGES: u32 = 64;
const DEPTH: u32 = 8;
const THINK_US: f64 = 800.0;
/// Page size of `MachineConfig::paragon` — the wasted-kilobytes factor.
const PAGE_KB: u64 = 8;

const PATTERNS: [(&str, Pattern); 4] = [
    ("filescan", Pattern::Scan { rounds: 2 }),
    (
        "chain",
        Pattern::Chain {
            rounds: 8,
            read_pages: PAGES,
        },
    ),
    ("prodcons", Pattern::ProducerConsumer { rounds: 4 }),
    ("migratory", Pattern::Migratory { rounds: 4 }),
];

/// The waste counter-case: the reader consumes only the first few pages
/// of each hand-off, so the speculative window overshoots its interest
/// and the next round's writer invalidates the overshoot unread.
const HANDOFF: Pattern = Pattern::Chain {
    rounds: 8,
    read_pages: 6,
};

const ARMS: [(&str, u8); 3] = [("off", 0), ("hint", 1), ("hint+data", 2)];

fn seed() -> u64 {
    match std::env::var("ASVM_PREFETCH_SEED") {
        Ok(v) => v.parse().expect("ASVM_PREFETCH_SEED: u64"),
        Err(_) => 1996,
    }
}

fn arm_cfg(arm: u8) -> AsvmConfig {
    let mut cfg = AsvmConfig::default().coalesced();
    cfg.prefetch = match arm {
        0 => PrefetchCfg::off(),
        1 => PrefetchCfg::hints_only(DEPTH),
        _ => PrefetchCfg::streaming(DEPTH),
    };
    if arm == 3 {
        // The latch demo: the online policy watches the speculation
        // record and switches the data tier off once the wasted share
        // crosses `prefetch_wasted_pct` (short window so the latch can
        // engage within the bench's few rounds). Mode management is off
        // so the write-heavy mix cannot strip prefetch outright via the
        // Static mode — only the wasted-ratio latch acts, which is the
        // mechanism this arm demonstrates.
        cfg.policy.enabled = true;
        cfg.policy.manage_prefetch = false;
        cfg.policy.manage_coalesce = false;
        // Short window, no hysteresis: each node is the stream's reader
        // for only two of the eight rounds, so the latch must land on
        // the first bad window to cap the second reader round.
        cfg.policy.window = 8;
        cfg.policy.hysteresis = 1;
    }
    cfg
}

fn run_cell(
    pattern: Pattern,
    arm: u8,
    transport: Transport,
) -> (PatternOutcome, u64, Vec<(String, u64)>) {
    let out = run_pattern_backend_seeded(
        ManagerKind::Asvm(arm_cfg(arm)),
        transport,
        NODES,
        PAGES,
        pattern,
        FaultPlan::none(),
        Dur::from_micros_f64(THINK_US),
        seed(),
    );
    assert!(out.completed, "prefetch cell tasks finish");
    let o = out.outcome;
    let accesses = pattern.accesses(NODES, PAGES);
    let counters = vec![
        ("page.faults".to_string(), o.faults),
        (
            "fpka_x10".to_string(),
            (o.faults_per_kilo_access(accesses) * 10.0).round() as u64,
        ),
        (
            "fault_us_mean".to_string(),
            (o.mean_fault_ms * 1000.0).round() as u64,
        ),
        ("asvm.prefetch.issued".to_string(), o.prefetch_issued),
        ("asvm.prefetch.hit".to_string(), o.prefetch_hit),
        ("asvm.prefetch.late".to_string(), o.prefetch_late),
        ("asvm.prefetch.wasted".to_string(), o.prefetch_wasted),
        ("asvm.prefetch.cancelled".to_string(), o.prefetch_cancelled),
        ("asvm.prefetch.hint".to_string(), o.prefetch_hints),
        ("wasted_kb".to_string(), o.prefetch_wasted * PAGE_KB),
        (
            "transport.rdma.prefetch_read".to_string(),
            o.rdma_prefetch_reads,
        ),
        (
            "asvm.policy.prefetch_off".to_string(),
            o.policy_prefetch_off,
        ),
    ];
    let events = o.events;
    (o, events, counters)
}

fn main() {
    let mut sweep = Sweep::from_env("prefetch");
    // STS: every pattern × every arm.
    for (label, pattern) in PATTERNS {
        for (arm_label, arm) in ARMS {
            sweep.cell_with_counters(format!("sts / {label} / {arm_label}"), move || {
                run_cell(pattern, arm, Transport::STS)
            });
        }
    }
    // The waste counter-case, plus the policy latch that caps it.
    for (arm_label, arm) in [("off", 0u8), ("hint+data", 2), ("latch", 3)] {
        sweep.cell_with_counters(format!("sts / handoff / {arm_label}"), move || {
            run_cell(HANDOFF, arm, Transport::STS)
        });
    }
    // Backend rows: the streaming scan on RDMA (speculative reads go
    // one-sided), prodcons on NORMA-IPC.
    for (arm_label, arm) in [("off", 0u8), ("hint+data", 2)] {
        let (label, pattern) = PATTERNS[0];
        sweep.cell_with_counters(format!("rdma / {label} / {arm_label}"), move || {
            run_cell(pattern, arm, Transport::RDMA)
        });
    }
    for (arm_label, arm) in [("off", 0u8), ("hint+data", 2)] {
        let (label, pattern) = PATTERNS[2];
        sweep.cell_with_counters(format!("norma / {label} / {arm_label}"), move || {
            run_cell(pattern, arm, Transport::NORMA)
        });
    }
    let report = sweep.run();

    println!(
        "Prefetch ablation ({NODES} nodes, {PAGES} pages, depth {DEPTH}, \
         {THINK_US:.0}us think/touch, seed {})",
        seed()
    );
    println!("fpka = demand faults per 1000 accesses (analytic access count per pattern)");
    println!(
        "{:<22}{:>8}{:>8}{:>8}{:>9}{:>9}{:>8}{:>8}{:>8}{:>8}",
        "pattern", "arm", "faults", "fpka", "flt us", "issued", "hit", "late", "wasted", "hints"
    );
    println!("{}", "-".repeat(96));
    let mut cells = report.values();
    let print_row = |label: &str, arm: &str, pattern: Pattern, o: &PatternOutcome| {
        let accesses = pattern.accesses(NODES, PAGES);
        println!(
            "{:<22}{:>8}{:>8}{:>8.1}{:>9.0}{:>9}{:>8}{:>8}{:>8}{:>8}",
            label,
            arm,
            o.faults,
            o.faults_per_kilo_access(accesses),
            o.mean_fault_ms * 1000.0,
            o.prefetch_issued,
            o.prefetch_hit,
            o.prefetch_late,
            o.prefetch_wasted,
            o.prefetch_hints,
        );
    };
    for (label, pattern) in PATTERNS {
        for (arm_label, _) in ARMS {
            let o = cells.next().expect("sts cell");
            print_row(&format!("sts / {label}"), arm_label, pattern, o);
        }
    }
    for arm_label in ["off", "hint+data", "latch"] {
        let o = cells.next().expect("handoff cell");
        print_row("sts / handoff", arm_label, HANDOFF, o);
    }
    for (arm_label, _) in [("off", ()), ("hint+data", ())] {
        let o = cells.next().expect("rdma cell");
        print_row("rdma / filescan", arm_label, PATTERNS[0].1, o);
    }
    for (arm_label, _) in [("off", ()), ("hint+data", ())] {
        let o = cells.next().expect("norma cell");
        print_row("norma / prodcons", arm_label, PATTERNS[2].1, o);
    }
    println!();
    println!("migratory (pure write-token hops) earns zero speculation: only read");
    println!("activity drives speculative pulls. handoff is the waste counter-case:");
    println!("the reader consumes 6 of 64 handed-off pages, so the speculative window");
    println!("overshoots its interest and the overshoot copies are invalidated or");
    println!("overwritten unread (wasted column); the latch arm shows asvm::policy");
    println!("capping that via asvm.policy.prefetch_off.");
    report.finish();
}
