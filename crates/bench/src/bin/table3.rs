//! Regenerates **Table 3: EM3D Timings (seconds)** — execution times of
//! 100 iterations of the EM3D computation loop for 64 000, 256 000 and
//! 1 024 000 cells on 1–64 nodes, under ASVM and NMK13 XMM.
//!
//! Entries marked `*` were measured on a 32 MB node (the data set exceeds
//! a 16 MB node's user memory); `**` entries are omitted because the
//! combined memory of the nodes cannot hold the data set — the same
//! footnotes as the paper.

use bench::sweep::Sweep;
use cluster::ManagerKind;
use workloads::{em3d_run, Em3dSpec};

const NODES: [u16; 7] = [1, 2, 4, 8, 16, 32, 64];

struct PaperRow {
    cells: u64,
    asvm: [Option<f64>; 7],
    xmm: [Option<f64>; 7],
}

const PAPER: [PaperRow; 3] = [
    PaperRow {
        cells: 64_000,
        asvm: [
            Some(43.6),
            Some(32.0),
            Some(19.9),
            Some(13.9),
            Some(11.2),
            Some(9.86),
            Some(9.55),
        ],
        xmm: [
            Some(43.6),
            Some(151.0),
            Some(213.0),
            Some(392.0),
            Some(755.0),
            Some(1405.0),
            Some(2735.0),
        ],
    },
    PaperRow {
        cells: 256_000,
        asvm: [
            Some(174.0),
            None,
            None,
            Some(33.6),
            Some(21.5),
            Some(15.6),
            Some(12.8),
        ],
        xmm: [
            Some(174.0),
            None,
            None,
            Some(520.0),
            Some(842.0),
            Some(1604.0),
            Some(2957.0),
        ],
    },
    PaperRow {
        cells: 1_024_000,
        asvm: [Some(698.0), None, None, None, None, Some(54.2), Some(24.4)],
        xmm: [
            Some(698.0),
            None,
            None,
            None,
            None,
            Some(1863.0),
            Some(3373.0),
        ],
    },
];

fn run_cell(kind: ManagerKind, nodes: u16, cells: u64, paper: Option<f64>) -> (String, u64) {
    let spec = Em3dSpec::paper(kind, nodes, cells);
    if !spec.feasible() {
        // `*` = needs a 32 MB node (only possible sequentially);
        // `**` = does not fit at all.
        if nodes == 1 {
            let spec32 = Em3dSpec {
                mem_32mb: true,
                ..spec
            };
            if spec32.feasible() {
                let out = em3d_run(spec32);
                return (
                    format!("{:>7.1}/{:<7.1}*", paper.unwrap_or(0.0), out.elapsed_secs),
                    out.events,
                );
            }
        }
        return (format!("{:>8}{:<8}", "", "**"), 0);
    }
    let out = em3d_run(spec);
    let text = match paper {
        Some(p) => format!("{:>7.1}/{:<8.1}", p, out.elapsed_secs),
        None => format!("{:>7}/{:<8.1}", "-", out.elapsed_secs),
    };
    (text, out.events)
}

fn main() {
    // Sequential baselines run with 32 MB nodes, as in the paper.
    let mut sweep = Sweep::from_env("table3");
    for row in &PAPER {
        for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
            let paper = match kind {
                ManagerKind::Asvm(_) => &row.asvm,
                ManagerKind::Xmm { .. } => &row.xmm,
            };
            for (i, n) in NODES.iter().enumerate() {
                let (nodes, cells, paper_val) = (*n, row.cells, paper[i]);
                sweep.cell(
                    format!("{} {}k {}n", kind.label(), cells / 1000, nodes),
                    move || run_cell(kind, nodes, cells, paper_val),
                );
            }
        }
    }
    let report = sweep.run();

    println!("Table 3: EM3D Timings (seconds) — paper/measured");
    println!("(* sequential baseline on a 32 MB node; ** does not fit in memory)");
    let mut cells = report.values();
    for row in &PAPER {
        for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
            print!("{:<6}{:<8}", kind.label(), row.cells / 1000);
            for _ in NODES {
                print!("{:>17}", cells.next().expect("one result per cell"));
            }
            println!();
        }
    }
    println!();
    println!("columns: 1, 2, 4, 8, 16, 32, 64 nodes; problem size in kilo-cells");
    report.finish();
}
