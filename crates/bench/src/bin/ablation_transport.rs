//! Ablation for the paper's §3.1 transport claims:
//!
//! 1. *"NORMA IPC is responsible for about 90 percent of the latency
//!    involved in resolving remote page faults for memory that is shared
//!    through XMM"* — we re-run an XMM remote fault with NORMA-IPC's
//!    software overheads replaced by STS-class ones (and XMM's heavyweight
//!    IPC handling by ASVM-class handling) and report the share of latency
//!    the transport stack was responsible for.
//! 2. *"transferring a write permission from one node to another using
//!    XMMI takes five messages, two of them containing page contents. With
//!    a more suitable protocol, this number could be reduced to three
//!    messages ... only one of them containing page contents"* — we count
//!    the messages each implementation actually sends.

use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{CostModel, MachineConfig, NodeId};
use workloads::{fault_probe, FaultProbeSpec, ProbeAccess};

/// Runs the XMM write-transfer probe (dirty page at one node, measured
/// write fault at another) under the given cost model; returns (latency
/// ms, messages, page messages).
fn xmm_probe(cost: CostModel) -> (f64, u64, u64) {
    let mut cfg = MachineConfig::paragon(4);
    cfg.cost = cost;
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::xmm(), 7);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    // Initializer dirties the page; a reader forces the coherent version to
    // the pager (paying the paging-space write up front); the measured
    // fault then exercises the pure transfer protocol.
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).unwrap();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(2)).install_task(
        tasks[2],
        Box::new(ScriptProgram::new(vec![
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(2), cluster::Msg::Resume(tasks[2]));
    ssi.run(1_000_000).unwrap();
    ssi.world.stats_mut().reset();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(3)).install_task(
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: 0,
                access: Access::Write,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(3), cluster::Msg::Resume(tasks[3]));
    ssi.run(1_000_000).unwrap();
    let t = ssi.stats().tally("fault.ms").unwrap();
    (
        t.mean().as_millis_f64(),
        ssi.stats().counter("norma.messages") + ssi.stats().counter("sts.messages"),
        ssi.stats().counter("norma.page_messages") + ssi.stats().counter("sts.page_messages"),
    )
}

fn main() {
    // --- Message counts ----------------------------------------------------
    // Count on the dirty-page transfer (write permission moves from the
    // current writer): the coherent version must reach the pager first.
    let xmm_dirty = fault_probe(FaultProbeSpec {
        kind: ManagerKind::xmm(),
        read_copies: 1,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
    });
    let asvm = fault_probe(FaultProbeSpec {
        kind: ManagerKind::asvm(),
        read_copies: 1,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
    });
    println!("write-permission transfer from the current writer:");
    println!(
        "  XMMI : {:>3} messages, {} carrying page contents \
         (paper: 5 msgs, 2 pages; ours adds the ack/completion bookkeeping)",
        xmm_dirty.protocol_messages, xmm_dirty.page_messages
    );
    println!(
        "  ASVM : {:>3} messages, {} carrying page contents \
         (paper: 3 msgs, 1 page; ours adds the static-manager hint update)",
        asvm.protocol_messages, asvm.page_messages
    );

    // --- Transport share of XMM fault latency --------------------------------
    let (xmm_ms, _, _) = xmm_probe(CostModel::default());
    let mut stripped = CostModel::default();
    stripped.norma_send_cpu = stripped.sts_send_cpu;
    stripped.norma_recv_cpu = stripped.sts_recv_cpu;
    stripped.norma_header_bytes = stripped.sts_header_bytes;
    stripped.xmm_handle = stripped.asvm_handle;
    stripped.xmm_ack_handle = stripped.asvm_ack_handle;
    let (fast_ms, _, _) = xmm_probe(stripped);
    let share = (xmm_ms - fast_ms) / xmm_ms * 100.0;
    println!();
    println!("XMM remote write fault (warm pager):");
    println!("  NORMA-IPC transport + handling : {xmm_ms:>7.2} ms");
    println!("  STS-class transport + handling : {fast_ms:>7.2} ms");
    println!("  transport share of latency     : {share:>6.1} %   (paper: ~90 %)");

    // --- The converse: the unchanged ASVM state machines over NORMA-IPC ----
    let asvm_norma = asvm_over(transport::Transport::NORMA);
    let asvm_sts = asvm_over(transport::Transport::STS);
    println!();
    println!("ASVM write fault (1 read copy), same state machines:");
    println!("  over STS (dedicated transport) : {asvm_sts:>7.2} ms");
    println!("  over NORMA-IPC                 : {asvm_norma:>7.2} ms");
    println!(
        "  the dedicated transport buys   : {:>6.1}x",
        asvm_norma / asvm_sts
    );
}

/// The ASVM 1-read-copy write probe with the protocol carried by `t`.
fn asvm_over(t: transport::Transport) -> f64 {
    use cluster::Ssi;
    use machvm::{Access, Inherit};
    use svmsim::NodeId;
    let mut ssi = Ssi::new(4, ManagerKind::asvm(), 7);
    ssi.set_asvm_transport(t);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let tk = ssi.alloc_task();
            ssi.map_shared(
                tk,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            tk
        })
        .collect();
    ssi.finalize();
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).unwrap();
    ssi.world.stats_mut().reset();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(3)).install_task(
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: 0,
                access: Access::Write,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(3), cluster::Msg::Resume(tasks[3]));
    ssi.run(1_000_000).unwrap();
    ssi.stats()
        .tally("fault.ms")
        .unwrap()
        .mean()
        .as_millis_f64()
}
