//! Ablation for the paper's §3.1 transport claims:
//!
//! 1. *"NORMA IPC is responsible for about 90 percent of the latency
//!    involved in resolving remote page faults for memory that is shared
//!    through XMM"* — we re-run an XMM remote fault with NORMA-IPC's
//!    software overheads replaced by STS-class ones (and XMM's heavyweight
//!    IPC handling by ASVM-class handling) and report the share of latency
//!    the transport stack was responsible for.
//! 2. *"transferring a write permission from one node to another using
//!    XMMI takes five messages, two of them containing page contents. With
//!    a more suitable protocol, this number could be reduced to three
//!    messages ... only one of them containing page contents"* — we count
//!    the messages each implementation actually sends.
//!
//! 3. The modern coda: a 3-way backend × sharing-pattern sweep (NORMA-IPC,
//!    STS with coalescing, one-sided RDMA) over the synthetic patterns.
//!    The 1996 trade-off holds where ownership migrates — ASVM's 3-message
//!    write transfer over the thin coalescable transport stays ahead of an
//!    interrupt-driven RNIC control path — but inverts on read-heavy
//!    sharing, where a one-sided pull serves a hot page with zero owner
//!    CPU occupancy and no handler serialization. Per-backend message
//!    counters ride along in every cell's JSON record.

use bench::sweep::{CellCounters, Sweep};
use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{CostModel, Dur, FaultPlan, MachineConfig, NodeId};
use transport::Transport;
use workloads::{fault_probe, run_pattern_backend, FaultProbeSpec, Pattern, ProbeAccess};

/// One cell's measurement: latency plus the message counters that the
/// message-count cells care about.
#[derive(Clone, Copy, Debug)]
struct Probe {
    ms: f64,
    messages: u64,
    page_messages: u64,
}

/// Runs the XMM write-transfer probe (dirty page at one node, measured
/// write fault at another) under the given cost model.
fn xmm_probe(cost: CostModel) -> (Probe, u64) {
    let mut cfg = MachineConfig::paragon(4);
    cfg.cost = cost;
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::xmm(), 7);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    // Initializer dirties the page; a reader forces the coherent version to
    // the pager (paying the paging-space write up front); the measured
    // fault then exercises the pure transfer protocol.
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).unwrap();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(2)).install_task(
        tasks[2],
        Box::new(ScriptProgram::new(vec![
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(2), cluster::Msg::Resume(tasks[2]));
    ssi.run(1_000_000).unwrap();
    ssi.world.stats_mut().reset();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(3)).install_task(
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: 0,
                access: Access::Write,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(3), cluster::Msg::Resume(tasks[3]));
    ssi.run(1_000_000).unwrap();
    let t = ssi.stats().tally("fault.ms").unwrap();
    let probe = Probe {
        ms: t.mean().as_millis_f64(),
        messages: ssi.stats().counter("norma.messages") + ssi.stats().counter("sts.messages"),
        page_messages: ssi.stats().counter("norma.page_messages")
            + ssi.stats().counter("sts.page_messages"),
    };
    (probe, ssi.world.events_processed())
}

/// The ASVM 1-read-copy write probe with the protocol carried by `t`.
fn asvm_over(t: transport::Transport) -> (Probe, u64) {
    let mut ssi = Ssi::new(4, ManagerKind::asvm(), 7);
    ssi.set_asvm_transport(t);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let tk = ssi.alloc_task();
            ssi.map_shared(
                tk,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            tk
        })
        .collect();
    ssi.finalize();
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).unwrap();
    ssi.world.stats_mut().reset();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(3)).install_task(
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: 0,
                access: Access::Write,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(3), cluster::Msg::Resume(tasks[3]));
    ssi.run(1_000_000).unwrap();
    let probe = Probe {
        ms: ssi
            .stats()
            .tally("fault.ms")
            .unwrap()
            .mean()
            .as_millis_f64(),
        messages: 0,
        page_messages: 0,
    };
    (probe, ssi.world.events_processed())
}

/// The backend arms of the 3-way sweep. STS runs with the frame combiner
/// on (coalescing is that transport's capability — see PR 5); the other
/// two cannot coalesce: NORMA's typed envelopes gain nothing from sharing
/// a frame, and on RDMA every verb is its own work request. All arms get
/// the same readahead so the protocol configuration differs only where
/// the backend itself does.
fn backend_arms() -> [(&'static str, Transport, asvm::AsvmConfig); 3] {
    let ra = asvm::AsvmConfig::with_readahead(8);
    [
        ("norma", Transport::NORMA, ra),
        ("sts+co", Transport::STS, ra.coalesced()),
        ("rdma", Transport::RDMA, ra),
    ]
}

/// The sharing-pattern arms: migratory and producer/consumer exercise the
/// 3-message write transfer; the hotspot is read-heavy — after every
/// write round, every reader re-faults the hot set against one owner.
fn pattern_arms() -> [(&'static str, Pattern); 3] {
    [
        ("migratory", Pattern::Migratory { rounds: 4 }),
        ("prodcons", Pattern::ProducerConsumer { rounds: 4 }),
        (
            "hotspot",
            Pattern::Hotspot {
                rounds: 24,
                write_every: 8,
            },
        ),
    ]
}

/// One cell of the backend × pattern sweep: 4 nodes × 32 pages, paced at
/// 800µs of compute per touch (see `run_pattern_paced` on why pacing
/// makes the fault denominator pattern-dependent rather than
/// fill-spacing-dependent). The completion time is the headline metric;
/// the per-backend message counters land in the cell's JSON record.
fn pattern_cell(
    t: Transport,
    cfg: asvm::AsvmConfig,
    pattern: Pattern,
) -> (Probe, u64, CellCounters) {
    let out = run_pattern_backend(
        ManagerKind::Asvm(cfg),
        t,
        4,
        32,
        pattern,
        FaultPlan::none(),
        Dur::from_micros_f64(800.0),
    );
    assert!(out.completed, "backend sweep tasks finish");
    let o = out.outcome;
    let counters: CellCounters = vec![
        ("elapsed_us".into(), (o.elapsed_s * 1e6).round() as u64),
        (
            "mean_fault_us".into(),
            (o.mean_fault_ms * 1e3).round() as u64,
        ),
        ("faults".into(), o.faults),
        ("sts.messages".into(), o.sts_msgs),
        ("norma.messages".into(), o.norma_msgs),
        ("rdma.messages".into(), o.rdma_msgs),
        ("transport.rdma.read_served".into(), o.rdma_read_served),
        ("transport.rdma.read_fallback".into(), o.rdma_read_fallback),
    ];
    (
        Probe {
            ms: o.elapsed_s * 1e3,
            messages: o.messages,
            page_messages: o.rdma_read_served,
        },
        o.events,
        counters,
    )
}

/// Fault-plan seed for the faulted arm (`ASVM_FAULTS_SEED`, default 1996
/// — the CI backend matrix runs 1996 and 777).
fn plan_seed() -> u64 {
    std::env::var("ASVM_FAULTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1996)
}

/// The reliability contrast: the same seeded lossy plan over each backend.
/// STS and NORMA recover by per-link ARQ retransmission; RDMA has no
/// software ARQ (reliability is in the fabric; only the one-sided
/// read/reply pair crosses the fault seam), so its losses surface as
/// requester watchdog re-issues instead — `asvm.retry.resent` stays zero
/// while `asvm.recover.reissue` does the work. See docs/RELIABILITY.md.
fn faulted_cell(t: Transport, cfg: asvm::AsvmConfig) -> (Probe, u64, CellCounters) {
    let seed = plan_seed();
    let plan = FaultPlan::seeded(seed)
        .with_drop_ppm(10_000)
        .with_dup_ppm(2_000);
    let out = run_pattern_backend(
        ManagerKind::Asvm(cfg),
        t,
        4,
        16,
        Pattern::Uniform {
            ops: 80,
            write_pct: 30,
            seed,
        },
        plan,
        Dur::ZERO,
    );
    assert!(
        out.completed,
        "faulted backend cell completes (resent={} reissued={})",
        out.resent, out.reissued
    );
    let o = out.outcome;
    let counters: CellCounters = vec![
        ("elapsed_us".into(), (o.elapsed_s * 1e6).round() as u64),
        ("faults".into(), o.faults),
        ("sts.messages".into(), o.sts_msgs),
        ("norma.messages".into(), o.norma_msgs),
        ("rdma.messages".into(), o.rdma_msgs),
        ("transport.fault.dropped".into(), out.dropped),
        ("asvm.retry.resent".into(), out.resent),
        ("asvm.recover.reissue".into(), out.reissued),
    ];
    (
        Probe {
            ms: o.elapsed_s * 1e3,
            messages: o.messages,
            page_messages: 0,
        },
        o.events,
        counters,
    )
}

fn count_probe(kind: ManagerKind) -> (Probe, u64) {
    let out = fault_probe(FaultProbeSpec {
        kind,
        read_copies: 1,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
    });
    (
        Probe {
            ms: out.latency.as_millis_f64(),
            messages: out.protocol_messages,
            page_messages: out.page_messages,
        },
        out.events,
    )
}

fn main() {
    let mut stripped = CostModel::default();
    stripped.norma_send_cpu = stripped.sts_send_cpu;
    stripped.norma_recv_cpu = stripped.sts_recv_cpu;
    stripped.norma_header_bytes = stripped.sts_header_bytes;
    stripped.xmm_handle = stripped.asvm_handle;
    stripped.xmm_ack_handle = stripped.asvm_ack_handle;

    let mut sweep = Sweep::from_env("ablation_transport");
    sweep.cell("xmm message counts", || count_probe(ManagerKind::xmm()));
    sweep.cell("asvm message counts", || count_probe(ManagerKind::asvm()));
    sweep.cell("xmm over norma", || xmm_probe(CostModel::default()));
    sweep.cell("xmm over sts-class", move || xmm_probe(stripped));
    sweep.cell("asvm over norma", || asvm_over(transport::Transport::NORMA));
    sweep.cell("asvm over sts", || asvm_over(transport::Transport::STS));
    for (pname, pattern) in pattern_arms() {
        for (bname, t, cfg) in backend_arms() {
            sweep.cell_with_counters(format!("{pname} over {bname}"), move || {
                pattern_cell(t, cfg, pattern)
            });
        }
    }
    for (bname, t, cfg) in backend_arms() {
        sweep.cell_with_counters(format!("faulted uniform over {bname}"), move || {
            faulted_cell(t, cfg)
        });
    }
    let report = sweep.run();
    let cells: Vec<Probe> = report.values().copied().collect();
    let (xmm_dirty, asvm, xmm_norma, xmm_fast, asvm_norma, asvm_sts) =
        (cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]);
    let matrix = &cells[6..];

    // --- Message counts ----------------------------------------------------
    // Count on the dirty-page transfer (write permission moves from the
    // current writer): the coherent version must reach the pager first.
    println!("write-permission transfer from the current writer:");
    println!(
        "  XMMI : {:>3} messages, {} carrying page contents \
         (paper: 5 msgs, 2 pages; ours adds the ack/completion bookkeeping)",
        xmm_dirty.messages, xmm_dirty.page_messages
    );
    println!(
        "  ASVM : {:>3} messages, {} carrying page contents \
         (paper: 3 msgs, 1 page; ours adds the static-manager hint update)",
        asvm.messages, asvm.page_messages
    );

    // --- Transport share of XMM fault latency --------------------------------
    let share = (xmm_norma.ms - xmm_fast.ms) / xmm_norma.ms * 100.0;
    println!();
    println!("XMM remote write fault (warm pager):");
    println!(
        "  NORMA-IPC transport + handling : {:>7.2} ms",
        xmm_norma.ms
    );
    println!("  STS-class transport + handling : {:>7.2} ms", xmm_fast.ms);
    println!("  transport share of latency     : {share:>6.1} %   (paper: ~90 %)");

    // --- The converse: the unchanged ASVM state machines over NORMA-IPC ----
    println!();
    println!("ASVM write fault (1 read copy), same state machines:");
    println!("  over STS (dedicated transport) : {:>7.2} ms", asvm_sts.ms);
    println!(
        "  over NORMA-IPC                 : {:>7.2} ms",
        asvm_norma.ms
    );
    println!(
        "  the dedicated transport buys   : {:>6.1}x",
        asvm_norma.ms / asvm_sts.ms
    );

    // --- Backend × pattern: where the 1996 trade-off inverts ----------------
    println!();
    println!("backend x pattern sweep (4 nodes, 32 pages, 800 us/touch; run time in ms):");
    let backends = backend_arms();
    let patterns = pattern_arms();
    println!(
        "  {:<10} {:>10} {:>10} {:>10}   winner",
        "pattern", backends[0].0, backends[1].0, backends[2].0
    );
    for (pi, (pname, _)) in patterns.iter().enumerate() {
        let row = &matrix[pi * backends.len()..(pi + 1) * backends.len()];
        let win = row
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.ms.total_cmp(&b.1.ms))
            .map(|(i, _)| backends[i].0)
            .unwrap();
        println!(
            "  {:<10} {:>10.1} {:>10.1} {:>10.1}   {}",
            pname, row[0].ms, row[1].ms, row[2].ms, win
        );
    }
    let counter = |label: &str, key: &str| -> u64 {
        report
            .cells
            .iter()
            .find(|c| c.label == label)
            .and_then(|c| c.counters.iter().find(|(k, _)| k == key))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!(
        "  rdma one-sided reads on the hotspot: {} served by the owner's NIC, {} raised to its host",
        counter("hotspot over rdma", "transport.rdma.read_served"),
        counter("hotspot over rdma", "transport.rdma.read_fallback"),
    );

    // --- Reliability under loss: ARQ retransmission vs watchdog re-issue ----
    println!();
    println!("faulted uniform (1% drop, 0.2% dup), recovery by backend:");
    for (bname, _, _) in backends {
        let label = format!("faulted uniform over {bname}");
        println!(
            "  {:<7}: {:>3} dropped, {:>3} ARQ retransmissions, {:>3} watchdog re-issues",
            bname,
            counter(&label, "transport.fault.dropped"),
            counter(&label, "asvm.retry.resent"),
            counter(&label, "asvm.recover.reissue"),
        );
    }
    report.finish();
}
