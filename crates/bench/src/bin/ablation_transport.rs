//! Ablation for the paper's §3.1 transport claims:
//!
//! 1. *"NORMA IPC is responsible for about 90 percent of the latency
//!    involved in resolving remote page faults for memory that is shared
//!    through XMM"* — we re-run an XMM remote fault with NORMA-IPC's
//!    software overheads replaced by STS-class ones (and XMM's heavyweight
//!    IPC handling by ASVM-class handling) and report the share of latency
//!    the transport stack was responsible for.
//! 2. *"transferring a write permission from one node to another using
//!    XMMI takes five messages, two of them containing page contents. With
//!    a more suitable protocol, this number could be reduced to three
//!    messages ... only one of them containing page contents"* — we count
//!    the messages each implementation actually sends.

use bench::sweep::Sweep;
use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::{CostModel, MachineConfig, NodeId};
use workloads::{fault_probe, FaultProbeSpec, ProbeAccess};

/// One cell's measurement: latency plus the message counters that the
/// message-count cells care about.
#[derive(Clone, Copy, Debug)]
struct Probe {
    ms: f64,
    messages: u64,
    page_messages: u64,
}

/// Runs the XMM write-transfer probe (dirty page at one node, measured
/// write fault at another) under the given cost model.
fn xmm_probe(cost: CostModel) -> (Probe, u64) {
    let mut cfg = MachineConfig::paragon(4);
    cfg.cost = cost;
    let mut ssi = Ssi::with_machine(cfg, ManagerKind::xmm(), 7);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    // Initializer dirties the page; a reader forces the coherent version to
    // the pager (paying the paging-space write up front); the measured
    // fault then exercises the pure transfer protocol.
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).unwrap();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(2)).install_task(
        tasks[2],
        Box::new(ScriptProgram::new(vec![
            Step::Read { va_page: 0 },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(2), cluster::Msg::Resume(tasks[2]));
    ssi.run(1_000_000).unwrap();
    ssi.world.stats_mut().reset();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(3)).install_task(
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: 0,
                access: Access::Write,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(3), cluster::Msg::Resume(tasks[3]));
    ssi.run(1_000_000).unwrap();
    let t = ssi.stats().tally("fault.ms").unwrap();
    let probe = Probe {
        ms: t.mean().as_millis_f64(),
        messages: ssi.stats().counter("norma.messages") + ssi.stats().counter("sts.messages"),
        page_messages: ssi.stats().counter("norma.page_messages")
            + ssi.stats().counter("sts.page_messages"),
    };
    (probe, ssi.world.events_processed())
}

/// The ASVM 1-read-copy write probe with the protocol carried by `t`.
fn asvm_over(t: transport::Transport) -> (Probe, u64) {
    let mut ssi = Ssi::new(4, ManagerKind::asvm(), 7);
    ssi.set_asvm_transport(t);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, 16, false);
    let tasks: Vec<_> = (0..4u16)
        .map(|n| {
            let tk = ssi.alloc_task();
            ssi.map_shared(
                tk,
                NodeId(n),
                0,
                mobj,
                home,
                16,
                Access::Write,
                Inherit::Share,
            );
            tk
        })
        .collect();
    ssi.finalize();
    ssi.spawn(
        NodeId(1),
        tasks[1],
        Box::new(ScriptProgram::new(vec![
            Step::Write {
                va_page: 0,
                value: 1,
            },
            Step::Done,
        ])),
    );
    ssi.run(1_000_000).unwrap();
    ssi.world.stats_mut().reset();
    let now = ssi.world.now();
    ssi.world.node_mut(NodeId(3)).install_task(
        tasks[3],
        Box::new(ScriptProgram::new(vec![
            Step::Touch {
                va_page: 0,
                access: Access::Write,
            },
            Step::Done,
        ])),
        now,
    );
    ssi.world
        .post(now, NodeId(3), cluster::Msg::Resume(tasks[3]));
    ssi.run(1_000_000).unwrap();
    let probe = Probe {
        ms: ssi
            .stats()
            .tally("fault.ms")
            .unwrap()
            .mean()
            .as_millis_f64(),
        messages: 0,
        page_messages: 0,
    };
    (probe, ssi.world.events_processed())
}

fn count_probe(kind: ManagerKind) -> (Probe, u64) {
    let out = fault_probe(FaultProbeSpec {
        kind,
        read_copies: 1,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
    });
    (
        Probe {
            ms: out.latency.as_millis_f64(),
            messages: out.protocol_messages,
            page_messages: out.page_messages,
        },
        out.events,
    )
}

fn main() {
    let mut stripped = CostModel::default();
    stripped.norma_send_cpu = stripped.sts_send_cpu;
    stripped.norma_recv_cpu = stripped.sts_recv_cpu;
    stripped.norma_header_bytes = stripped.sts_header_bytes;
    stripped.xmm_handle = stripped.asvm_handle;
    stripped.xmm_ack_handle = stripped.asvm_ack_handle;

    let mut sweep = Sweep::from_env("ablation_transport");
    sweep.cell("xmm message counts", || count_probe(ManagerKind::xmm()));
    sweep.cell("asvm message counts", || count_probe(ManagerKind::asvm()));
    sweep.cell("xmm over norma", || xmm_probe(CostModel::default()));
    sweep.cell("xmm over sts-class", move || xmm_probe(stripped));
    sweep.cell("asvm over norma", || asvm_over(transport::Transport::NORMA));
    sweep.cell("asvm over sts", || asvm_over(transport::Transport::STS));
    let report = sweep.run();
    let cells: Vec<Probe> = report.values().copied().collect();
    let (xmm_dirty, asvm, xmm_norma, xmm_fast, asvm_norma, asvm_sts) =
        (cells[0], cells[1], cells[2], cells[3], cells[4], cells[5]);

    // --- Message counts ----------------------------------------------------
    // Count on the dirty-page transfer (write permission moves from the
    // current writer): the coherent version must reach the pager first.
    println!("write-permission transfer from the current writer:");
    println!(
        "  XMMI : {:>3} messages, {} carrying page contents \
         (paper: 5 msgs, 2 pages; ours adds the ack/completion bookkeeping)",
        xmm_dirty.messages, xmm_dirty.page_messages
    );
    println!(
        "  ASVM : {:>3} messages, {} carrying page contents \
         (paper: 3 msgs, 1 page; ours adds the static-manager hint update)",
        asvm.messages, asvm.page_messages
    );

    // --- Transport share of XMM fault latency --------------------------------
    let share = (xmm_norma.ms - xmm_fast.ms) / xmm_norma.ms * 100.0;
    println!();
    println!("XMM remote write fault (warm pager):");
    println!(
        "  NORMA-IPC transport + handling : {:>7.2} ms",
        xmm_norma.ms
    );
    println!("  STS-class transport + handling : {:>7.2} ms", xmm_fast.ms);
    println!("  transport share of latency     : {share:>6.1} %   (paper: ~90 %)");

    // --- The converse: the unchanged ASVM state machines over NORMA-IPC ----
    println!();
    println!("ASVM write fault (1 read copy), same state machines:");
    println!("  over STS (dedicated transport) : {:>7.2} ms", asvm_sts.ms);
    println!(
        "  over NORMA-IPC                 : {:>7.2} ms",
        asvm_norma.ms
    );
    println!(
        "  the dedicated transport buys   : {:>6.1}x",
        asvm_norma.ms / asvm_sts.ms
    );
    report.finish();
}
