//! Chaos sweep: every workload pattern run to completion while one node
//! suffers a permanent mid-run blackout.
//!
//! Each cell runs one access pattern on 8 nodes; at 30 ms simulated time
//! node 5 goes dark forever (`FaultPlan::with_blackout` to `Time::MAX`).
//! The recovery layer has to carry the run from there: the failure
//! detector suspects the victim, the request watchdog re-issues stalled
//! requests down the fallback chain, and ownership reconstruction elects
//! new owners for pages the victim held (docs/RELIABILITY.md). A cell
//! that hangs or strands a pending request fails the whole sweep — the
//! assertion, not the timing, is the point of this bench.
//!
//! Cells report elapsed time plus the `asvm.recover.*` /
//! `cluster.suspect.*` counters, landing in `BENCH_chaossweep.json` under
//! `--json` / `--stable-json` (schema in EXPERIMENTS.md).
//!
//! Determinism: the plan seed comes from `ASVM_FAULTS_SEED` (default
//! 1996) and also seeds the uniform cell, so two invocations with the
//! same seed and flags produce byte-identical JSON — CI's chaos-matrix
//! job relies on this.

use bench::sweep::Sweep;
use cluster::ManagerKind;
use svmsim::{FaultPlan, NodeId, Time};
use workloads::{run_pattern_faulted, Pattern};

const NODES: u16 = 8;
const PAGES: u32 = 8;
/// The node blacked out mid-run. Not node 0 (the barrier coordinator and
/// object home) so the chaos hits an "ordinary" participant; its static
/// manager roles still have to rehash onto survivors.
const VICTIM: NodeId = NodeId(5);
/// When the lights go out: late enough that every pattern is mid-flight,
/// early enough that most of the run happens degraded.
const BLACKOUT_AT: Time = Time::from_nanos(30_000_000);

fn plan_seed() -> u64 {
    std::env::var("ASVM_FAULTS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1996)
}

fn run_cell(pattern: Pattern) -> (f64, u64, Vec<(String, u64)>) {
    let plan = FaultPlan::seeded(plan_seed()).with_blackout(VICTIM, BLACKOUT_AT, Time::MAX);
    let out = run_pattern_faulted(ManagerKind::asvm(), NODES, PAGES, pattern, plan);
    assert!(
        out.completed,
        "chaos cell {pattern:?} must complete despite the blackout \
         (suspected={} reissued={} refetched={} elected={})",
        out.suspected, out.reissued, out.refetched, out.elected
    );
    let counters = vec![
        ("suspect.count".to_string(), out.suspected),
        ("recover.reissue".to_string(), out.reissued),
        ("recover.refetch".to_string(), out.refetched),
        ("recover.elected".to_string(), out.elected),
        ("retry.resent".to_string(), out.resent),
        ("retry.exhausted".to_string(), out.exhausted),
        ("fault.blackout".to_string(), out.dropped),
        ("page.faults".to_string(), out.outcome.faults),
    ];
    (out.outcome.elapsed_s, out.outcome.events, counters)
}

fn main() {
    let seed = plan_seed();
    let cells: Vec<(&str, Pattern)> = vec![
        ("migratory", Pattern::Migratory { rounds: 3 }),
        ("producer-consumer", Pattern::ProducerConsumer { rounds: 3 }),
        (
            "hotspot",
            Pattern::Hotspot {
                rounds: 6,
                write_every: 3,
            },
        ),
        (
            "uniform",
            Pattern::Uniform {
                ops: 40,
                write_pct: 30,
                seed,
            },
        ),
    ];
    let mut sweep = Sweep::from_env("chaossweep");
    for (name, pattern) in cells {
        sweep.cell_with_counters(format!("{name} +blackout"), move || run_cell(pattern));
    }
    let report = sweep.run();

    println!(
        "Chaos sweep: {NODES} nodes x {PAGES} pages, node {} dark from {:.0} ms (seed {seed})",
        VICTIM.0,
        BLACKOUT_AT.as_millis_f64()
    );
    println!("{:>28} {:>12}", "cell", "elapsed s");
    for c in &report.cells {
        println!("{:>28} {:>12.4}", c.label, c.value);
    }
    report.finish();
}
