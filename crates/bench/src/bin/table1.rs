//! Regenerates **Table 1: Page Fault Latencies** (milliseconds).
//!
//! Seven characteristic SVM fault types, measured in task context exactly
//! as the paper does, under both ASVM and NMK13 XMM.

use bench::sweep::Sweep;
use cluster::ManagerKind;
use workloads::{fault_probe, FaultProbeSpec, ProbeAccess};

struct Row {
    label: &'static str,
    read_copies: u16,
    faulter_has_copy: bool,
    access: ProbeAccess,
    paper_asvm: f64,
    paper_xmm: f64,
}

const ROWS: &[Row] = &[
    Row {
        label: "write fault, 1 read copy",
        read_copies: 1,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
        paper_asvm: 2.24,
        paper_xmm: 38.42,
    },
    Row {
        label: "write fault, 2 read copies",
        read_copies: 2,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
        paper_asvm: 3.10,
        paper_xmm: 12.92,
    },
    Row {
        label: "write fault, 64 read copies",
        read_copies: 64,
        faulter_has_copy: false,
        access: ProbeAccess::Write,
        paper_asvm: 8.96,
        paper_xmm: 72.18,
    },
    Row {
        label: "write upgrade, 2 read copies",
        read_copies: 2,
        faulter_has_copy: true,
        access: ProbeAccess::Write,
        paper_asvm: 1.51,
        paper_xmm: 3.83,
    },
    Row {
        label: "write upgrade, 64 read copies",
        read_copies: 64,
        faulter_has_copy: true,
        access: ProbeAccess::Write,
        paper_asvm: 7.75,
        paper_xmm: 63.72,
    },
    Row {
        label: "read fault, first reader",
        read_copies: 0,
        faulter_has_copy: false,
        access: ProbeAccess::Read,
        paper_asvm: 2.35,
        paper_xmm: 38.59,
    },
    Row {
        label: "read fault, second reader",
        read_copies: 2,
        faulter_has_copy: false,
        access: ProbeAccess::Read,
        paper_asvm: 2.35,
        paper_xmm: 10.06,
    },
];

fn main() {
    let mut sweep = Sweep::from_env("table1");
    for row in ROWS {
        for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
            let spec = FaultProbeSpec {
                kind,
                read_copies: row.read_copies,
                faulter_has_copy: row.faulter_has_copy,
                access: row.access,
            };
            sweep.cell_with_counters(format!("{} {}", kind.label(), row.label), move || {
                let out = fault_probe(spec);
                let counters = out
                    .msg_counts
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect();
                (out.latency.as_millis_f64(), out.events, counters)
            });
        }
    }
    let report = sweep.run();

    println!("Table 1: Page Fault Latencies (ms) — paper/measured");
    println!("{:<32}{:>18}{:>18}", "Fault Type", "ASVM", "XMM");
    println!("{}", "-".repeat(68));
    let mut cells = report.values();
    for row in ROWS {
        let asvm = cells.next().expect("asvm cell");
        let xmm = cells.next().expect("xmm cell");
        println!(
            "{:<32}{:>18}{:>18}",
            row.label,
            bench::pair(row.paper_asvm, *asvm),
            bench::pair(row.paper_xmm, *xmm),
        );
    }
    report.finish();
}
