//! Coalescing ablation: ASVM wire frames per page fault with the STS
//! message combiner off vs on.
//!
//! The paper's case for a specialized transport is that per-message
//! software overhead — not wire time — dominates remote-fault latency.
//! Coalescing attacks the message *count*: protocol sends headed for the
//! same node within one scheduling step share a single frame (one fixed
//! header, amortized per-subframe demux), acks ride data frames, and every
//! data/ack frame piggybacks the sender's owner hint. This harness sweeps
//! the sharing-heavy patterns with `CoalesceCfg` off and on and reports
//! the headline **messages-per-fault** metric (wire frames per resolved
//! fault, `(Σ asvm.msg.* − asvm.coalesce.merged) / faults`).
//!
//! Both arms run identical readahead (the main source of same-destination
//! bursts) and identical per-touch think time, so the fault denominator
//! depends only on the access pattern — see
//! `workloads::run_pattern_paced` — and the only difference between the
//! arms is the combiner. Migratory rides along as the honest
//! counter-case: its write-token hops serialize one page per step, so
//! there is almost nothing to merge.
//!
//! Determinism: fully seeded; `--json --stable-json` regenerates
//! `BENCH_coalesce.json` byte-identically.

use asvm::AsvmConfig;
use bench::sweep::Sweep;
use cluster::ManagerKind;
use svmsim::Dur;
use workloads::{run_pattern_paced, Pattern, PatternOutcome};

const NODES: u16 = 4;
const PAGES: u32 = 32;
const READAHEAD: u32 = 8;
const THINK_US: f64 = 800.0;

const PATTERNS: [(&str, Pattern); 3] = [
    ("producer/consumer", Pattern::ProducerConsumer { rounds: 4 }),
    (
        "hotspot",
        Pattern::Hotspot {
            rounds: 24,
            write_every: 4,
        },
    ),
    ("migratory", Pattern::Migratory { rounds: 4 }),
];

fn run_cell(pattern: Pattern, coalesce: bool) -> (PatternOutcome, u64, Vec<(String, u64)>) {
    let mut cfg = AsvmConfig::with_readahead(READAHEAD);
    if coalesce {
        cfg = cfg.coalesced();
    }
    let o = run_pattern_paced(
        ManagerKind::Asvm(cfg),
        NODES,
        PAGES,
        pattern,
        Dur::from_micros_f64(THINK_US),
    );
    let counters = vec![
        ("page.faults".to_string(), o.faults),
        ("asvm.msgs".to_string(), o.asvm_msgs),
        ("asvm.frames".to_string(), o.asvm_frames),
        ("coalesce.merged".to_string(), o.coalesce_merged),
        ("coalesce.piggyback_hint".to_string(), o.coalesce_hints),
        ("coalesce.piggyback_ack".to_string(), o.coalesce_acks),
        (
            "frames_per_fault_x100".to_string(),
            (o.messages_per_fault() * 100.0).round() as u64,
        ),
    ];
    let events = o.events;
    (o, events, counters)
}

fn main() {
    let mut sweep = Sweep::from_env("coalesce");
    for (label, pattern) in PATTERNS {
        for (arm, coalesce) in [("off", false), ("on", true)] {
            sweep.cell_with_counters(format!("{label} / coalesce {arm}"), move || {
                run_cell(pattern, coalesce)
            });
        }
    }
    let report = sweep.run();

    println!(
        "STS coalescing ablation ({NODES} nodes, {PAGES} pages, readahead {READAHEAD}, \
         {THINK_US:.0}us think/touch)"
    );
    println!("frames/fault = (logical asvm messages - merged subframes) / faults");
    println!(
        "{:<20}{:>8}{:>10}{:>10}{:>12}{:>12}{:>8}{:>8}",
        "pattern", "faults", "off f/f", "on f/f", "reduction", "merged", "hints", "acks"
    );
    println!("{}", "-".repeat(88));
    let mut cells = report.values();
    for (label, _) in PATTERNS {
        let off = cells.next().expect("off cell");
        let on = cells.next().expect("on cell");
        let (m_off, m_on) = (off.messages_per_fault(), on.messages_per_fault());
        let reduction = if m_off > 0.0 {
            100.0 * (1.0 - m_on / m_off)
        } else {
            0.0
        };
        println!(
            "{:<20}{:>8}{:>10.2}{:>10.2}{:>11.1}%{:>12}{:>8}{:>8}",
            label,
            on.faults,
            m_off,
            m_on,
            reduction,
            on.coalesce_merged,
            on.coalesce_hints,
            on.coalesce_acks
        );
    }
    println!();
    println!("off-arm counters are byte-identical to a build without the combiner;");
    println!("logical asvm.msg.* counts match across arms — coalescing only changes");
    println!("how many wire frames carry them.");
    report.finish();
}
