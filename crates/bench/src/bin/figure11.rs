//! Regenerates **Figure 11: page-fault latency on inherited memory vs.
//! copy-chain length**.
//!
//! A 128 KB region is initialized, a chain of copies is spawned across n
//! nodes by repeated remote forks, and the last task faults in all pages.
//! The paper fits the per-fault latency as `lb + n·la`:
//!
//! * NMK13 XMM: lb ≈ 5.0 ms, la ≈ 4.3 ms per hop (each hop is a blocking
//!   internal-pager fault over NORMA-IPC);
//! * ASVM: lb ≈ 2.7 ms, la ≈ 0.48 ms per hop (pull operations over STS).

use cluster::ManagerKind;
use workloads::{copy_chain_probe, CopyChainSpec};

fn main() {
    let lengths = [1u16, 2, 3, 4, 5, 6, 7, 8];
    println!("Figure 11: inherited-memory fault latency (ms) vs chain length");
    println!("{:>8}{:>12}{:>12}", "chain", "ASVM", "XMM");
    println!("{}", "-".repeat(32));
    let mut asvm = Vec::new();
    let mut xmm = Vec::new();
    for len in lengths {
        let a = copy_chain_probe(CopyChainSpec {
            kind: ManagerKind::asvm(),
            chain_len: len,
            region_pages: 16,
        });
        let x = copy_chain_probe(CopyChainSpec {
            kind: ManagerKind::xmm(),
            chain_len: len,
            region_pages: 16,
        });
        asvm.push(a.mean_fault.as_millis_f64());
        xmm.push(x.mean_fault.as_millis_f64());
        println!(
            "{:>8}{:>12.2}{:>12.2}",
            len,
            a.mean_fault.as_millis_f64(),
            x.mean_fault.as_millis_f64()
        );
    }
    // Least-squares fit of latency = lb + n*la.
    let fit = |ys: &[f64]| {
        let n = ys.len() as f64;
        let xs: Vec<f64> = lengths.iter().map(|l| *l as f64).collect();
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let la = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let lb = (sy - la * sx) / n;
        (lb, la)
    };
    let (alb, ala) = fit(&asvm);
    let (xlb, xla) = fit(&xmm);
    println!();
    println!("fit latency = lb + n*la:");
    println!("  ASVM lb = {alb:.2} ms, la = {ala:.2} ms/hop   (paper: 2.7, 0.48)");
    println!("  XMM  lb = {xlb:.2} ms, la = {xla:.2} ms/hop   (paper: 5.0, 4.3)");
    println!();
    println!(
        "chain of 8 (a 256-node binary-tree spawn): ASVM {:.1} ms, XMM {:.1} ms (paper: 6.4, 35)",
        asvm[7], xmm[7]
    );
}
