//! Regenerates **Figure 11: page-fault latency on inherited memory vs.
//! copy-chain length**.
//!
//! A 128 KB region is initialized, a chain of copies is spawned across n
//! nodes by repeated remote forks, and the last task faults in all pages.
//! The paper fits the per-fault latency as `lb + n·la`:
//!
//! * NMK13 XMM: lb ≈ 5.0 ms, la ≈ 4.3 ms per hop (each hop is a blocking
//!   internal-pager fault over NORMA-IPC);
//! * ASVM: lb ≈ 2.7 ms, la ≈ 0.48 ms per hop (pull operations over STS).

use bench::sweep::Sweep;
use cluster::ManagerKind;
use workloads::{copy_chain_probe, CopyChainSpec};

const LENGTHS: [u16; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn main() {
    let mut sweep = Sweep::from_env("figure11");
    for len in LENGTHS {
        for kind in [ManagerKind::asvm(), ManagerKind::xmm()] {
            let spec = CopyChainSpec {
                kind,
                chain_len: len,
                region_pages: 16,
            };
            sweep.cell(format!("{} chain{}", kind.label(), len), move || {
                let out = copy_chain_probe(spec);
                (out.mean_fault.as_millis_f64(), out.events)
            });
        }
    }
    let report = sweep.run();

    println!("Figure 11: inherited-memory fault latency (ms) vs chain length");
    println!("{:>8}{:>12}{:>12}", "chain", "ASVM", "XMM");
    println!("{}", "-".repeat(32));
    let mut asvm = Vec::new();
    let mut xmm = Vec::new();
    let mut cells = report.values();
    for len in LENGTHS {
        let a = *cells.next().expect("asvm cell");
        let x = *cells.next().expect("xmm cell");
        asvm.push(a);
        xmm.push(x);
        println!("{:>8}{:>12.2}{:>12.2}", len, a, x);
    }
    // Least-squares fit of latency = lb + n*la.
    let fit = |ys: &[f64]| {
        let n = ys.len() as f64;
        let xs: Vec<f64> = LENGTHS.iter().map(|l| *l as f64).collect();
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let la = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        let lb = (sy - la * sx) / n;
        (lb, la)
    };
    let (alb, ala) = fit(&asvm);
    let (xlb, xla) = fit(&xmm);
    println!();
    println!("fit latency = lb + n*la:");
    println!("  ASVM lb = {alb:.2} ms, la = {ala:.2} ms/hop   (paper: 2.7, 0.48)");
    println!("  XMM  lb = {xlb:.2} ms, la = {xla:.2} ms/hop   (paper: 5.0, 4.3)");
    println!();
    println!(
        "chain of 8 (a 256-node binary-tree spawn): ASVM {:.1} ms, XMM {:.1} ms (paper: 6.4, 35)",
        asvm[7], xmm[7]
    );
    report.finish();
}
