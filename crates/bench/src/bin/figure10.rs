//! Regenerates **Figure 10: write page-fault latency vs. number of nodes
//! with read copies** (1–64 readers), for both the plain write fault and
//! the write upgrade fault (faulting node already holds a read copy),
//! under ASVM and NMK13 XMM.
//!
//! The paper's curves: ASVM latencies grow slowly with the reader count
//! (pipelined invalidations at the owner); XMM latencies grow steeply
//! (serialized NORMA-IPC flush messages at the centralized manager).

use cluster::ManagerKind;
use workloads::{fault_probe, FaultProbeSpec, ProbeAccess};

fn main() {
    let readers = [1u16, 2, 4, 8, 16, 32, 48, 64];
    println!("Figure 10: write fault latency (ms) vs read copies");
    println!(
        "{:>8}{:>14}{:>14}{:>14}{:>14}",
        "readers", "ASVM wf", "ASVM upg", "XMM wf", "XMM upg"
    );
    println!("{}", "-".repeat(64));
    for r in readers {
        let mut row = vec![format!("{r:>8}")];
        for (kind, has_copy) in [
            (ManagerKind::asvm(), false),
            (ManagerKind::asvm(), true),
            (ManagerKind::xmm(), false),
            (ManagerKind::xmm(), true),
        ] {
            // An upgrade needs the faulter to be one of the readers.
            if has_copy && r < 2 {
                row.push(format!("{:>14}", "-"));
                continue;
            }
            let res = fault_probe(FaultProbeSpec {
                kind,
                read_copies: r,
                faulter_has_copy: has_copy,
                access: ProbeAccess::Write,
            });
            row.push(format!("{:>14.2}", res.latency.as_millis_f64()));
        }
        println!("{}", row.join(""));
    }
    println!();
    println!("paper anchor points: ASVM wf 1→2.24, 2→3.10, 64→8.96;");
    println!("                     XMM  wf 1→38.42 (disk), 2→12.92, 64→72.18");
}
