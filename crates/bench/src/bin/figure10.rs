//! Regenerates **Figure 10: write page-fault latency vs. number of nodes
//! with read copies** (1–64 readers), for both the plain write fault and
//! the write upgrade fault (faulting node already holds a read copy),
//! under ASVM and NMK13 XMM.
//!
//! The paper's curves: ASVM latencies grow slowly with the reader count
//! (pipelined invalidations at the owner); XMM latencies grow steeply
//! (serialized NORMA-IPC flush messages at the centralized manager).

use bench::sweep::Sweep;
use cluster::ManagerKind;
use workloads::{fault_probe, FaultProbeSpec, ProbeAccess};

const READERS: [u16; 8] = [1, 2, 4, 8, 16, 32, 48, 64];

fn main() {
    let mut sweep = Sweep::from_env("figure10");
    for r in READERS {
        for (kind, has_copy) in [
            (ManagerKind::asvm(), false),
            (ManagerKind::asvm(), true),
            (ManagerKind::xmm(), false),
            (ManagerKind::xmm(), true),
        ] {
            // An upgrade needs the faulter to be one of the readers.
            if has_copy && r < 2 {
                sweep.cell(format!("{} skip {}r", kind.label(), r), move || (None, 0));
                continue;
            }
            let spec = FaultProbeSpec {
                kind,
                read_copies: r,
                faulter_has_copy: has_copy,
                access: ProbeAccess::Write,
            };
            let tag = if has_copy { "upg" } else { "wf" };
            sweep.cell(format!("{} {} {}r", kind.label(), tag, r), move || {
                let out = fault_probe(spec);
                (Some(out.latency.as_millis_f64()), out.events)
            });
        }
    }
    let report = sweep.run();

    println!("Figure 10: write fault latency (ms) vs read copies");
    println!(
        "{:>8}{:>14}{:>14}{:>14}{:>14}",
        "readers", "ASVM wf", "ASVM upg", "XMM wf", "XMM upg"
    );
    println!("{}", "-".repeat(64));
    let mut cells = report.values();
    for r in READERS {
        let mut row = vec![format!("{r:>8}")];
        for _ in 0..4 {
            row.push(match cells.next().expect("one result per cell") {
                Some(ms) => format!("{ms:>14.2}"),
                None => format!("{:>14}", "-"),
            });
        }
        println!("{}", row.join(""));
    }
    println!();
    println!("paper anchor points: ASVM wf 1→2.24, 2→3.10, 64→8.96;");
    println!("                     XMM  wf 1→38.42 (disk), 2→12.92, 64→72.18");
    report.finish();
}
