//! Ablation for §3.4: the three request-forwarding strategies.
//!
//! ASVM layers dynamic hints over static ownership managers over the
//! global walk, and lets either cache level be disabled per object:
//! static+global reproduces Kai Li's fixed distributed manager, dynamic
//! behaviour comes from enabling the hint caches. This harness measures
//! the strategies across the access patterns that stress them differently,
//! plus the effect of shrinking the dynamic hint cache.

use asvm::AsvmConfig;
use bench::sweep::Sweep;
use cluster::ManagerKind;
use workloads::{run_pattern, Pattern, PatternOutcome};

type ConfigFn = fn() -> AsvmConfig;

const CONFIGS: [(&str, ConfigFn); 4] = [
    ("dynamic+static+global (default)", AsvmConfig::default),
    (
        "static+global (Kai Li fixed)",
        AsvmConfig::fixed_distributed,
    ),
    ("dynamic+global (dynamic mgr)", AsvmConfig::dynamic_only),
    ("global only (min memory)", AsvmConfig::global_only),
];

const CACHE_SIZES: [usize; 5] = [0, 4, 16, 64, 4096];

fn row(label: &str, outs: &[&PatternOutcome]) {
    print!("{label:<36}");
    for o in outs {
        print!("{:>9.2}{:>9}", o.mean_fault_ms, o.messages);
    }
    println!();
}

fn main() {
    let nodes = 8;
    let pages = 32;
    let patterns: [(&str, Pattern); 3] = [
        ("migratory", Pattern::Migratory { rounds: 4 }),
        ("producer/consumer", Pattern::ProducerConsumer { rounds: 4 }),
        (
            "hotspot",
            Pattern::Hotspot {
                rounds: 8,
                write_every: 4,
            },
        ),
    ];

    let mut sweep = Sweep::from_env("ablation_forwarding");
    for (label, cfg) in CONFIGS {
        for (pl, p) in patterns {
            sweep.cell(format!("{label} / {pl}"), move || {
                let o = run_pattern(ManagerKind::Asvm(cfg()), nodes, pages, p);
                let events = o.events;
                (o, events)
            });
        }
    }
    for entries in CACHE_SIZES {
        sweep.cell(format!("cache {entries} / migratory"), move || {
            let cfg = AsvmConfig {
                dynamic_cache_entries: entries,
                ..AsvmConfig::default()
            };
            let o = run_pattern(
                ManagerKind::Asvm(cfg),
                nodes,
                pages,
                Pattern::Migratory { rounds: 4 },
            );
            let events = o.events;
            (o, events)
        });
    }
    let report = sweep.run();

    println!("forwarding strategies x access patterns ({nodes} nodes, {pages} pages)");
    println!("columns per pattern: mean fault ms | protocol messages");
    print!("{:<36}", "");
    for (pl, _) in &patterns {
        print!("{pl:>18}");
    }
    println!();
    println!("{}", "-".repeat(36 + 18 * patterns.len()));
    let mut cells = report.values();
    for (label, _) in CONFIGS {
        let outs: Vec<&PatternOutcome> = patterns
            .iter()
            .map(|_| cells.next().expect("one result per pattern"))
            .collect();
        row(label, &outs);
    }

    println!();
    println!("dynamic hint cache sizing (default strategy, migratory pattern):");
    println!(
        "{:>14}{:>16}{:>16}",
        "cache entries", "mean fault ms", "messages"
    );
    for entries in CACHE_SIZES {
        let o = cells.next().expect("one result per cache size");
        println!("{entries:>14}{:>16.2}{:>16}", o.mean_fault_ms, o.messages);
    }
    println!();
    println!("hints cut forwarding hops; when a cache level is disabled or too");
    println!("small, requests fall back to the static managers and finally the");
    println!("global walk — §3.4's layered design. The global-only column shows");
    println!("what the caches buy.");
    report.finish();
}
