//! Ablation for the paper's §3.1 memory-requirements claim:
//!
//! *"With XMM, the centralized manager stores the page state of a memory
//! object in a data structure that requires 1 byte of non-pageable memory
//! for each page in the virtual address space of the memory object,
//! multiplied by the number of nodes that use the object. ... ASVM not
//! only distributes the page state information across the system, but also
//! ties it to physical pages"* — manager memory must grow with the
//! *resident set*, not with `address space × nodes`.

use bench::sweep::Sweep;
use cluster::{ManagerKind, ScriptProgram, Ssi, Step};
use machvm::{Access, Inherit};
use svmsim::NodeId;

/// Builds a cluster where every node maps a large, sparsely touched object
/// and touches `touched` pages each; returns ((max per-node state bytes,
/// total state bytes), events).
fn measure(
    kind: ManagerKind,
    nodes: u16,
    object_pages: u32,
    touched: u32,
) -> ((usize, usize), u64) {
    let mut ssi = Ssi::new(nodes, kind, 5);
    let home = NodeId(0);
    let mobj = ssi.create_object(home, object_pages, false);
    let tasks: Vec<_> = (0..nodes)
        .map(|n| {
            let t = ssi.alloc_task();
            ssi.map_shared(
                t,
                NodeId(n),
                0,
                mobj,
                home,
                object_pages,
                Access::Write,
                Inherit::Share,
            );
            t
        })
        .collect();
    ssi.finalize();
    for (i, t) in tasks.iter().enumerate() {
        // Each node touches a disjoint slice of the sparse address space.
        let first = i as u32 * touched;
        let steps: Vec<Step> = (first..first + touched)
            .map(|p| Step::Write {
                va_page: p as u64,
                value: p as u64,
            })
            .chain([Step::Done])
            .collect();
        ssi.spawn(NodeId(i as u16), *t, Box::new(ScriptProgram::new(steps)));
    }
    ssi.run(100_000_000).expect("quiesces");

    let mut max = 0usize;
    let mut total = 0usize;
    for n in 0..nodes {
        let node = ssi.node(NodeId(n));
        let bytes = match (node.asvm(), node.xmm()) {
            (Some(a), _) => a.objects().map(|o| o.state_bytes()).sum::<usize>(),
            (_, Some(x)) => x.manager_table_bytes(),
            _ => 0,
        };
        max = max.max(bytes);
        total += bytes;
    }
    ((max, total), ssi.world.events_processed())
}

const GRID: [(u16, u32); 5] = [(4, 4096), (8, 4096), (16, 4096), (16, 65536), (32, 65536)];

fn main() {
    let touched = 32u32;
    let mut sweep = Sweep::from_env("ablation_memory");
    for (nodes, object_pages) in GRID {
        for kind in [ManagerKind::xmm(), ManagerKind::asvm()] {
            sweep.cell(
                format!("{} {}n {}p", kind.label(), nodes, object_pages),
                move || measure(kind, nodes, object_pages, touched),
            );
        }
    }
    let report = sweep.run();

    println!("manager state for a sparse shared object (each node touches {touched} pages)");
    println!(
        "{:>8}{:>12}{:>16}{:>16}{:>16}{:>16}",
        "nodes", "obj pages", "XMM max/node", "XMM total", "ASVM max/node", "ASVM total"
    );
    println!("{}", "-".repeat(84));
    let mut cells = report.values();
    for (nodes, object_pages) in GRID {
        let (xmax, xtot) = *cells.next().expect("xmm cell");
        let (amax, atot) = *cells.next().expect("asvm cell");
        println!(
            "{:>8}{:>12}{:>16}{:>16}{:>16}{:>16}",
            nodes, object_pages, xmax, xtot, amax, atot
        );
    }
    println!();
    println!("XMM's manager table grows as pages x nodes regardless of use;");
    println!("ASVM's state follows the resident pages plus bounded hint caches.");
    println!("(The paper notes the XMM design can exhaust memory and crash on");
    println!("large sparse address spaces; here it merely dwarfs ASVM.)");
    report.finish();
}
