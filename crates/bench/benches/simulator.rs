//! Criterion benchmarks of the simulator's hot paths and of representative
//! end-to-end experiments (wall-clock cost of running the reproduction, as
//! opposed to the simulated times the `table*`/`figure*` binaries report).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use asvm::{AsvmMsg, FrameBody, FrameCombiner};
use cluster::ManagerKind;
use machvm::{MemObjId, PageIdx};
use svmsim::{Dur, EventQueue, Machine, MachineConfig, NodeId, Stats, Time};
use workloads::{
    copy_chain_probe, em3d_run, fault_probe, run_pattern, CopyChainSpec, Em3dSpec, FaultProbeSpec,
    Pattern, ProbeAccess,
};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1000u64 {
                // Scatter times so the heap actually works.
                q.push(Time::from_nanos((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_event_queue_preallocated(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k_prealloc", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::with_capacity(1000);
            for i in 0..1000u64 {
                q.push(Time::from_nanos((i * 7919) % 10_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_stats(c: &mut Criterion) {
    // The per-message counter update, both ways: the cold string-keyed
    // lookup and the interned-id fast path the event loop actually uses.
    let mut g = c.benchmark_group("stats");
    g.bench_function("bump_by_key_1k", |b| {
        let mut s = Stats::new();
        // Populate a realistic number of distinct counters first.
        for k in [
            "net.messages",
            "net.bytes",
            "disk.reads",
            "disk.writes",
            "faults.raised",
            "faults.completed",
            "norma.messages",
            "sts.messages",
            "pageouts",
            "forks",
        ] {
            s.bump(k);
        }
        b.iter(|| {
            for _ in 0..1000 {
                s.bump(black_box("sts.messages"));
            }
            black_box(s.counter("sts.messages"))
        })
    });
    g.bench_function("bump_by_id_1k", |b| {
        let mut s = Stats::new();
        for k in [
            "net.messages",
            "net.bytes",
            "disk.reads",
            "disk.writes",
            "faults.raised",
            "faults.completed",
            "norma.messages",
            "sts.messages",
            "pageouts",
            "forks",
        ] {
            s.bump(k);
        }
        let id = s.counter_id("sts.messages");
        b.iter(|| {
            for _ in 0..1000 {
                s.bump_id(black_box(id));
            }
            black_box(s.counter_value(id))
        })
    });
    g.finish();
}

fn bench_mesh_routing(c: &mut Criterion) {
    let machine = Machine::new(MachineConfig::paragon(64));
    c.bench_function("wire_time_all_pairs_64", |b| {
        b.iter(|| {
            let mut acc = Dur::ZERO;
            for a in machine.mesh.node_ids() {
                for z in machine.mesh.node_ids() {
                    acc += machine.wire_time(a, z, 8224);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_fault_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_probe");
    g.sample_size(20);
    g.bench_function("asvm_write_8_readers", |b| {
        b.iter(|| {
            black_box(fault_probe(FaultProbeSpec {
                kind: ManagerKind::asvm(),
                read_copies: 8,
                faulter_has_copy: false,
                access: ProbeAccess::Write,
            }))
        })
    });
    g.bench_function("xmm_write_8_readers", |b| {
        b.iter(|| {
            black_box(fault_probe(FaultProbeSpec {
                kind: ManagerKind::xmm(),
                read_copies: 8,
                faulter_has_copy: false,
                access: ProbeAccess::Write,
            }))
        })
    });
    g.finish();
}

fn bench_copy_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("copy_chain");
    g.sample_size(20);
    g.bench_function("asvm_chain4", |b| {
        b.iter(|| {
            black_box(copy_chain_probe(CopyChainSpec {
                kind: ManagerKind::asvm(),
                chain_len: 4,
                region_pages: 16,
            }))
        })
    });
    g.bench_function("xmm_chain4", |b| {
        b.iter(|| {
            black_box(copy_chain_probe(CopyChainSpec {
                kind: ManagerKind::xmm(),
                chain_len: 4,
                region_pages: 16,
            }))
        })
    });
    g.finish();
}

fn bench_frame_combiner(c: &mut Criterion) {
    // The coalescing hot path: one push per protocol send, one drain per
    // scheduling step (see crates/core/src/coalesce.rs).
    let mut g = c.benchmark_group("coalesce");
    g.bench_function("combiner_push_drain_64x4", |b| {
        b.iter(|| {
            let mut cb = FrameCombiner::new(16);
            let mut frames = 0u32;
            for i in 0..64u32 {
                let msg = AsvmMsg::Invalidate {
                    mobj: MemObjId(1),
                    page: PageIdx(i),
                    from: NodeId(0),
                };
                if cb.push(NodeId((i % 4) as u16 + 1), msg).is_some() {
                    frames += 1;
                }
            }
            for (_, body) in cb.drain() {
                frames += 1;
                black_box(body.subframes());
            }
            black_box(frames)
        })
    });
    g.bench_function("body_hints_and_payload_16", |b| {
        b.iter(|| {
            let mut body = FrameBody::single(AsvmMsg::Invalidate {
                mobj: MemObjId(1),
                page: PageIdx(0),
                from: NodeId(0),
            });
            for i in 0..16u32 {
                // Half the pushes dedupe against an existing entry.
                body.push_hint((MemObjId(1), PageIdx(i % 8), NodeId((i % 3) as u16)));
            }
            black_box(body.payload_bytes(8192))
        })
    });
    g.finish();
}

fn bench_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("patterns");
    g.sample_size(10);
    g.bench_function("migratory_8n", |b| {
        b.iter(|| {
            black_box(run_pattern(
                ManagerKind::asvm(),
                8,
                32,
                Pattern::Migratory { rounds: 2 },
            ))
        })
    });
    g.finish();
}

fn bench_em3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("em3d");
    g.sample_size(10);
    g.bench_function("asvm_8n_16k_2iter", |b| {
        b.iter(|| {
            let mut spec = Em3dSpec::paper(ManagerKind::asvm(), 8, 16_000);
            spec.iterations = 2;
            black_box(em3d_run(spec))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_preallocated,
    bench_stats,
    bench_mesh_routing,
    bench_fault_probe,
    bench_copy_chain,
    bench_frame_combiner,
    bench_patterns,
    bench_em3d
);
criterion_main!(benches);
