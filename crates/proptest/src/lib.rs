//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! carries its own property-testing harness. It supports the subset of
//! the real crate's API that the test suite exercises:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) generating `cases` deterministic test cases per property;
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer
//!   ranges, tuples (up to arity 4), [`Just`], [`collection::vec`] and
//!   [`sample::select`];
//! * [`any`] for primitives, and the `prop_assert*` macros.
//!
//! Differences from real proptest: failing cases are **not shrunk** and
//! regression files are not consulted — a failure panics with the
//! generated input in the message (every generated value derives from a
//! per-test deterministic seed, so failures reproduce exactly on rerun).

use std::ops::Range;

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name: deterministic across runs,
    /// distinct between tests.
    pub fn deterministic(name: &str) -> TestRng {
        // FNV-1a over the name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Length specifications accepted by [`vec()`]: a half-open range or an
    /// exact length (mirroring proptest's `SizeRange` conversions).
    pub trait IntoSizeRange {
        /// The half-open range of permitted lengths.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    /// `Vec` strategy: each generated vector has a length drawn from
    /// `size` and elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy for [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks uniformly from a fixed set of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
///     #[test]
///     fn prop_holds(x in 0u32..100, ys in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                let strategies = ($($strat,)+);
                for __case in 0..cfg.cases {
                    let _ = __case;
                    let ($($arg,)+) =
                        $crate::Strategy::generate(&strategies, &mut rng);
                    $body
                }
            }
        )*
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Namespaced strategy modules (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec((0u8..4, any::<bool>()), 1..10),
            pick in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|(a, _)| *a < 4));
            prop_assert!(pick % 10 == 0);
        }

        #[test]
        fn prop_map_applies(d in (1u32..5).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0 && (2..10).contains(&d));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::{Strategy, TestRng};
        let strat = crate::collection::vec(0u64..1000, 1..50);
        let a: Vec<u64> = strat.generate(&mut TestRng::deterministic("x"));
        let b: Vec<u64> = strat.generate(&mut TestRng::deterministic("x"));
        assert_eq!(a, b);
    }
}
