//! Machine model: node inventory, memory sizes and the calibrated cost model.
//!
//! The paper's testbed is an Intel Paragon with GP nodes (two i860XP
//! processors — one running applications, one dedicated to message
//! passing — and 16 MB of memory per node) plus I/O nodes with attached
//! disks, roughly one per 32 compute nodes. This module captures that
//! machine shape together with every timing constant the simulation uses.
//!
//! All constants live in [`CostModel`] so that calibration is a single-file
//! affair. The defaults were fitted against the paper's microbenchmarks
//! (Table 1 and the intercepts/slopes of Figures 10 and 11); the macro
//! experiments (Tables 2 and 3) are then *emergent* — see `EXPERIMENTS.md`.

use crate::faults::FaultPlan;
use crate::mesh::{Mesh, NodeId};
use crate::time::Dur;

/// Role of a node in the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeKind {
    /// Runs user tasks; no disk attached.
    Compute,
    /// Hosts pager tasks and a disk; does not run application tasks.
    Io,
}

/// Static description of the simulated multicomputer.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of compute nodes.
    pub compute_nodes: u16,
    /// Number of I/O nodes (disk-bearing). The Paragon ratio is about one
    /// I/O node per 32 compute nodes; [`MachineConfig::paragon`] applies it.
    pub io_nodes: u16,
    /// Physical memory per node, in bytes (16 MB on the paper's GP nodes).
    pub mem_bytes_per_node: u64,
    /// Memory available to user pages per node, in bytes. The paper notes a
    /// 16 MB node "only has about 9 MB of memory available for user
    /// applications"; the rest is kernel text and data.
    pub user_mem_bytes_per_node: u64,
    /// VM page size in bytes (8 KB on the Paragon).
    pub page_size: u32,
    /// All timing constants.
    pub cost: CostModel,
    /// Interconnect fault injection (defaults to [`FaultPlan::none`]:
    /// perfectly reliable, zero overhead, byte-identical to a machine
    /// without the fault layer).
    pub faults: FaultPlan,
}

impl MachineConfig {
    /// A Paragon-like configuration: `compute_nodes` GP nodes with 16 MB
    /// each, plus one I/O node per 32 compute nodes (at least one).
    pub fn paragon(compute_nodes: u16) -> MachineConfig {
        let io_nodes = compute_nodes.div_ceil(32).max(1);
        MachineConfig {
            compute_nodes,
            io_nodes,
            mem_bytes_per_node: 16 << 20,
            user_mem_bytes_per_node: 9 << 20,
            page_size: 8192,
            cost: CostModel::default(),
            faults: FaultPlan::none(),
        }
    }

    /// Same as [`MachineConfig::paragon`] but with 32 MB nodes, used for the
    /// paper's sequential EM3D baselines that do not fit in 16 MB.
    pub fn paragon_32mb(compute_nodes: u16) -> MachineConfig {
        let mut cfg = MachineConfig::paragon(compute_nodes);
        cfg.mem_bytes_per_node = 32 << 20;
        cfg.user_mem_bytes_per_node = 25 << 20;
        cfg
    }

    /// Total number of nodes (compute + I/O).
    pub fn total_nodes(&self) -> u16 {
        self.compute_nodes + self.io_nodes
    }

    /// Number of user pages that fit in one node's memory.
    pub fn user_pages_per_node(&self) -> u32 {
        (self.user_mem_bytes_per_node / self.page_size as u64) as u32
    }
}

/// Runtime view of the machine: geometry plus per-node roles.
#[derive(Clone, Debug)]
pub struct Machine {
    /// The static configuration this machine was built from.
    pub config: MachineConfig,
    /// Mesh over all nodes (compute first, then I/O).
    pub mesh: Mesh,
}

impl Machine {
    /// Instantiates the machine for a configuration.
    pub fn new(config: MachineConfig) -> Machine {
        let mesh = Mesh::new(config.total_nodes());
        Machine { config, mesh }
    }

    /// Role of node `n`.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        if n.0 < self.config.compute_nodes {
            NodeKind::Compute
        } else {
            NodeKind::Io
        }
    }

    /// Iterator over compute node ids.
    pub fn compute_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.config.compute_nodes).map(NodeId)
    }

    /// Iterator over I/O node ids.
    pub fn io_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (self.config.compute_nodes..self.config.total_nodes()).map(NodeId)
    }

    /// The I/O node responsible for compute node `n` (round-robin blocks of
    /// 32, like Paragon disk placement).
    pub fn io_node_for(&self, n: NodeId) -> NodeId {
        let io = self.config.io_nodes;
        debug_assert!(io > 0);
        NodeId(self.config.compute_nodes + (n.0 / 32) % io)
    }

    /// Raw wire time for `bytes` between `src` and `dst`: base latency plus
    /// per-hop routing delay plus serialization at link bandwidth.
    pub fn wire_time(&self, src: NodeId, dst: NodeId, bytes: u32) -> Dur {
        if src == dst {
            return Dur::ZERO;
        }
        let c = &self.config.cost;
        let hops = self.mesh.hops(src, dst) as u64;
        Dur::from_nanos(
            c.wire_base.as_nanos()
                + hops * c.wire_per_hop.as_nanos()
                + bytes as u64 * 1_000_000_000 / c.link_bandwidth_bytes_per_s,
        )
    }
}

/// Every timing constant used by the simulation, in one place.
///
/// Grouped by subsystem. Values are calibrated, not measured from first
/// principles; see `EXPERIMENTS.md` for the fitting procedure.
#[derive(Clone, Debug)]
pub struct CostModel {
    // --- Interconnect -----------------------------------------------------
    /// Fixed hardware latency per message.
    pub wire_base: Dur,
    /// Additional latency per mesh hop (wormhole routing).
    pub wire_per_hop: Dur,
    /// Link bandwidth (200 MB/s raw on the Paragon mesh).
    pub link_bandwidth_bytes_per_s: u64,

    // --- STS (SVM Transport Service) ---------------------------------------
    /// Sender-side message-processor occupancy per STS message.
    pub sts_send_cpu: Dur,
    /// Receiver-side message-processor occupancy per STS message.
    pub sts_recv_cpu: Dur,
    /// STS header size: "a fixed size block of untyped data (currently
    /// 32 Byte)".
    pub sts_header_bytes: u32,
    /// Per-side CPU for node-local (loopback) messages — kernel-internal
    /// hand-off, no wire or protocol stack.
    pub local_ipc_cpu: Dur,
    /// Per-side CPU to demultiplex one *additional* subframe out of a
    /// coalesced STS frame (the first subframe pays the full
    /// `sts_send_cpu`/`sts_recv_cpu`). STS receives into preallocated
    /// buffers, so an extra subframe skips per-message interrupt and
    /// buffer management — only parse-and-dispatch remains.
    pub sts_subframe_cpu: Dur,
    /// Wire bytes per additional subframe in a coalesced STS frame
    /// (length/kind tag inside the shared fixed header's framing).
    pub sts_subframe_bytes: u32,

    // --- NORMA-IPC ----------------------------------------------------------
    /// Sender-side occupancy per NORMA-IPC message (port right translation,
    /// typed message construction). The paper attributes ~90 % of XMM remote
    /// fault latency to NORMA-IPC.
    pub norma_send_cpu: Dur,
    /// Receiver-side occupancy per NORMA-IPC message.
    pub norma_recv_cpu: Dur,
    /// NORMA-IPC header/envelope size (typed descriptors, port names).
    pub norma_header_bytes: u32,

    // --- RDMA (one-sided interconnect) ---------------------------------------
    //
    // Models a commodity RNIC rather than the Paragon's dedicated message
    // co-processor: one-sided page reads are served entirely by the NIC
    // (zero host CPU at the target), while ordinary two-sided protocol
    // sends take an interrupt-driven completion path with no message
    // co-processor behind it — slightly costlier per message than STS,
    // far cheaper than NORMA, and not coalescable (each verb is its own
    // work request).
    /// Requester CPU to post a one-sided read work request (WQE build +
    /// doorbell write).
    pub rdma_post_cpu: Dur,
    /// Requester CPU to reap a one-sided read completion (poll the CQ,
    /// hand the landed page to the VM layer).
    pub rdma_completion_cpu: Dur,
    /// Sender-side occupancy per *two-sided* RDMA send (control-plane
    /// protocol message: WQE build, doorbell, send-completion reap).
    pub rdma_ctrl_send_cpu: Dur,
    /// Receiver-side occupancy per two-sided RDMA send (interrupt-driven
    /// receive completion + dispatch; no STS-style co-processor).
    pub rdma_ctrl_recv_cpu: Dur,
    /// Per-message fabric latency floor (RNIC pipeline + PCIe round
    /// trips), paid in flight on every RDMA message without occupying
    /// either host.
    pub rdma_latency_floor: Dur,
    /// RDMA transport header bytes on the wire (RETH/AETH-class framing).
    pub rdma_header_bytes: u32,
    /// One-time per-link setup charged at the requester the first time it
    /// targets a peer: queue-pair bring-up plus memory registration of the
    /// shared region (the price of pre-registered zero-copy landing zones).
    pub rdma_link_setup_cpu: Dur,

    // --- Kernel VM -----------------------------------------------------------
    /// Trap entry + address map lookup on a page fault (compute CPU).
    pub vm_fault_entry: Dur,
    /// Installing a page into the pmap and resuming the thread.
    pub vm_fault_finish: Dur,
    /// One pmap operation (protect/remove) on one page.
    pub vm_pmap_op: Dur,
    /// Copying one page within a node (8 KB memcpy on an i860XP).
    pub vm_page_copy: Dur,
    /// Zero-filling one page.
    pub vm_zero_fill: Dur,
    /// Generic VM object bookkeeping step (shadow-chain hop, object create).
    pub vm_object_op: Dur,

    // --- Managers -------------------------------------------------------------
    /// One ASVM state-machine step (request redirector, owner transition).
    pub asvm_handle: Dur,
    /// Lightweight ASVM bookkeeping step (acknowledgement processing).
    pub asvm_ack_handle: Dur,
    /// One XMM step at a proxy or at the centralized manager.
    pub xmm_handle: Dur,
    /// Lightweight XMM bookkeeping step (acknowledgement processing).
    pub xmm_ack_handle: Dur,

    // --- Pager tasks ------------------------------------------------------------
    /// Pager-task processing per EMMI request (user-level context switch,
    /// object lookup), excluding disk time.
    pub pager_handle: Dur,

    // --- Disk ----------------------------------------------------------------------
    /// Positioning time when an access is not sequential to the previous one.
    pub disk_position: Dur,
    /// Sustained media bandwidth for sequential transfers.
    pub disk_bandwidth_bytes_per_s: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            wire_base: Dur::from_micros_f64(5.0),
            wire_per_hop: Dur::from_micros_f64(0.1),
            link_bandwidth_bytes_per_s: 200 << 20,

            sts_send_cpu: Dur::from_micros_f64(45.0),
            sts_recv_cpu: Dur::from_micros_f64(55.0),
            sts_header_bytes: 32,
            local_ipc_cpu: Dur::from_micros_f64(25.0),
            sts_subframe_cpu: Dur::from_micros_f64(8.0),
            sts_subframe_bytes: 8,

            norma_send_cpu: Dur::from_micros_f64(450.0),
            norma_recv_cpu: Dur::from_micros_f64(550.0),
            norma_header_bytes: 256,

            rdma_post_cpu: Dur::from_micros_f64(10.0),
            rdma_completion_cpu: Dur::from_micros_f64(15.0),
            rdma_ctrl_send_cpu: Dur::from_micros_f64(60.0),
            rdma_ctrl_recv_cpu: Dur::from_micros_f64(85.0),
            rdma_latency_floor: Dur::from_micros_f64(30.0),
            rdma_header_bytes: 64,
            rdma_link_setup_cpu: Dur::from_micros_f64(400.0),

            vm_fault_entry: Dur::from_micros_f64(450.0),
            vm_fault_finish: Dur::from_micros_f64(450.0),
            vm_pmap_op: Dur::from_micros_f64(25.0),
            vm_page_copy: Dur::from_micros_f64(160.0),
            vm_zero_fill: Dur::from_micros_f64(120.0),
            vm_object_op: Dur::from_micros_f64(40.0),

            asvm_handle: Dur::from_micros_f64(180.0),
            asvm_ack_handle: Dur::from_micros_f64(20.0),
            xmm_handle: Dur::from_micros_f64(1150.0),
            xmm_ack_handle: Dur::from_micros_f64(40.0),

            pager_handle: Dur::from_micros_f64(250.0),

            disk_position: Dur::from_millis_f64(25.0),
            disk_bandwidth_bytes_per_s: (2.2 * 1024.0 * 1024.0) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paragon_io_ratio() {
        assert_eq!(MachineConfig::paragon(1).io_nodes, 1);
        assert_eq!(MachineConfig::paragon(32).io_nodes, 1);
        assert_eq!(MachineConfig::paragon(33).io_nodes, 2);
        assert_eq!(MachineConfig::paragon(64).io_nodes, 2);
    }

    #[test]
    fn node_kinds_partition() {
        let m = Machine::new(MachineConfig::paragon(4));
        assert_eq!(m.kind(NodeId(0)), NodeKind::Compute);
        assert_eq!(m.kind(NodeId(3)), NodeKind::Compute);
        assert_eq!(m.kind(NodeId(4)), NodeKind::Io);
        assert_eq!(m.compute_nodes().count(), 4);
        assert_eq!(m.io_nodes().count(), 1);
    }

    #[test]
    fn io_node_assignment_round_robins() {
        let m = Machine::new(MachineConfig::paragon(64));
        assert_eq!(m.io_node_for(NodeId(0)), NodeId(64));
        assert_eq!(m.io_node_for(NodeId(31)), NodeId(64));
        assert_eq!(m.io_node_for(NodeId(32)), NodeId(65));
        assert_eq!(m.io_node_for(NodeId(63)), NodeId(65));
    }

    #[test]
    fn wire_time_scales_with_size_and_distance() {
        let m = Machine::new(MachineConfig::paragon(16));
        let near = m.wire_time(NodeId(0), NodeId(1), 32);
        let far = m.wire_time(NodeId(0), NodeId(15), 32);
        let big = m.wire_time(NodeId(0), NodeId(1), 8192);
        assert!(near < far, "more hops must cost more");
        assert!(near < big, "bigger payload must cost more");
        assert_eq!(m.wire_time(NodeId(3), NodeId(3), 8192), Dur::ZERO);
        // 8 KB at 200 MB/s is ~39 us of serialization.
        assert!(big.as_micros_f64() > 39.0 && big.as_micros_f64() < 60.0);
    }

    #[test]
    fn user_pages_per_node_matches_paper() {
        let cfg = MachineConfig::paragon(1);
        // ~9 MB of 8 KB pages.
        assert_eq!(cfg.user_pages_per_node(), 9 * 128);
    }
}
